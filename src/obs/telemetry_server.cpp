#include "obs/telemetry_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "obs/export.hpp"

namespace dcv::obs {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_io_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

constexpr std::string_view kPrometheusType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr std::string_view kJsonType = "application/json";
constexpr std::string_view kTextType = "text/plain; charset=utf-8";

}  // namespace

TelemetryServer::TelemetryServer(const MetricsRegistry* registry,
                                 const TraceRing* trace, HealthProbe probe,
                                 TelemetryServerConfig config)
    : registry_(registry),
      trace_(trace),
      probe_(std::move(probe)),
      config_(config) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("telemetry: socket");
  // REUSEADDR lets a restarted monitor rebind through TIME_WAIT; binding a
  // port with a live listener still fails, which is the error we want.
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("telemetry: bind");
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("telemetry: listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  listener_ = std::thread([this] { serve(); });
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  const std::lock_guard lock(stop_mutex_);
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{.fd = listen_fd_, .events = POLLIN, .revents = 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(config_.accept_poll.count()));
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
  }
}

void TelemetryServer::handle_connection(int client_fd) {
  set_io_timeout(client_fd, config_.io_timeout);
  std::string request;
  char buffer[1024];
  // Requests are header-only GETs: read until the blank line, bounded in
  // bytes and by the socket timeout.
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < config_.max_request_bytes) {
    const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
  }

  std::string response;
  const auto line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    response = http_response(400, "Bad Request", kTextType, "bad request\n");
  } else {
    const std::string_view line(request.data(), line_end);
    const auto method_end = line.find(' ');
    const auto target_end = line.find(' ', method_end + 1);
    if (method_end == std::string_view::npos ||
        target_end == std::string_view::npos) {
      response =
          http_response(400, "Bad Request", kTextType, "bad request\n");
    } else {
      response = respond(line.substr(0, method_end),
                         line.substr(method_end + 1,
                                     target_end - method_end - 1));
    }
  }

  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(client_fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(client_fd, SHUT_WR);
  ::close(client_fd);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

std::string TelemetryServer::respond(std::string_view method,
                                     std::string_view target) const {
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", kTextType,
                         "only GET is supported\n");
  }
  // Ignore any query string: scrapers commonly append cache-busters.
  if (const auto query = target.find('?'); query != std::string_view::npos) {
    target = target.substr(0, query);
  }

  if (target == "/metrics") {
    if (registry_ == nullptr) {
      return http_response(404, "Not Found", kTextType,
                           "no metrics registry attached\n");
    }
    return http_response(200, "OK", kPrometheusType,
                         write_prometheus(*registry_));
  }
  if (target == "/metrics.json") {
    if (registry_ == nullptr) {
      return http_response(404, "Not Found", kTextType,
                           "no metrics registry attached\n");
    }
    return http_response(200, "OK", kJsonType, write_json(*registry_));
  }
  if (target == "/tracez") {
    if (config_.trace_renderer) {
      return http_response(200, "OK", kJsonType,
                           config_.trace_renderer(config_.max_trace_spans));
    }
    if (trace_ == nullptr) {
      return http_response(404, "Not Found", kTextType,
                           "no trace ring attached\n");
    }
    return http_response(200, "OK", kJsonType,
                         write_trace_json(*trace_, config_.max_trace_spans));
  }
  if (target == "/healthz" || target == "/readyz") {
    const HealthSnapshot health =
        probe_ ? probe_() : HealthSnapshot{};
    const bool ok = target == "/healthz" ? health.alive : health.ready;
    std::string body = ok ? "ok\n" : "unavailable\n";
    if (!health.detail.empty()) body += health.detail;
    return http_response(ok ? 200 : 503, ok ? "OK" : "Service Unavailable",
                         kTextType, body);
  }
  if (target == "/") {
    return http_response(
        200, "OK", kTextType,
        "dcv telemetry endpoints:\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  registry as JSON\n"
        "  /healthz       liveness\n"
        "  /readyz        readiness (coverage/breakers/queue/staleness)\n"
        "  /tracez        recent spans\n");
  }
  return http_response(404, "Not Found", kTextType, "unknown endpoint\n");
}

}  // namespace dcv::obs
