#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace dcv::obs {

/// RAII stopwatch: records elapsed nanoseconds into a Histogram at scope
/// exit. A null histogram makes the timer a cheap no-op beyond one clock
/// read, so instrumented code needs no branches around the registry being
/// disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records now instead of at scope exit; idempotent. Returns the elapsed
  /// time (also when no histogram is attached).
  std::chrono::nanoseconds stop() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    if (!stopped_) {
      stopped_ = true;
      if (histogram_ != nullptr) {
        histogram_->observe(static_cast<std::uint64_t>(elapsed.count()));
      }
    }
    return elapsed;
  }

  /// Drops the measurement (e.g. the timed operation failed and should not
  /// pollute the latency distribution).
  void cancel() { stopped_ = true; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// One completed span as kept by the trace ring.
struct TraceEvent {
  std::string name;
  /// Start, as an offset from the ring's creation (steady clock).
  std::chrono::nanoseconds start{0};
  std::chrono::nanoseconds duration{0};
};

/// Bounded in-memory span buffer: the newest `capacity` spans survive,
/// older ones are overwritten (dropped() counts the overwritten ones).
/// Mutex-protected — spans are stage-granular, not per-sample-granular, so
/// the lock is off any per-item hot path.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void record(std::string_view name, std::chrono::steady_clock::time_point start,
              std::chrono::nanoseconds duration);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

/// RAII trace span: times a named region into a histogram (like
/// ScopedTimer) and additionally logs the interval into a TraceRing.
/// Either sink may be null.
class Span {
 public:
  Span(std::string_view name, Histogram* histogram, TraceRing* ring = nullptr)
      : name_(name),
        histogram_(histogram),
        ring_(ring),
        start_(std::chrono::steady_clock::now()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    const auto duration = std::chrono::steady_clock::now() - start_;
    if (histogram_ != nullptr) {
      histogram_->observe(static_cast<std::uint64_t>(duration.count()));
    }
    if (ring_ != nullptr) ring_->record(name_, start_, duration);
  }

 private:
  std::string_view name_;
  Histogram* histogram_;
  TraceRing* ring_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dcv::obs
