#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace dcv::obs {

/// RAII stopwatch: records elapsed nanoseconds into a Histogram at scope
/// exit. A null histogram makes the timer a cheap no-op beyond one clock
/// read, so instrumented code needs no branches around the registry being
/// disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records now instead of at scope exit; idempotent. Returns the elapsed
  /// time (also when no histogram is attached).
  std::chrono::nanoseconds stop() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    if (!stopped_) {
      stopped_ = true;
      if (histogram_ != nullptr) {
        histogram_->observe(static_cast<std::uint64_t>(elapsed.count()));
      }
    }
    return elapsed;
  }

  /// Drops the measurement (e.g. the timed operation failed and should not
  /// pollute the latency distribution).
  void cancel() { stopped_ = true; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// Process-unique id of the innermost Span currently open on the calling
/// thread; 0 when none. New spans link to this as their parent.
[[nodiscard]] std::uint64_t current_span_id();

/// Correlation id stamped onto every span the calling thread records; 0
/// means uncorrelated. Worker threads of one monitoring cycle all set the
/// cycle's id, so spans from different threads can be grouped even though
/// parent links never cross threads.
[[nodiscard]] std::uint64_t current_cycle_id();
void set_current_cycle_id(std::uint64_t cycle);

/// RAII cycle-correlation scope: sets the calling thread's cycle id and
/// restores the previous one on exit (cycles can nest, e.g. a pipeline run
/// inside a bench harness that correlates its own phases).
class CycleScope {
 public:
  explicit CycleScope(std::uint64_t cycle)
      : previous_(current_cycle_id()) {
    set_current_cycle_id(cycle);
  }
  CycleScope(const CycleScope&) = delete;
  CycleScope& operator=(const CycleScope&) = delete;
  ~CycleScope() { set_current_cycle_id(previous_); }

 private:
  std::uint64_t previous_;
};

/// Small dense index of the calling thread (assigned on first use, stable
/// for the thread's lifetime). Used as the `tid` of trace events — readable
/// in a trace viewer, unlike 64-bit native thread ids.
[[nodiscard]] std::uint32_t thread_index();

/// Draws a fresh process-unique span id from the same counter Span uses.
/// For code that records spans with explicit ids (overlapping intervals a
/// RAII stack cannot express — e.g. a coordinator with many shard
/// assignments in flight) and for re-keying remote spans on merge.
[[nodiscard]] std::uint64_t allocate_span_id();

/// One completed span as kept by the trace ring.
struct TraceEvent {
  std::string name;
  /// Process-unique span id (never 0 for events recorded through Span).
  std::uint64_t id = 0;
  /// Id of the enclosing span on the same thread; 0 for thread roots.
  std::uint64_t parent = 0;
  /// Cross-thread correlation id (monitoring cycle); 0 = uncorrelated.
  std::uint64_t cycle = 0;
  /// Dense index of the recording thread (thread_index()).
  std::uint32_t thread = 0;
  /// Start, as an offset from the ring's creation (steady clock).
  std::chrono::nanoseconds start{0};
  std::chrono::nanoseconds duration{0};
};

/// Bounded in-memory span buffer: the newest `capacity` spans survive,
/// older ones are overwritten (dropped() counts the overwritten ones).
/// Mutex-protected — spans are stage-granular, not per-sample-granular, so
/// the lock is off any per-item hot path.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  /// Registers the ring's health series in `registry` (which must outlive
  /// the ring): dcv_obs_trace_dropped_total counts spans overwritten before
  /// export, dcv_obs_trace_ring_capacity / dcv_obs_trace_ring_size expose
  /// how full the ring runs. Call once, before concurrent record()s.
  void attach_metrics(MetricsRegistry& registry);

  void record(std::string_view name, std::chrono::steady_clock::time_point start,
              std::chrono::nanoseconds duration);

  /// Full-fidelity record used by Span: keeps the causal links.
  void record_span(std::string_view name, std::uint64_t id,
                   std::uint64_t parent, std::uint64_t cycle,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::nanoseconds duration);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;

  /// The steady-clock instant event start offsets are relative to (the
  /// ring's construction). Lets serializers and mergers convert between
  /// ring-relative and absolute steady-clock nanoseconds.
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

 private:
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  /// Registry handles; null when attach_metrics was never called.
  Counter* dropped_total_ = nullptr;
  Gauge* size_gauge_ = nullptr;
};

/// RAII trace span: times a named region into a histogram (like
/// ScopedTimer) and additionally logs the interval — with its process-unique
/// id, parent link, and cycle correlation — into a TraceRing. Either sink
/// may be null.
///
/// Spans opened while another Span is alive on the same thread become its
/// children (a thread-local stack tracks the innermost open span), so
/// nested instrumentation forms trees a trace viewer can fold.
class Span {
 public:
  Span(std::string_view name, Histogram* histogram, TraceRing* ring = nullptr);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { stop(); }

  /// Ends the span now instead of at scope exit; idempotent. Records into
  /// both sinks and pops the span off the thread's stack, so a sibling
  /// opened afterwards does not become this span's child. Returns the
  /// elapsed time.
  std::chrono::nanoseconds stop();

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint64_t parent() const { return parent_; }

 private:
  std::string_view name_;
  Histogram* histogram_;
  TraceRing* ring_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t id_;
  std::uint64_t parent_;
  bool stopped_ = false;
};

}  // namespace dcv::obs
