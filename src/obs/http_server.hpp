#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dcv::obs {

/// One parsed HTTP/1.1 request as handed to a handler.
struct HttpRequest {
  std::string method;
  /// The raw request target, query string included.
  std::string target;
  /// Header fields in arrival order, names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// The target up to (excluding) any '?'.
  [[nodiscard]] std::string_view path() const;
  /// Everything after the first '?', or "".
  [[nodiscard]] std::string_view query() const;
  /// First header with this (lower-case) name, or "".
  [[nodiscard]] std::string_view header(std::string_view name) const;
  /// Value of `key` in the query string (key=value pairs split on '&'),
  /// or "" when absent.
  [[nodiscard]] std::string_view query_param(std::string_view key) const;
};

/// A handler's answer. Serialized as
///   HTTP/1.1 <status> <reason>\r\n
///   Content-Type: <content_type>\r\n
///   Content-Length: <body.size()>\r\n
///   <extra headers>
///   Connection: close\r\n\r\n<body>
/// which is byte-identical to the pre-concurrency TelemetryServer format
/// when extra_headers is empty — the scrape-endpoint compatibility
/// contract.
struct HttpResponse {
  int status = 200;
  /// Derived from `status` when empty (200 -> "OK", ...).
  std::string reason;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Runs on a worker thread; must be thread-safe against other handlers
/// (several workers execute concurrently) and against the serving system.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerConfig {
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back with
  /// port()).
  std::uint16_t port = 0;
  /// Pending-connection backlog handed to listen().
  int backlog = 64;
  /// Worker threads executing handlers. All socket IO happens on the
  /// event-loop thread; workers only run handlers, so this bounds handler
  /// concurrency (and with max_queued_requests, total admitted work).
  unsigned worker_threads = 4;
  /// Open-connection cap. At the cap the event loop stops polling the
  /// listening socket — further peers wait in the kernel backlog instead
  /// of accumulating connection state in the server.
  std::size_t max_connections = 128;
  /// Parsed requests allowed to wait for a worker. A request arriving with
  /// the queue full is answered 429 with Retry-After straight from the
  /// event loop — the admission-control bound.
  std::size_t max_queued_requests = 64;
  /// Default per-request byte cap (request line + headers + body).
  /// Routes may override with their own (usually larger) cap.
  std::size_t max_request_bytes = 4096;
  /// Per-connection progress deadline: a connection that makes no read or
  /// write progress for this long is answered 408 (mid-request) or closed
  /// (mid-response) — one slow-loris peer cannot pin a connection slot
  /// forever.
  std::chrono::milliseconds io_timeout{2000};
  /// How long stop() may lag: the event loop re-checks the shutdown flag
  /// at least this often when otherwise idle.
  std::chrono::milliseconds poll_interval{50};
  /// Retry-After header value on 429 overload responses.
  unsigned retry_after_seconds = 1;
  /// When set (must outlive the server), serving is instrumented:
  /// dcv_http_requests_total{path,code}, dcv_http_request_ns{path}
  /// (queue wait + handler, per matched route), and live
  /// dcv_http_open_connections / dcv_http_queued_requests gauges.
  MetricsRegistry* metrics = nullptr;
};

/// Dependency-free concurrent HTTP/1.1 server: a poll()-driven event loop
/// owns every socket (non-blocking accept/read/write, per-connection state
/// machines with IO deadlines, bounded connection count), and a small
/// worker pool executes handlers off a bounded dispatch queue. Admission
/// control is structural: connections beyond max_connections wait in the
/// kernel backlog, requests beyond max_queued_requests are answered 429
/// with Retry-After without ever touching a worker, and queue_saturation()
/// feeds readiness probes.
///
/// Lifecycle: construct, add_route()/set_fallback(), start(), stop().
/// Routes are fixed at start() — registration is not thread-safe against
/// serving. Responses always close the connection (Connection: close),
/// matching the scrape-oriented predecessor.
class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig config = {});
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();

  /// Registers a handler for exactly (method, path) — the request target
  /// is matched with its query string stripped. `max_body_bytes` lifts the
  /// config-default request cap for this route (0 keeps the default);
  /// oversized requests are refused with 413 before the body is read.
  void add_route(std::string method, std::string path, HttpHandler handler,
                 std::size_t max_body_bytes = 0);

  /// Handler for requests matching no route. Without one, unmatched
  /// requests get a plain 404.
  void set_fallback(HttpHandler handler);

  /// Binds, listens, spawns the event loop and workers. Throws
  /// std::system_error when the socket cannot be created or the port is in
  /// use.
  void start();

  /// Graceful shutdown: stops accepting, finishes writable responses,
  /// joins every thread. Idempotent; also run by the destructor.
  void stop();

  /// The actually bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Requests refused 429 because the dispatch queue was full.
  [[nodiscard]] std::uint64_t requests_rejected() const {
    return requests_rejected_.load(std::memory_order_relaxed);
  }
  /// Live open-connection count (event-loop owned sockets).
  [[nodiscard]] std::size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  /// Requests currently waiting for a worker.
  [[nodiscard]] std::size_t queued_requests() const {
    return queued_requests_.load(std::memory_order_relaxed);
  }
  /// queued_requests / max_queued_requests in [0,1] — the admission-control
  /// signal readiness probes compare against their saturation threshold.
  [[nodiscard]] double queue_saturation() const;

 private:
  struct Connection;
  struct Route {
    std::string method;
    std::string path;
    HttpHandler handler;
    std::size_t max_body_bytes = 0;
  };
  struct PendingRequest {
    std::uint64_t connection_id = 0;
    HttpRequest request;
    const Route* route = nullptr;  // null -> fallback
    std::chrono::steady_clock::time_point enqueued;
  };
  struct CompletedRequest {
    std::uint64_t connection_id = 0;
    std::string wire;  // fully serialized response
  };

  void event_loop();
  void worker_loop();
  /// Feeds newly read bytes through the connection's parser; returns false
  /// when the connection must close immediately (fatal parse error already
  /// queued as a response, or dispatch happened).
  void advance_parser(Connection& conn);
  void dispatch(Connection& conn, const Route* route);
  /// Serializes and stages `response` for writing on the event loop.
  void stage_response(Connection& conn, const HttpResponse& response,
                      const char* counted_path);
  void finish_write(Connection& conn);
  void close_connection(std::uint64_t id);
  void wake();
  [[nodiscard]] const Route* find_route(std::string_view method,
                                        std::string_view path) const;
  void count_request(std::string_view path, int code);
  Histogram* request_ns_for(std::string_view path);

  HttpServerConfig config_;
  std::vector<Route> routes_;
  HttpHandler fallback_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Event-loop state (touched only by the event-loop thread once started).
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_connection_id_ = 1;
  /// Requests dispatched (queued or running a handler) minus completed;
  /// shutdown drains until this and the connection map are empty.
  std::size_t inflight_ = 0;

  // Dispatch queue: event loop -> workers.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;

  // Completion queue: workers -> event loop (paired with a wake() write).
  std::mutex completed_mutex_;
  std::vector<CompletedRequest> completed_;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::size_t> open_connections_{0};
  std::atomic<std::size_t> queued_requests_{0};

  // Instrumentation (all null when config_.metrics is null).
  Gauge* open_connections_gauge_ = nullptr;
  Gauge* queued_requests_gauge_ = nullptr;
  std::mutex metrics_mutex_;
  std::map<std::pair<std::string, int>, Counter*> request_counters_;
  std::map<std::string, Histogram*, std::less<>> request_histograms_;

  std::thread event_thread_;
  std::vector<std::thread> workers_;
  std::mutex stop_mutex_;
};

/// Exact serialization shared with the legacy scrape format (status line,
/// Content-Type, Content-Length, extra headers, Connection: close).
[[nodiscard]] std::string serialize_http_response(const HttpResponse& response);

/// The default reason phrase for a status code ("OK", "Not Found", ...).
[[nodiscard]] std::string_view http_reason(int status);

}  // namespace dcv::obs
