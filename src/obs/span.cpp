#include "obs/span.hpp"

#include <algorithm>
#include <atomic>

namespace dcv::obs {

namespace {

/// Span ids are process-unique and never reused; 0 is reserved for "none".
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_thread_index{0};

thread_local std::uint64_t t_current_span = 0;
thread_local std::uint64_t t_current_cycle = 0;

}  // namespace

std::uint64_t current_span_id() { return t_current_span; }

std::uint64_t current_cycle_id() { return t_current_cycle; }

void set_current_cycle_id(std::uint64_t cycle) { t_current_cycle = cycle; }

std::uint32_t thread_index() {
  thread_local const std::uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::uint64_t allocate_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

TraceRing::TraceRing(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRing::attach_metrics(MetricsRegistry& registry) {
  dropped_total_ = &registry.counter(
      "dcv_obs_trace_dropped_total",
      "Spans overwritten in the trace ring before they could be exported");
  registry
      .gauge("dcv_obs_trace_ring_capacity",
             "Span capacity of the trace ring")
      .set(static_cast<double>(capacity_));
  size_gauge_ = &registry.gauge("dcv_obs_trace_ring_size",
                                "Spans currently retained in the trace ring");
}

void TraceRing::record(std::string_view name,
                       std::chrono::steady_clock::time_point start,
                       std::chrono::nanoseconds duration) {
  record_span(name, /*id=*/0, /*parent=*/0, /*cycle=*/0, start, duration);
}

void TraceRing::record_span(std::string_view name, std::uint64_t id,
                            std::uint64_t parent, std::uint64_t cycle,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::nanoseconds duration) {
  TraceEvent event{.name = std::string(name),
                   .id = id,
                   .parent = parent,
                   .cycle = cycle,
                   .thread = thread_index(),
                   .start = start - epoch_,
                   .duration = duration};
  std::size_t retained;
  bool overwrote;
  {
    const std::lock_guard lock(mutex_);
    overwrote = ring_.size() >= capacity_;
    if (!overwrote) {
      ring_.push_back(std::move(event));
    } else {
      ring_[total_ % capacity_] = std::move(event);
    }
    ++total_;
    retained = ring_.size();
  }
  if (overwrote && dropped_total_ != nullptr) dropped_total_->inc();
  if (size_gauge_ != nullptr) {
    size_gauge_->set(static_cast<double>(retained));
  }
}

std::vector<TraceEvent> TraceRing::events() const {
  const std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, the oldest retained event sits right after
  // the most recently overwritten slot.
  const std::size_t head = total_ > capacity_ ? total_ % capacity_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRing::recorded() const {
  const std::lock_guard lock(mutex_);
  return total_;
}

std::uint64_t TraceRing::dropped() const {
  const std::lock_guard lock(mutex_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

std::size_t TraceRing::size() const {
  const std::lock_guard lock(mutex_);
  return ring_.size();
}

Span::Span(std::string_view name, Histogram* histogram, TraceRing* ring)
    : name_(name),
      histogram_(histogram),
      ring_(ring),
      start_(std::chrono::steady_clock::now()),
      id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_(t_current_span) {
  t_current_span = id_;
}

std::chrono::nanoseconds Span::stop() {
  const auto duration = std::chrono::steady_clock::now() - start_;
  if (!stopped_) {
    stopped_ = true;
    // Well-nested usage means this span is the innermost; a stop() out of
    // order would clobber a child's stack entry, so only pop our own.
    if (t_current_span == id_) t_current_span = parent_;
    if (histogram_ != nullptr) {
      histogram_->observe(static_cast<std::uint64_t>(duration.count()));
    }
    if (ring_ != nullptr) {
      ring_->record_span(name_, id_, parent_, t_current_cycle, start_,
                         duration);
    }
  }
  return duration;
}

}  // namespace dcv::obs
