#include "obs/span.hpp"

#include <algorithm>

namespace dcv::obs {

TraceRing::TraceRing(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRing::record(std::string_view name,
                       std::chrono::steady_clock::time_point start,
                       std::chrono::nanoseconds duration) {
  TraceEvent event{.name = std::string(name),
                   .start = start - epoch_,
                   .duration = duration};
  const std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[total_ % capacity_] = std::move(event);
  }
  ++total_;
}

std::vector<TraceEvent> TraceRing::events() const {
  const std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, the oldest retained event sits right after
  // the most recently overwritten slot.
  const std::size_t head = total_ > capacity_ ? total_ % capacity_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRing::recorded() const {
  const std::lock_guard lock(mutex_);
  return total_;
}

std::uint64_t TraceRing::dropped() const {
  const std::lock_guard lock(mutex_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

}  // namespace dcv::obs
