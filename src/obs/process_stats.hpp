#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace dcv::obs {

/// Point-in-time memory footprint of this process, as the kernel sees it.
/// The scale benches gate on these (bytes/device at 20k+ fabrics), so they
/// must reflect *resident* memory — heap capacity the allocator holds but
/// never touched does not count.
struct ProcessStats {
  /// Current resident set size (/proc/self/statm on Linux), 0 when the
  /// platform exposes no reading.
  std::uint64_t rss_bytes = 0;
  /// High-water resident set size since process start (getrusage
  /// ru_maxrss).
  std::uint64_t peak_rss_bytes = 0;
};

/// Reads the current process stats. Cheap (one small /proc read plus one
/// syscall) but not hot-path cheap: call at scrape/report time, not per
/// operation.
[[nodiscard]] ProcessStats read_process_stats();

/// Registers (idempotently) and refreshes the process memory gauges:
///
///   dcv_process_rss_bytes       current resident set size
///   dcv_process_peak_rss_bytes  peak resident set size
///
/// Callers re-invoke at every export point — the /metrics scrape path and
/// bench report writes do — so the gauges are as fresh as the last reader.
void sample_process_gauges(MetricsRegistry& registry);

}  // namespace dcv::obs
