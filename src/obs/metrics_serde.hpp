#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace dcv::obs {

/// Binary snapshot of a whole registry (dcv-metrics-v1): every series with
/// its name, help, labels, type, and current value — counters/gauges as one
/// scalar, histograms as exact bucket counts plus count/sum/max. The format
/// is versioned and self-delimiting so a worker's registry can travel
/// inside a dist wire frame and be folded into the coordinator's registry
/// at the other end.
///
/// Values are read through the same relaxed atomics the exporters use, so
/// serializing while instruments record yields an approximate (but never
/// torn) snapshot, like collect().
[[nodiscard]] std::vector<std::uint8_t> serialize_registry(
    const MetricsRegistry& registry);

/// Decodes a dcv-metrics-v1 blob and merges every series into `into` with
/// MetricsRegistry::merge semantics (counters/histograms accumulate, gauges
/// adopt the snapshot value). `extra_labels` are appended to every decoded
/// series — the coordinator uses {worker=<id>} so one fleet's series stay
/// distinguishable after the fold. Returns false on any malformed input:
/// short buffer, bad magic/version, impossible counts, trailing garbage
/// (all rejected before anything merges), or a series whose type conflicts
/// with one already registered in `into` (series decoded before the
/// conflict stay merged). Never throws.
[[nodiscard]] bool merge_serialized(MetricsRegistry& into,
                                    std::span<const std::uint8_t> blob,
                                    const Labels& extra_labels = {});

/// Convenience round-trip used by tests: decodes into a fresh registry.
/// Returns false on malformed input.
[[nodiscard]] bool deserialize_registry(std::span<const std::uint8_t> blob,
                                        MetricsRegistry& out);

}  // namespace dcv::obs
