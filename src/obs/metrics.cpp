#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

#include "net/error.hpp"

namespace dcv::obs {

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < 8) return static_cast<std::size_t>(value);
  const auto octave = static_cast<std::size_t>(std::bit_width(value));
  const auto sub = static_cast<std::size_t>((value >> (octave - 3)) & 3);
  return 8 + (octave - 4) * 4 + sub;
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index < 8) return index;
  const std::size_t octave = 4 + (index - 8) / 4;
  const std::uint64_t sub = (index - 8) % 4;
  // For the topmost bucket (octave 64, sub 3) the shift wraps to 0 and the
  // -1 yields UINT64_MAX — exactly the intended inclusive upper bound.
  return ((sub + 5) << (octave - 3)) - 1;
}

double Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBucketCount> snapshot;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5), 1,
      total);

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (snapshot[i] == 0) continue;
    if (cumulative + snapshot[i] < rank) {
      cumulative += snapshot[i];
      continue;
    }
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(bucket_upper(i - 1) + 1);
    const double upper =
        std::min(static_cast<double>(bucket_upper(i)),
                 static_cast<double>(max_.load(std::memory_order_relaxed)));
    const double within = static_cast<double>(rank - cumulative) /
                          static_cast<double>(snapshot[i]);
    return lower + within * std::max(0.0, upper - lower);
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const std::uint64_t other_max = other.max();
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::merge_counts(
    const std::array<std::uint64_t, kBucketCount>& buckets,
    std::uint64_t count, std::uint64_t sum, std::uint64_t max_value) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] != 0) {
      buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (max_value > seen && !max_.compare_exchange_weak(
                                 seen, max_value, std::memory_order_relaxed)) {
  }
}

std::string_view to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {

std::string series_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        std::string_view help,
                                                        Labels labels,
                                                        MetricType type) {
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  const std::lock_guard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    if (it->second->metric.type != type) {
      throw InvalidArgument("metric '" + std::string(name) +
                            "' re-registered as a different type");
    }
    return *it->second;
  }
  Entry& entry = entries_.emplace_back();
  entry.metric.name = std::string(name);
  entry.metric.help = std::string(help);
  entry.metric.type = type;
  entry.metric.labels = std::move(labels);
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      entry.metric.counter = entry.counter.get();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      entry.metric.gauge = entry.gauge.get();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      entry.metric.histogram = entry.histogram.get();
      break;
  }
  index_.emplace(key, &entry);
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricType::kCounter)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricType::kGauge)
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help, Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricType::kHistogram)
              .histogram;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot first: find_or_create locks our mutex, and `other` may be
  // `*this` only by caller error, which collect() makes safe anyway.
  for (const Metric& metric : other.collect()) {
    switch (metric.type) {
      case MetricType::kCounter:
        counter(metric.name, metric.help, metric.labels)
            .inc(metric.counter->value());
        break;
      case MetricType::kGauge:
        gauge(metric.name, metric.help, metric.labels)
            .set(metric.gauge->value());
        break;
      case MetricType::kHistogram:
        histogram(metric.name, metric.help, metric.labels)
            .merge(*metric.histogram);
        break;
    }
  }
}

std::vector<MetricsRegistry::Metric> MetricsRegistry::collect() const {
  const std::lock_guard lock(mutex_);
  std::vector<Metric> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.metric);
  return out;
}

}  // namespace dcv::obs
