#pragma once

#include <functional>
#include <string>

namespace dcv::obs {

/// Liveness/readiness verdict as served by TelemetryServer (/healthz,
/// /readyz). `alive` answers "is the process making progress at all";
/// `ready` answers "should traffic/alert consumers trust this instance
/// right now" (coverage above threshold, breakers quiet, queue not
/// saturated, last cycle fresh).
struct HealthSnapshot {
  bool alive = true;
  bool ready = true;
  /// Human-readable explanation, one "key: value" per line. Served as the
  /// endpoint body, so a failing /readyz names the violated rule.
  std::string detail;
};

/// Called per /healthz-/readyz request, from the server's listener thread —
/// probes must be cheap and thread-safe against the instrumented system.
using HealthProbe = std::function<HealthSnapshot()>;

}  // namespace dcv::obs
