#include "obs/metrics_serde.hpp"

#include <array>
#include <utility>

#include "net/bytes.hpp"

namespace dcv::obs {

namespace {

constexpr std::uint32_t kMagic = 0x4D564344;  // "DCVM" in LE byte order
constexpr std::uint16_t kVersion = 1;

/// A decoded series, staged before the merge so malformed input can be
/// rejected without touching the destination registry.
struct DecodedSeries {
  MetricType type = MetricType::kCounter;
  std::string name;
  std::string help;
  Labels labels;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  std::uint64_t hist_count = 0;
  std::uint64_t hist_sum = 0;
  std::uint64_t hist_max = 0;
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
};

bool decode(std::span<const std::uint8_t> blob,
            std::vector<DecodedSeries>& out) {
  net::ByteReader reader(blob);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  if (!reader.u32(magic) || magic != kMagic) return false;
  if (!reader.u16(version) || version != kVersion) return false;
  std::uint32_t series = 0;
  // A series is at least type + two empty strings + label count = 13 bytes.
  if (!reader.count(series, 13)) return false;
  out.reserve(series);
  for (std::uint32_t i = 0; i < series; ++i) {
    DecodedSeries s;
    std::uint8_t type = 0;
    if (!reader.u8(type) || type > static_cast<std::uint8_t>(
                                       MetricType::kHistogram)) {
      return false;
    }
    s.type = static_cast<MetricType>(type);
    if (!reader.str(s.name) || !reader.str(s.help)) return false;
    std::uint32_t labels = 0;
    if (!reader.count(labels, 8)) return false;
    s.labels.reserve(labels);
    for (std::uint32_t l = 0; l < labels; ++l) {
      std::string key, value;
      if (!reader.str(key) || !reader.str(value)) return false;
      s.labels.emplace_back(std::move(key), std::move(value));
    }
    switch (s.type) {
      case MetricType::kCounter:
        if (!reader.u64(s.counter)) return false;
        break;
      case MetricType::kGauge:
        if (!reader.f64(s.gauge)) return false;
        break;
      case MetricType::kHistogram: {
        if (!reader.u64(s.hist_count) || !reader.u64(s.hist_sum) ||
            !reader.u64(s.hist_max)) {
          return false;
        }
        std::uint32_t nonzero = 0;
        if (!reader.count(nonzero, 10)) return false;
        for (std::uint32_t b = 0; b < nonzero; ++b) {
          std::uint16_t index = 0;
          std::uint64_t value = 0;
          if (!reader.u16(index) || !reader.u64(value)) return false;
          if (index >= Histogram::kBucketCount) return false;
          s.buckets[index] = value;
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return reader.done();
}

}  // namespace

std::vector<std::uint8_t> serialize_registry(const MetricsRegistry& registry) {
  const auto metrics = registry.collect();
  net::ByteWriter writer;
  writer.u32(kMagic);
  writer.u16(kVersion);
  writer.u32(static_cast<std::uint32_t>(metrics.size()));
  for (const auto& metric : metrics) {
    writer.u8(static_cast<std::uint8_t>(metric.type));
    writer.str(metric.name);
    writer.str(metric.help);
    writer.u32(static_cast<std::uint32_t>(metric.labels.size()));
    for (const auto& [key, value] : metric.labels) {
      writer.str(key);
      writer.str(value);
    }
    switch (metric.type) {
      case MetricType::kCounter:
        writer.u64(metric.counter->value());
        break;
      case MetricType::kGauge:
        writer.f64(metric.gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *metric.histogram;
        writer.u64(h.count());
        writer.u64(h.sum());
        writer.u64(h.max());
        // Sparse buckets: real histograms populate a handful of the 252
        // slots, so (index, count) pairs beat a dense dump.
        std::uint32_t nonzero = 0;
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          if (h.bucket_count(i) != 0) ++nonzero;
        }
        writer.u32(nonzero);
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          const std::uint64_t n = h.bucket_count(i);
          if (n == 0) continue;
          writer.u16(static_cast<std::uint16_t>(i));
          writer.u64(n);
        }
        break;
      }
    }
  }
  return writer.take();
}

bool merge_serialized(MetricsRegistry& into,
                      std::span<const std::uint8_t> blob,
                      const Labels& extra_labels) {
  std::vector<DecodedSeries> series;
  if (!decode(blob, series)) return false;
  // Registering a name that already exists under a different type throws;
  // treat that as malformed input too, after verifying up front so a
  // half-merged blob never happens.
  try {
    for (DecodedSeries& s : series) {
      for (const auto& extra : extra_labels) s.labels.push_back(extra);
      switch (s.type) {
        case MetricType::kCounter:
          into.counter(s.name, s.help, s.labels).inc(s.counter);
          break;
        case MetricType::kGauge:
          into.gauge(s.name, s.help, s.labels).set(s.gauge);
          break;
        case MetricType::kHistogram:
          into.histogram(s.name, s.help, s.labels)
              .merge_counts(s.buckets, s.hist_count, s.hist_sum, s.hist_max);
          break;
      }
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool deserialize_registry(std::span<const std::uint8_t> blob,
                          MetricsRegistry& out) {
  return merge_serialized(out, blob);
}

}  // namespace dcv::obs
