#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/span.hpp"

namespace dcv::obs {

/// Binary snapshot of trace spans (dcv-trace-v1): every event with its
/// name, span/parent ids, cycle correlation, thread index, start, and
/// duration, plus the producer's drop count. Starts travel as *absolute*
/// steady-clock nanoseconds of the recording process (ring epoch + stored
/// offset), so a receiver that knows the sender's clock offset can rebase
/// them onto its own timeline. The format is versioned and self-delimiting
/// so a worker's span tree can travel inside a dist wire frame.
[[nodiscard]] std::vector<std::uint8_t> serialize_trace(const TraceRing& ring);

/// Same format over an explicit event batch whose `start` fields are
/// offsets from `epoch` (pass a zero epoch when starts are already
/// absolute). Used by workers shipping per-shard span batches without
/// routing them through a ring.
[[nodiscard]] std::vector<std::uint8_t> serialize_trace(
    std::span<const TraceEvent> events, std::chrono::nanoseconds epoch,
    std::uint64_t dropped = 0);

/// A decoded dcv-trace-v1 blob. Unlike ring-resident events, each event's
/// `start` here is absolute sender-steady-clock nanoseconds.
struct DecodedTrace {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// Decodes a dcv-trace-v1 blob. Returns false on any malformed input —
/// short buffer, bad magic/version, impossible counts, trailing garbage —
/// leaving `out` untouched. Never throws, never reads out of bounds (the
/// dist mutation-fuzz corpus runs this path under ASan+UBSan).
[[nodiscard]] bool deserialize_trace(std::span<const std::uint8_t> blob,
                                     DecodedTrace& out);

}  // namespace dcv::obs
