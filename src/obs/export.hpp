#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dcv::obs {

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// one # HELP / # TYPE header per family, histograms as cumulative
/// _bucket{le=...} series plus _sum and _count. Empty log-buckets are
/// elided (the cumulative counts stay correct); le bounds are the
/// histogram's integer bucket uppers.
[[nodiscard]] std::string write_prometheus(const MetricsRegistry& registry);

/// Renders the registry as a JSON document:
///   {"metrics":[{"name":...,"type":...,"labels":{...}, ...}]}
/// with counters/gauges carrying "value" and histograms carrying
/// count/sum/max/mean/p50/p90/p99 plus the non-empty buckets.
[[nodiscard]] std::string write_json(const MetricsRegistry& registry);

/// Renders a trace ring as JSON: retained spans (oldest first) with start
/// offset and duration in nanoseconds, span/parent ids, cycle correlation
/// and thread index, plus the drop count.
[[nodiscard]] std::string write_trace_json(const TraceRing& ring);

/// Renders a trace ring in the Chrome trace-event JSON format (complete
/// "X" events, ts/dur in microseconds), loadable in Perfetto or
/// chrome://tracing. Parent/cycle links travel in each event's args;
/// same-thread nesting is additionally visible from ts/dur containment on
/// one tid track.
[[nodiscard]] std::string write_chrome_trace(const TraceRing& ring);

}  // namespace dcv::obs
