#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_merge.hpp"

namespace dcv::obs {

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// one # HELP / # TYPE header per family, histograms as cumulative
/// _bucket{le=...} series plus _sum and _count. Empty log-buckets are
/// elided (the cumulative counts stay correct); le bounds are the
/// histogram's integer bucket uppers.
[[nodiscard]] std::string write_prometheus(const MetricsRegistry& registry);

/// Renders the registry as a JSON document:
///   {"metrics":[{"name":...,"type":...,"labels":{...}, ...}]}
/// with counters/gauges carrying "value" and histograms carrying
/// count/sum/max/mean/p50/p90/p99 plus the non-empty buckets.
[[nodiscard]] std::string write_json(const MetricsRegistry& registry);

/// Renders a trace ring as JSON: retained spans (oldest first) with start
/// offset and duration in nanoseconds, span/parent ids, cycle correlation
/// and thread index, plus the drop count.
[[nodiscard]] std::string write_trace_json(const TraceRing& ring);

/// Bounded variant for HTTP serving: renders at most `max_spans` spans
/// (oldest first) and reports how many were cut in a "truncated" field, so
/// a huge ring cannot wedge the telemetry server's sequential connection
/// loop with an unbounded response.
[[nodiscard]] std::string write_trace_json(const TraceRing& ring,
                                           std::size_t max_spans);

/// Renders a merged fleet trace as JSON: one entry per process track plus
/// sender-side drop and merger/render truncation counts:
///   {"dropped":N,"truncated":M,"processes":[{"process":...,"spans":[...]}]}
/// At most `max_spans` spans total across tracks; the cut count is added
/// to "truncated".
[[nodiscard]] std::string write_trace_json(const MergedTrace& merged,
                                           std::size_t max_spans);

/// Renders a trace ring in the Chrome trace-event JSON format (complete
/// "X" events, ts/dur in microseconds), loadable in Perfetto or
/// chrome://tracing. Parent/cycle links travel in each event's args;
/// same-thread nesting is additionally visible from ts/dur containment on
/// one tid track.
[[nodiscard]] std::string write_chrome_trace(const TraceRing& ring);

/// Chrome trace-event rendering of a merged fleet trace: one pid per
/// process track, named via "M" process_name metadata events, so Perfetto
/// shows the coordinator and each worker as separately labelled tracks on
/// one offset-aligned timeline.
[[nodiscard]] std::string write_chrome_trace(const MergedTrace& merged);

}  // namespace dcv::obs
