#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dcv::obs {

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// one # HELP / # TYPE header per family, histograms as cumulative
/// _bucket{le=...} series plus _sum and _count. Empty log-buckets are
/// elided (the cumulative counts stay correct); le bounds are the
/// histogram's integer bucket uppers.
[[nodiscard]] std::string write_prometheus(const MetricsRegistry& registry);

/// Renders the registry as a JSON document:
///   {"metrics":[{"name":...,"type":...,"labels":{...}, ...}]}
/// with counters/gauges carrying "value" and histograms carrying
/// count/sum/max/mean/p50/p90/p99 plus the non-empty buckets.
[[nodiscard]] std::string write_json(const MetricsRegistry& registry);

/// Renders a trace ring as JSON: retained spans (oldest first) with start
/// offset and duration in nanoseconds, plus the drop count.
[[nodiscard]] std::string write_trace_json(const TraceRing& ring);

}  // namespace dcv::obs
