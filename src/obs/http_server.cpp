#include "obs/http_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <system_error>

namespace dcv::obs {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string ascii_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

constexpr std::string_view kTextType = "text/plain; charset=utf-8";

HttpResponse plain_response(int status, std::string_view body) {
  HttpResponse response;
  response.status = status;
  response.content_type = kTextType;
  response.body = body;
  return response;
}

}  // namespace

std::string_view http_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return status < 400 ? "OK" : "Error";
  }
}

std::string serialize_http_response(const HttpResponse& response) {
  const std::string_view reason = response.reason.empty()
                                      ? http_reason(response.status)
                                      : std::string_view(response.reason);
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string_view HttpRequest::path() const {
  const std::string_view t(target);
  const auto query = t.find('?');
  return query == std::string_view::npos ? t : t.substr(0, query);
}

std::string_view HttpRequest::query() const {
  const std::string_view t(target);
  const auto query = t.find('?');
  return query == std::string_view::npos ? std::string_view{}
                                         : t.substr(query + 1);
}

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

std::string_view HttpRequest::query_param(std::string_view key) const {
  std::string_view rest = query();
  while (!rest.empty()) {
    const auto amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const auto eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (eq == std::string_view::npos && pair == key) return {};
  }
  return {};
}

/// Per-connection state machine. Owned by the event loop; workers refer to
/// connections only by id, so a connection closed mid-handling (peer churn,
/// deadline) simply drops the eventual response.
struct HttpServer::Connection {
  enum class State : std::uint8_t {
    kReading,   // accumulating request bytes; fd polled for POLLIN
    kHandling,  // dispatched to a worker; fd not polled
    kWriting,   // response staged; fd polled for POLLOUT
  };

  int fd = -1;
  std::uint64_t id = 0;
  State state = State::kReading;
  std::string in;
  std::string out;
  std::size_t out_sent = 0;
  /// Closes the connection when the peer makes no progress by this time
  /// (reading or writing; suspended while a worker runs the handler).
  std::chrono::steady_clock::time_point deadline;

  // Incremental parse state.
  bool line_parsed = false;
  bool headers_parsed = false;
  std::size_t header_end = 0;  // offset just past "\r\n\r\n"
  std::size_t body_expected = 0;
  HttpRequest request;
  const Route* route = nullptr;
};

HttpServer::HttpServer(HttpServerConfig config) : config_(config) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_connections == 0) config_.max_connections = 1;
  if (config_.max_queued_requests == 0) config_.max_queued_requests = 1;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::add_route(std::string method, std::string path,
                           HttpHandler handler, std::size_t max_body_bytes) {
  routes_.push_back(Route{std::move(method), std::move(path),
                          std::move(handler), max_body_bytes});
}

void HttpServer::set_fallback(HttpHandler handler) {
  fallback_ = std::move(handler);
}

double HttpServer::queue_saturation() const {
  return static_cast<double>(queued_requests_.load(std::memory_order_relaxed)) /
         static_cast<double>(config_.max_queued_requests);
}

void HttpServer::start() {
  if (started_) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("http: socket");
  // REUSEADDR lets a restarted server rebind through TIME_WAIT; binding a
  // port with a live listener still fails, which is the error we want.
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("http: bind");
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("http: listen");
  }
  set_nonblocking(listen_fd_);
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("http: pipe");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  if (config_.metrics != nullptr) {
    open_connections_gauge_ = &config_.metrics->gauge(
        "dcv_http_open_connections", "Open HTTP connections");
    queued_requests_gauge_ = &config_.metrics->gauge(
        "dcv_http_queued_requests",
        "Parsed HTTP requests waiting for a worker thread");
    // Pre-register each route's latency series so /metrics shows the
    // family even before the first hit.
    for (const Route& route : routes_) (void)request_ns_for(route.path);
  }

  stopping_.store(false, std::memory_order_relaxed);
  started_ = true;
  event_thread_ = std::thread([this] { event_loop(); });
  workers_.reserve(config_.worker_threads);
  for (unsigned w = 0; w < config_.worker_threads; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::stop() {
  const std::lock_guard lock(stop_mutex_);
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  wake();
  queue_cv_.notify_all();
  if (event_thread_.joinable()) event_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  started_ = false;
}

void HttpServer::wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

const HttpServer::Route* HttpServer::find_route(std::string_view method,
                                                std::string_view path) const {
  for (const Route& route : routes_) {
    if (route.method == method && route.path == path) return &route;
  }
  return nullptr;
}

void HttpServer::count_request(std::string_view path, int code) {
  if (config_.metrics == nullptr) return;
  const std::lock_guard lock(metrics_mutex_);
  const auto key = std::make_pair(std::string(path), code);
  auto it = request_counters_.find(key);
  if (it == request_counters_.end()) {
    Counter& counter = config_.metrics->counter(
        "dcv_http_requests_total", "HTTP requests by path and status code",
        {{"path", key.first}, {"code", std::to_string(code)}});
    it = request_counters_.emplace(key, &counter).first;
  }
  it->second->inc();
}

Histogram* HttpServer::request_ns_for(std::string_view path) {
  if (config_.metrics == nullptr) return nullptr;
  const std::lock_guard lock(metrics_mutex_);
  auto it = request_histograms_.find(path);
  if (it == request_histograms_.end()) {
    Histogram& histogram = config_.metrics->histogram(
        "dcv_http_request_ns",
        "Request latency from dispatch to response ready (queue wait + "
        "handler execution)",
        {{"path", std::string(path)}});
    it = request_histograms_.emplace(std::string(path), &histogram).first;
  }
  return it->second;
}

void HttpServer::event_loop() {
  std::vector<pollfd> pollfds;
  std::vector<std::uint64_t> poll_ids;  // pollfds[i+2] -> connection id
  // Once stopping, in-flight handlers and staged responses get one IO
  // deadline's grace to finish before the loop abandons them.
  std::chrono::steady_clock::time_point grace_deadline{};
  bool grace_armed = false;

  while (true) {
    const bool stopping = stopping_.load(std::memory_order_relaxed);
    auto now = std::chrono::steady_clock::now();
    if (stopping) {
      if (!grace_armed) {
        grace_armed = true;
        grace_deadline = now + std::min(config_.io_timeout,
                                        std::chrono::milliseconds(2000));
        // Abandon connections still reading and everything queued but not
        // yet picked up: no new work once shutdown starts.
        {
          const std::lock_guard lock(queue_mutex_);
          for (const PendingRequest& pending : queue_) {
            close_connection(pending.connection_id);
            --inflight_;
          }
          queued_requests_.store(0, std::memory_order_relaxed);
          if (queued_requests_gauge_ != nullptr) {
            queued_requests_gauge_->set(0);
          }
          queue_.clear();
        }
        std::vector<std::uint64_t> to_close;
        for (const auto& [id, conn] : connections_) {
          if (conn->state == Connection::State::kReading) to_close.push_back(id);
        }
        for (const std::uint64_t id : to_close) close_connection(id);
      }
      const bool drained = connections_.empty() && inflight_ == 0;
      if (drained || now >= grace_deadline) break;
    }

    pollfds.clear();
    poll_ids.clear();
    pollfds.push_back({.fd = wake_read_fd_, .events = POLLIN, .revents = 0});
    const bool accepting =
        !stopping && connections_.size() < config_.max_connections;
    pollfds.push_back({.fd = accepting ? listen_fd_ : -1,
                       .events = POLLIN,
                       .revents = 0});
    auto next_deadline = now + config_.poll_interval;
    for (const auto& [id, conn] : connections_) {
      short events = 0;
      if (conn->state == Connection::State::kReading) events = POLLIN;
      if (conn->state == Connection::State::kWriting) events = POLLOUT;
      if (events == 0) continue;  // handling: fd parked until completion
      pollfds.push_back({.fd = conn->fd, .events = events, .revents = 0});
      poll_ids.push_back(id);
      next_deadline = std::min(next_deadline, conn->deadline);
    }
    const auto wait = std::max<std::int64_t>(
        0, std::chrono::duration_cast<std::chrono::milliseconds>(
               next_deadline - now)
               .count());
    const int ready =
        ::poll(pollfds.data(), pollfds.size(), static_cast<int>(wait));
    now = std::chrono::steady_clock::now();
    if (ready < 0 && errno != EINTR) break;

    // Wake-pipe drain, then worker completions: attach each response to
    // its (still open) connection and start writing.
    if (pollfds[0].revents & POLLIN) {
      char buffer[256];
      while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
      }
    }
    {
      std::vector<CompletedRequest> completed;
      {
        const std::lock_guard lock(completed_mutex_);
        completed.swap(completed_);
      }
      for (CompletedRequest& done : completed) {
        --inflight_;
        const auto it = connections_.find(done.connection_id);
        if (it == connections_.end()) continue;  // peer churned mid-handling
        Connection& conn = *it->second;
        conn.out = std::move(done.wire);
        conn.out_sent = 0;
        conn.state = Connection::State::kWriting;
        conn.deadline = now + config_.io_timeout;
        finish_write(conn);  // often completes in one shot on loopback
        // finish_write may have closed (freed) the connection on a send
        // error — re-look-up instead of touching the reference.
        const auto again = connections_.find(done.connection_id);
        if (again != connections_.end() &&
            again->second->state == Connection::State::kWriting &&
            again->second->out_sent >= again->second->out.size()) {
          close_connection(done.connection_id);
        }
      }
    }

    if (pollfds[1].revents & POLLIN) {
      while (connections_.size() < config_.max_connections) {
        const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (client < 0) break;
        auto conn = std::make_unique<Connection>();
        conn->fd = client;
        conn->id = next_connection_id_++;
        conn->deadline = now + config_.io_timeout;
        connections_.emplace(conn->id, std::move(conn));
        open_connections_.store(connections_.size(),
                                std::memory_order_relaxed);
        if (open_connections_gauge_ != nullptr) {
          open_connections_gauge_->set(
              static_cast<double>(connections_.size()));
        }
      }
    }

    for (std::size_t i = 0; i < poll_ids.size(); ++i) {
      const pollfd& pfd = pollfds[i + 2];
      const auto it = connections_.find(poll_ids[i]);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        close_connection(conn.id);
        continue;
      }
      if (conn.state == Connection::State::kReading &&
          (pfd.revents & (POLLIN | POLLHUP))) {
        char buffer[4096];
        bool peer_done = false;
        while (true) {
          const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
          if (n > 0) {
            conn.in.append(buffer, static_cast<std::size_t>(n));
            conn.deadline = now + config_.io_timeout;
            continue;
          }
          if (n == 0) peer_done = true;
          break;  // EAGAIN, EOF, or error
        }
        // advance_parser can stage an error response whose write fails,
        // closing (freeing) the connection — keep the id on the stack.
        const std::uint64_t conn_id = conn.id;
        advance_parser(conn);
        if (connections_.find(conn_id) == connections_.end()) continue;
        if (peer_done && conn.state == Connection::State::kReading) {
          // Peer half-closed before the request completed. Mirror the
          // sequential server: answer what arrived (400 when even the
          // request line is missing), writable because only SHUT_WR'd
          // peers read on.
          if (conn.line_parsed) {
            conn.headers_parsed = true;
            conn.body_expected = 0;
            conn.request.body = conn.in.substr(
                std::min(conn.header_end, conn.in.size()));
            dispatch(conn, conn.route);
          } else if (!conn.in.empty()) {
            count_request("(unrouted)", 400);
            stage_response(conn, plain_response(400, "bad request\n"),
                           nullptr);
          } else {
            close_connection(conn.id);
          }
        }
      } else if (conn.state == Connection::State::kWriting &&
                 (pfd.revents & (POLLOUT | POLLHUP))) {
        const std::uint64_t conn_id = conn.id;
        conn.deadline = now + config_.io_timeout;
        finish_write(conn);
        const auto again = connections_.find(conn_id);
        if (again != connections_.end() &&
            again->second->out_sent >= again->second->out.size()) {
          close_connection(conn_id);
        }
      }
    }

    // Deadline sweep: a peer that stalled mid-request gets 408; one that
    // stalls mid-response (won't read) is dropped.
    std::vector<std::uint64_t> expired_read;
    std::vector<std::uint64_t> expired_write;
    for (const auto& [id, conn] : connections_) {
      if (conn->deadline > now) continue;
      if (conn->state == Connection::State::kReading) expired_read.push_back(id);
      if (conn->state == Connection::State::kWriting) {
        expired_write.push_back(id);
      }
    }
    for (const std::uint64_t id : expired_write) close_connection(id);
    for (const std::uint64_t id : expired_read) {
      Connection& conn = *connections_.at(id);
      count_request("(unrouted)", 408);
      stage_response(conn, plain_response(408, "request timeout\n"), nullptr);
    }
  }

  for (const auto& [id, conn] : connections_) {
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
  }
  connections_.clear();
  open_connections_.store(0, std::memory_order_relaxed);
  if (open_connections_gauge_ != nullptr) open_connections_gauge_->set(0);
}

void HttpServer::advance_parser(Connection& conn) {
  if (conn.state != Connection::State::kReading) return;

  if (!conn.line_parsed) {
    const auto line_end = conn.in.find("\r\n");
    if (line_end == std::string::npos) {
      // The request line alone gets the default cap; no request needs a
      // kilobyte-scale first line.
      if (conn.in.size() > config_.max_request_bytes) {
        count_request("(unrouted)", 400);
        stage_response(conn, plain_response(400, "bad request\n"), nullptr);
      }
      return;
    }
    const std::string_view line(conn.in.data(), line_end);
    const auto method_end = line.find(' ');
    const auto target_end = line.find(' ', method_end + 1);
    if (method_end == std::string_view::npos ||
        target_end == std::string_view::npos || method_end == 0 ||
        target_end == method_end + 1) {
      count_request("(unrouted)", 400);
      stage_response(conn, plain_response(400, "bad request\n"), nullptr);
      return;
    }
    conn.request.method = std::string(line.substr(0, method_end));
    conn.request.target =
        std::string(line.substr(method_end + 1, target_end - method_end - 1));
    conn.route = find_route(conn.request.method, conn.request.path());
    conn.line_parsed = true;
  }

  if (!conn.headers_parsed) {
    const auto blank = conn.in.find("\r\n\r\n");
    if (blank == std::string::npos) {
      // Header section is bounded by the default cap regardless of any
      // per-route body allowance.
      if (conn.in.size() > config_.max_request_bytes) {
        count_request(conn.route != nullptr ? std::string_view(conn.route->path)
                                            : std::string_view("(unrouted)"),
                      413);
        stage_response(conn,
                       plain_response(413, "request header section too large\n"),
                       nullptr);
      }
      return;
    }
    conn.header_end = blank + 4;
    const std::string_view head(conn.in.data(), blank + 2);
    std::size_t cursor = head.find("\r\n") + 2;  // skip the request line
    while (cursor < head.size()) {
      const auto eol = head.find("\r\n", cursor);
      const std::string_view line = head.substr(cursor, eol - cursor);
      cursor = eol + 2;
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) continue;  // lenient: skip junk
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
        value.remove_prefix(1);
      }
      conn.request.headers.emplace_back(ascii_lower(line.substr(0, colon)),
                                        std::string(value));
    }
    const std::string_view counted_path =
        conn.route != nullptr ? std::string_view(conn.route->path)
                              : std::string_view("(unrouted)");
    if (!conn.request.header("transfer-encoding").empty()) {
      count_request(counted_path, 501);
      stage_response(conn,
                     plain_response(501, "chunked bodies not supported\n"),
                     nullptr);
      return;
    }
    const std::string_view length_text = conn.request.header("content-length");
    std::size_t body_cap = config_.max_request_bytes;
    if (conn.route != nullptr && conn.route->max_body_bytes > 0) {
      body_cap = conn.route->max_body_bytes;
    }
    if (!length_text.empty()) {
      std::size_t length = 0;
      const auto [ptr, ec] = std::from_chars(
          length_text.data(), length_text.data() + length_text.size(), length);
      if (ec != std::errc{} || ptr != length_text.data() + length_text.size()) {
        count_request(counted_path, 400);
        stage_response(conn, plain_response(400, "bad content-length\n"),
                       nullptr);
        return;
      }
      if (length > body_cap) {
        // Refuse before reading the body: the peer learns the cap instead
        // of streaming megabytes into a connection that will fail anyway.
        count_request(counted_path, 413);
        stage_response(
            conn,
            plain_response(413, "request body exceeds " +
                                    std::to_string(body_cap) + " bytes\n"),
            nullptr);
        return;
      }
      conn.body_expected = length;
    }
    conn.headers_parsed = true;
  }

  if (conn.in.size() < conn.header_end + conn.body_expected) return;
  conn.request.body = conn.in.substr(conn.header_end, conn.body_expected);
  dispatch(conn, conn.route);
}

void HttpServer::dispatch(Connection& conn, const Route* route) {
  conn.state = Connection::State::kHandling;
  PendingRequest pending;
  pending.connection_id = conn.id;
  pending.request = std::move(conn.request);
  pending.route = route;
  pending.enqueued = std::chrono::steady_clock::now();
  {
    const std::lock_guard lock(queue_mutex_);
    if (queue_.size() >= config_.max_queued_requests) {
      requests_rejected_.fetch_add(1, std::memory_order_relaxed);
      const std::string_view counted_path =
          route != nullptr ? std::string_view(route->path)
                           : std::string_view("(unrouted)");
      count_request(counted_path, 429);
      HttpResponse response = plain_response(
          429, "overloaded: request queue is full, retry later\n");
      response.extra_headers.emplace_back(
          "Retry-After", std::to_string(config_.retry_after_seconds));
      stage_response(conn, response, nullptr);
      return;
    }
    queue_.push_back(std::move(pending));
    ++inflight_;
    queued_requests_.store(queue_.size(), std::memory_order_relaxed);
    if (queued_requests_gauge_ != nullptr) {
      queued_requests_gauge_->set(static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
}

void HttpServer::stage_response(Connection& conn, const HttpResponse& response,
                                const char* /*counted_path*/) {
  const std::uint64_t id = conn.id;
  conn.out = serialize_http_response(response);
  conn.out_sent = 0;
  conn.state = Connection::State::kWriting;
  conn.deadline = std::chrono::steady_clock::now() + config_.io_timeout;
  finish_write(conn);  // may close (free) the connection on a send error
  const auto it = connections_.find(id);
  if (it != connections_.end() &&
      it->second->out_sent >= it->second->out.size()) {
    close_connection(id);
  }
}

void HttpServer::finish_write(Connection& conn) {
  while (conn.out_sent < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_sent,
                             conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer vanished mid-response: nothing left to deliver.
    close_connection(conn.id);
    return;
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

void HttpServer::close_connection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ::shutdown(it->second->fd, SHUT_WR);
  ::close(it->second->fd);
  connections_.erase(it);
  open_connections_.store(connections_.size(), std::memory_order_relaxed);
  if (open_connections_gauge_ != nullptr) {
    open_connections_gauge_->set(static_cast<double>(connections_.size()));
  }
}

void HttpServer::worker_loop() {
  while (true) {
    PendingRequest pending;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
      queued_requests_.store(queue_.size(), std::memory_order_relaxed);
      if (queued_requests_gauge_ != nullptr) {
        queued_requests_gauge_->set(static_cast<double>(queue_.size()));
      }
    }

    const std::string_view counted_path =
        pending.route != nullptr ? std::string_view(pending.route->path)
                                 : std::string_view("(unrouted)");
    HttpResponse response;
    try {
      if (pending.route != nullptr) {
        response = pending.route->handler(pending.request);
      } else if (fallback_) {
        response = fallback_(pending.request);
      } else {
        response = plain_response(404, "unknown endpoint\n");
      }
    } catch (const std::exception& error) {
      response =
          plain_response(500, std::string("handler error: ") + error.what() +
                                  "\n");
    } catch (...) {
      response = plain_response(500, "handler error\n");
    }
    count_request(counted_path, response.status);
    if (Histogram* histogram = request_ns_for(counted_path)) {
      histogram->observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - pending.enqueued)
              .count()));
    }

    CompletedRequest done;
    done.connection_id = pending.connection_id;
    done.wire = serialize_http_response(response);
    {
      const std::lock_guard lock(completed_mutex_);
      completed_.push_back(std::move(done));
    }
    wake();
  }
}

}  // namespace dcv::obs
