// secguru_check — validate a connectivity policy against a contract file.
//
// The command-line face of SecGuru (Figure 10): reads an ACL in the Cisco
// IOS-style syntax of Figure 8 (or an NSG in the Figure 9 tabular format),
// reads a contract suite, and reports every failed invariant with its
// witness packet and the violating rule. Exit status 0 iff all contracts
// hold — ready to gate a deployment pipeline (§3.3/§3.5).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "secguru/acl_parser.hpp"
#include "secguru/contracts_io.hpp"
#include "secguru/device_config.hpp"
#include "secguru/engine.hpp"
#include "secguru/fast_engine.hpp"
#include "secguru/nsg.hpp"

namespace {

void usage() {
  std::cerr <<
      "usage: secguru_check --policy FILE --contracts FILE [options]\n"
      "       secguru_check --config FILE --acl NAME --contracts FILE\n"
      "  --config FILE     read a full device configuration and analyze\n"
      "                    the ACL named by --acl (the SS3.2 interface)\n"
      "  --nsg             parse the policy as an NSG table (Figure 9\n"
      "                    format) instead of a Cisco-style ACL\n"
      "  --deny-overrides  use deny-overrides semantics (host firewalls)\n"
      "  --shadowed        also report redundant rules\n"
      "  --smt-only        skip the interval fast path, use Z3 for every\n"
      "                    contract (the pre-fast-path behavior)\n"
      "  --quiet           print only the summary line\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "secguru_check: cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcv::secguru;

  std::string policy_path;
  std::string config_path;
  std::string acl_name;
  std::string contracts_path;
  bool as_nsg = false;
  bool deny_overrides = false;
  bool report_shadowed = false;
  bool smt_only = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "secguru_check: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--policy") {
      policy_path = value();
    } else if (flag == "--config") {
      config_path = value();
    } else if (flag == "--acl") {
      acl_name = value();
    } else if (flag == "--contracts") {
      contracts_path = value();
    } else if (flag == "--nsg") {
      as_nsg = true;
    } else if (flag == "--deny-overrides") {
      deny_overrides = true;
    } else if (flag == "--shadowed") {
      report_shadowed = true;
    } else if (flag == "--smt-only") {
      smt_only = true;
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "secguru_check: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }
  if ((policy_path.empty() == config_path.empty()) ||
      contracts_path.empty() || (!config_path.empty() && acl_name.empty())) {
    usage();
    return 2;
  }

  try {
    Policy policy;
    if (!config_path.empty()) {
      // The production interface (§3.2): a device configuration plus the
      // name of the ACL to analyze.
      const DeviceConfig config = parse_device_config(slurp(config_path));
      const Policy* named = config.find_acl(acl_name);
      if (named == nullptr) {
        std::cerr << "secguru_check: no ACL '" << acl_name << "' in "
                  << config_path << "\n";
        return 1;
      }
      policy = *named;
    } else {
      policy = as_nsg
                   ? parse_nsg(slurp(policy_path), policy_path).to_policy()
                   : parse_acl(slurp(policy_path), policy_path);
    }
    if (deny_overrides) policy.semantics = PolicySemantics::kDenyOverrides;
    const ContractSuite suite =
        parse_contracts(slurp(contracts_path), contracts_path);

    Engine engine;
    FastEngine fast_engine;
    const PolicyReport report = smt_only
                                    ? engine.check_suite(policy, suite)
                                    : fast_engine.check_suite(policy, suite);

    if (!quiet) {
      for (const ContractCheckResult& failure : report.failures) {
        std::cout << write_failure(failure, policy) << "\n";
      }
    }

    if (report_shadowed) {
      for (const std::size_t index : engine.shadowed_rules(policy)) {
        std::cout << "SHADOWED rule " << policy.rules[index].line << ": "
                  << policy.rules[index].to_string() << "\n";
      }
    }

    std::cout << "secguru_check: " << policy.rules.size() << " rules ("
              << to_string(policy.semantics) << "), "
              << report.contracts_checked << " contracts, "
              << report.failures.size() << " failed\n";
    return report.ok() ? 0 : 3;
  } catch (const std::exception& error) {
    std::cerr << "secguru_check: " << error.what() << "\n";
    return 1;
  }
}
