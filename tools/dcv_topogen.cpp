// dcv_topogen — synthetic datacenter topology generator.
//
// The stand-in for the cloud topology generator the paper points to for
// reproducing its benchmarks (§2.6.3 [29]): emits a Clos datacenter (or a
// multi-datacenter region) in the dcvalidate topology text format, and
// optionally the per-device routing tables of the converged fault-free
// network in the Figure 2 text format.
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "routing/fib_synthesizer.hpp"
#include "routing/table_io.hpp"
#include "topology/clos_builder.hpp"
#include "topology/topology_io.hpp"

namespace {

void usage() {
  std::cerr <<
      "usage: dcv_topogen [options]\n"
      "  --clusters N            clusters per datacenter (default 4)\n"
      "  --tors N                ToRs per cluster (default 8)\n"
      "  --leaves N              leaves per cluster / planes (default 4)\n"
      "  --spines-per-plane N    spines per plane (default 2)\n"
      "  --regionals N           regional spines (default 4)\n"
      "  --prefixes N            hosted prefixes per ToR (default 1)\n"
      "  --datacenters N         datacenters sharing the regional layer\n"
      "                          (default 1)\n"
      "  --out FILE              topology file (default: stdout)\n"
      "  --tables DIR            also write per-device routing tables\n";
}

std::uint32_t parse_count(const std::string& value, const char* flag) {
  std::uint32_t out = 0;
  const auto [next, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || next != value.data() + value.size() || out == 0) {
    std::cerr << "dcv_topogen: bad value for " << flag << ": '" << value
              << "'\n";
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcv;

  topo::ClosParams params{.clusters = 4,
                          .tors_per_cluster = 8,
                          .leaves_per_cluster = 4,
                          .spines_per_plane = 2,
                          .regional_spines = 4};
  std::uint32_t datacenters = 1;
  std::string out_path;
  std::string tables_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "dcv_topogen: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--clusters") {
      params.clusters = parse_count(value(), "--clusters");
    } else if (flag == "--tors") {
      params.tors_per_cluster = parse_count(value(), "--tors");
    } else if (flag == "--leaves") {
      params.leaves_per_cluster = parse_count(value(), "--leaves");
    } else if (flag == "--spines-per-plane") {
      params.spines_per_plane = parse_count(value(), "--spines-per-plane");
    } else if (flag == "--regionals") {
      params.regional_spines = parse_count(value(), "--regionals");
    } else if (flag == "--prefixes") {
      params.prefixes_per_tor = parse_count(value(), "--prefixes");
    } else if (flag == "--datacenters") {
      datacenters = parse_count(value(), "--datacenters");
    } else if (flag == "--out") {
      out_path = value();
    } else if (flag == "--tables") {
      tables_dir = value();
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "dcv_topogen: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }

  try {
    const topo::Topology topology =
        datacenters == 1 ? topo::build_clos(params)
                         : topo::build_region(params, datacenters);
    const std::string text = topo::write_topology(topology);
    if (out_path.empty()) {
      std::cout << text;
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "dcv_topogen: cannot write " << out_path << "\n";
        return 1;
      }
      out << text;
      std::cerr << "dcv_topogen: wrote " << topology.device_count()
                << " devices to " << out_path << "\n";
    }

    if (!tables_dir.empty()) {
      std::filesystem::create_directories(tables_dir);
      const topo::MetadataService metadata(topology);
      const routing::FibSynthesizer synthesizer(metadata);
      for (const topo::Device& device : topology.devices()) {
        std::ofstream table(std::filesystem::path(tables_dir) /
                            (device.name + ".rt"));
        table << routing::write_routing_table(synthesizer.fib(device.id));
      }
      std::cerr << "dcv_topogen: wrote " << topology.device_count()
                << " routing tables to " << tables_dir << "/\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "dcv_topogen: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
