// rcdc_validate — validate a datacenter's forwarding state against the
// intent derived from its architecture.
//
// Reads a topology file (see topology/topology_io.hpp). Reality comes from
// either a directory of per-device routing tables in the Figure 2 text
// format (<device-name>.rt, as pulled from devices or emitted by
// dcv_topogen --tables), or from EBGP simulation over the topology's
// recorded link/session state. Prints the violation report with risk and
// triage annotations — the offline equivalent of one RCDC monitoring cycle.
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "rcdc/beliefs_io.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/global_checker.hpp"
#include "rcdc/report_io.hpp"
#include "rcdc/triage.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "routing/table_io.hpp"
#include "topology/topology_io.hpp"

namespace {

using namespace dcv;

void usage() {
  std::cerr <<
      "usage: rcdc_validate --topology FILE [options]\n"
      "  --tables DIR     per-device routing tables (<name>.rt); default:\n"
      "                   simulate EBGP over the topology's recorded state\n"
      "  --verifier V     trie (default) or smt\n"
      "  --threads N      validation workers (default 4)\n"
      "  --global         also run the global all-pairs baseline\n"
      "  --beliefs FILE   also check operator beliefs (template properties)\n"
      "  --json           emit the report as JSON (stream-analytics feed)\n"
      "  --quiet          print only the summary line\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "rcdc_validate: cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// FIBs parsed from a directory of routing-table files.
class FileFibSource final : public rcdc::FibSource {
 public:
  FileFibSource(std::string directory, const topo::Topology& topology)
      : directory_(std::move(directory)), topology_(&topology) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    const auto path = std::filesystem::path(directory_) /
                      (topology_->device(device).name + ".rt");
    return routing::to_forwarding_table(
        routing::parse_routing_table(slurp(path.string())), *topology_);
  }

 private:
  std::string directory_;
  const topo::Topology* topology_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string topology_path;
  std::string tables_dir;
  std::string verifier_name = "trie";
  unsigned threads = 4;
  bool run_global = false;
  bool as_json = false;
  bool quiet = false;
  std::string beliefs_path;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rcdc_validate: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topology") {
      topology_path = value();
    } else if (flag == "--tables") {
      tables_dir = value();
    } else if (flag == "--verifier") {
      verifier_name = value();
    } else if (flag == "--threads") {
      const auto text = value();
      std::from_chars(text.data(), text.data() + text.size(), threads);
    } else if (flag == "--global") {
      run_global = true;
    } else if (flag == "--json") {
      as_json = true;
    } else if (flag == "--beliefs") {
      beliefs_path = value();
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "rcdc_validate: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }
  if (topology_path.empty()) {
    usage();
    return 2;
  }

  try {
    const topo::Topology topology =
        topo::parse_topology(slurp(topology_path));
    const topo::MetadataService metadata(topology);

    std::unique_ptr<routing::BgpSimulator> simulator;
    std::unique_ptr<rcdc::FibSource> fibs;
    if (tables_dir.empty()) {
      simulator = std::make_unique<routing::BgpSimulator>(topology);
      fibs = std::make_unique<rcdc::SimulatorFibSource>(*simulator);
    } else {
      fibs = std::make_unique<FileFibSource>(tables_dir, topology);
    }

    const rcdc::VerifierFactory factory =
        verifier_name == "smt" ? rcdc::make_smt_verifier_factory()
                               : rcdc::make_trie_verifier_factory();
    const rcdc::DatacenterValidator validator(metadata, *fibs, factory);
    const auto summary = validator.run(threads);

    if (as_json) {
      std::cout << rcdc::write_report_json(summary, topology);
      return summary.violations.empty() ? 0 : 3;
    }

    if (!quiet) {
      const rcdc::RiskPolicy risk(topology);
      const rcdc::TriageEngine triage(topology);
      for (const rcdc::Violation& v : summary.violations) {
        const auto assessment = risk.assess(v);
        const auto decision = triage.triage(v);
        std::cout << topology.device(v.device).name << " "
                  << (v.contract.kind == rcdc::ContractKind::kDefault
                          ? "default"
                          : v.contract.prefix.to_string())
                  << " " << to_string(v.kind) << " risk="
                  << to_string(assessment.level)
                  << " action=" << to_string(decision.action) << "\n";
      }
    }
    std::cout << "rcdc_validate: " << summary.devices_checked
              << " devices, " << summary.contracts_checked << " contracts, "
              << summary.violations.size() << " violations in "
              << std::chrono::duration<double>(summary.elapsed).count()
              << " s (" << verifier_name << ", " << threads
              << " threads)\n";

    bool beliefs_ok = true;
    if (!beliefs_path.empty()) {
      const auto beliefs =
          rcdc::parse_beliefs(slurp(beliefs_path), topology);
      const rcdc::BeliefChecker checker(metadata, *fibs);
      std::size_t held = 0;
      for (const rcdc::BeliefResult& result : checker.check_all(beliefs)) {
        if (result.holds) {
          ++held;
        } else {
          beliefs_ok = false;
        }
        if (!quiet || !result.holds) {
          std::cout << (result.holds ? "HOLDS " : "BROKEN ")
                    << result.belief.to_string(topology) << "  ("
                    << result.observed << ")\n";
        }
      }
      std::cout << "beliefs: " << held << "/" << beliefs.size()
                << " hold\n";
    }

    if (run_global) {
      const rcdc::GlobalChecker checker(metadata, *fibs);
      const auto result = checker.check_all_pairs(/*max_failures=*/20);
      std::cout << "global baseline: " << result.pairs_checked
                << " pairs, " << result.pairs_fully_redundant
                << " fully redundant, snapshot "
                << std::chrono::duration<double>(result.snapshot_time)
                       .count()
                << " s, analysis "
                << std::chrono::duration<double>(result.analysis_time)
                       .count()
                << " s\n";
      if (!quiet) {
        for (const std::string& failure : result.failures) {
          std::cout << "  global: " << failure << "\n";
        }
      }
    }
    return summary.violations.empty() && beliefs_ok ? 0 : 3;
  } catch (const std::exception& error) {
    std::cerr << "rcdc_validate: " << error.what() << "\n";
    return 1;
  }
}
