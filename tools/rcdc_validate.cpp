// rcdc_validate — validate a datacenter's forwarding state against the
// intent derived from its architecture.
//
// Reads a topology file (see topology/topology_io.hpp). Reality comes from
// either a directory of per-device routing tables in the Figure 2 text
// format (<device-name>.rt, as pulled from devices or emitted by
// dcv_topogen --tables), or from EBGP simulation over the topology's
// recorded link/session state. Prints the violation report with risk and
// triage annotations — the offline equivalent of one RCDC monitoring cycle.
#include <atomic>
#include <charconv>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.hpp"
#include "gate/gate_service.hpp"
#include "dist/process.hpp"
#include "dist/report.hpp"
#include "dist/transport.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_server.hpp"
#include "rcdc/beliefs_io.hpp"
#include "rcdc/pipeline.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/flaky_fib_source.hpp"
#include "rcdc/global_checker.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "rcdc/report_io.hpp"
#include "rcdc/triage.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "routing/table_io.hpp"
#include "topology/topology_io.hpp"

namespace {

using namespace dcv;

void usage() {
  std::cerr <<
      "usage: rcdc_validate --topology FILE [options]\n"
      "  --tables DIR     per-device routing tables (<name>.rt); default:\n"
      "                   simulate EBGP over the topology's recorded state\n"
      "  --verifier V     trie (default) or smt\n"
      "  --threads N      validation workers (default 4)\n"
      "  --global         also run the global all-pairs baseline\n"
      "  --beliefs FILE   also check operator beliefs (template properties)\n"
      "  --json           emit the report as JSON (stream-analytics feed)\n"
      "  --quiet          print only the summary line\n"
      "fault-injection (flaky fetch layer; per-attempt probabilities):\n"
      "  --flaky-timeout R --flaky-transient R --flaky-truncate R\n"
      "  --flaky-corrupt R --flaky-unreachable R   rates in [0,1]\n"
      "  --flaky-seed N   failure-schedule seed (default 0)\n"
      "resilience (retry/backoff + per-device circuit breaker):\n"
      "  --retries N          pull attempts per fetch (enables the layer)\n"
      "  --backoff-ms N       initial backoff, doubled per retry (def 50)\n"
      "  --deadline-ms N      per-fetch overall budget (default 10000)\n"
      "  --breaker-threshold N  consecutive failures to open (default 5)\n"
      "  --breaker-cooldown-ms N  open-state cool-down (default 30000)\n"
      "  --no-stale           disable the stale-table cache fallback\n"
      "observability:\n"
      "  --metrics-out FILE   dump the metrics registry after the run and\n"
      "                       print a per-stage latency table\n"
      "  --metrics-format F   prom (default; Prometheus text exposition)\n"
      "                       or json\n"
      "  --metrics-flush-sec N  additionally rewrite --metrics-out every N\n"
      "                       seconds (atomic rename), so a killed run\n"
      "                       still leaves fresh metrics on disk\n"
      "live monitoring (continuous pipeline instead of one offline sweep;\n"
      "enabled by --serve, --cycles, or --trace-out):\n"
      "  --serve PORT         HTTP telemetry on PORT (0 = ephemeral):\n"
      "                       /metrics /metrics.json /healthz /readyz\n"
      "                       /tracez; runs cycles until SIGINT/SIGTERM\n"
      "                       unless --cycles bounds them. Non-distributed\n"
      "                       serving also mounts the change gate:\n"
      "                       POST /precheck (warm emulated prechecks,\n"
      "                       coalesced into batches), POST /nsg-check\n"
      "                       (pooled SecGuru), GET /gatez\n"
      "  --http-workers N     HTTP handler threads (default 4)\n"
      "  --http-queue N       request admission queue; beyond it requests\n"
      "                       are answered 429 (default 32)\n"
      "  --cycles N           run N monitoring cycles (0 = until signal;\n"
      "                       default 1 without --serve)\n"
      "  --interval-ms N      pause between cycles (default 0)\n"
      "  --pullers N / --validators N   pipeline workers (default 8 / 4)\n"
      "  --queue-capacity N   puller->validator queue bound (default 256)\n"
      "  --no-incremental     re-verify every device every cycle instead\n"
      "                       of skipping devices whose table fingerprint\n"
      "                       is unchanged (incremental is the default)\n"
      "  --time-scale X       compress the simulated 200-800ms fetch\n"
      "                       latencies by X (default 0.001)\n"
      "  --seed N             fetch-latency schedule seed (default 0)\n"
      "  --trace-out FILE     write the span ring as Chrome trace-event\n"
      "                       JSON at exit (open in Perfetto); in\n"
      "                       distributed mode, the merged fleet timeline\n"
      "                       with one named track per process\n"
      "  --trace-capacity N   span ring capacity (default 65536)\n"
      "readiness rules (what /readyz enforces):\n"
      "  --ready-coverage T   minimum per-cycle device coverage (def 0.9)\n"
      "  --ready-max-breaker-opens N  tolerated opens per cycle (def 0)\n"
      "  --ready-max-age-sec N  503 when the last cycle is older than N\n"
      "                       seconds (default 0 = disabled)\n"
      "  --ready-max-queue-saturation T  503 when a work queue (pipeline\n"
      "                       or HTTP admission) sits above T (def 0.9)\n"
      "distributed validation (coordinator/worker fleet; enabled by\n"
      "--workers or --listen; combines with --cycles/--serve/--json):\n"
      "  --workers N          spawn N local dcv_worker processes and shard\n"
      "                       the device space across them\n"
      "  --listen PORT        also/instead accept external dcv_worker\n"
      "                       connections on 127.0.0.1:PORT (0=ephemeral)\n"
      "  --expect-workers N   wait for N workers before the first cycle\n"
      "                       (default: the --workers count)\n"
      "  --accept-timeout-sec N  admission wait bound (default 30)\n"
      "  --lease-ms N         shard lease; a worker silent this long is\n"
      "                       declared lost and its shard reassigned\n"
      "                       (default 5000)\n"
      "  --heartbeat-ms N     heartbeat cadence advertised to workers\n"
      "                       (default 1000)\n"
      "  --shard-retry N      extra deliveries per lost shard before it is\n"
      "                       marked failed (default 2); exhausting the\n"
      "                       budget completes the run degraded (exit 4,\n"
      "                       coverage < 1) instead of hanging\n"
      "  --shards-per-worker N  shards carved per worker (default 4)\n"
      "  --worker-bin PATH    dcv_worker binary (default: next to this\n"
      "                       binary)\n"
      "  --worker-fetch-latency-us N  simulated per-device pull latency\n"
      "                       passed to spawned workers (default 0)\n"
      "  --worker-arg ARG     extra flag passed through to every spawned\n"
      "                       worker (repeatable)\n"
      "  --ready-min-workers N  /readyz fails below N live workers (def 1)\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "rcdc_validate: cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// FIBs parsed from a directory of routing-table files.
class FileFibSource final : public rcdc::FibSource {
 public:
  FileFibSource(std::string directory, const topo::Topology& topology)
      : directory_(std::move(directory)), topology_(&topology) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    const auto path = std::filesystem::path(directory_) /
                      (topology_->device(device).name + ".rt");
    return routing::to_forwarding_table(
        routing::parse_routing_table(slurp(path.string())), *topology_);
  }

 private:
  std::string directory_;
  const topo::Topology* topology_;
};

/// Per-stage latency summary from every histogram that saw samples, ns
/// rendered as ms. The "stages" are exactly the instrumented subsystems:
/// fetch, validate, fingerprint, verifier engines, queue waits.
void print_latency_table(const obs::MetricsRegistry& registry) {
  std::printf("\nper-stage latency (ms unless noted):\n");
  std::printf("  %-38s %9s %9s %9s %9s %9s %11s\n", "stage", "count", "p50",
              "p90", "p99", "max", "total");
  const double kMs = 1e6;
  for (const auto& metric : registry.collect()) {
    if (metric.type != obs::MetricType::kHistogram) continue;
    const obs::Histogram& h = *metric.histogram;
    if (h.count() == 0) continue;
    std::string name = metric.name;
    for (const auto& [key, val] : metric.labels) {
      name += "{" + key + "=" + val + "}";
    }
    // Dimensionless histograms (attempt/round/rule counts) print raw.
    const bool is_ns = metric.name.find("_ns") != std::string::npos;
    const double scale = is_ns ? kMs : 1.0;
    std::printf("  %-38s %9llu %9.3f %9.3f %9.3f %9.3f %11.3f%s\n",
                name.c_str(),
                static_cast<unsigned long long>(h.count()),
                h.quantile(0.5) / scale, h.quantile(0.9) / scale,
                h.quantile(0.99) / scale,
                static_cast<double>(h.max()) / scale,
                static_cast<double>(h.sum()) / scale, is_ns ? "" : " (n)");
  }
}

/// Writes `content` to `path` via a temp file + rename, so readers (and a
/// process killed mid-write) only ever see a complete old or new file.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << content;
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

[[nodiscard]] std::string render_metrics(const obs::MetricsRegistry& registry,
                                         const std::string& format) {
  return format == "json" ? obs::write_json(registry)
                          : obs::write_prometheus(registry);
}

/// Writes the registry dump; exits the process on I/O failure so a CI
/// artifact step never silently uploads a half-written exposition.
void write_metrics_file(const obs::MetricsRegistry& registry,
                        const std::string& path, const std::string& format) {
  if (!write_file_atomic(path, render_metrics(registry, format))) {
    std::cerr << "rcdc_validate: cannot write " << path << "\n";
    std::exit(1);
  }
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string topology_path;
  std::string tables_dir;
  std::string verifier_name = "trie";
  unsigned threads = 4;
  bool run_global = false;
  bool as_json = false;
  bool quiet = false;
  std::string beliefs_path;
  rcdc::FlakyConfig flaky;
  bool use_flaky = false;
  rcdc::ResilienceConfig resilience;
  bool use_resilience = false;
  std::string metrics_out;
  std::string metrics_format = "prom";
  std::uint64_t metrics_flush_sec = 0;
  bool serve_set = false;
  std::uint16_t serve_port = 0;
  unsigned http_workers = 4;
  std::size_t http_queue = 32;
  bool cycles_given = false;
  std::uint64_t cycles = 0;
  std::chrono::milliseconds cycle_interval{0};
  unsigned pullers = 8;
  unsigned validators = 4;
  std::size_t queue_capacity = 256;
  double time_scale = 0.001;
  std::uint64_t pipeline_seed = 0;
  bool incremental = true;
  std::string trace_out;
  std::size_t trace_capacity = 65536;
  rcdc::ReadinessRules readiness;
  unsigned spawn_workers = 0;
  bool listen_set = false;
  std::uint16_t listen_port = 0;
  std::size_t expect_workers = 0;
  std::chrono::milliseconds dist_lease{5000};
  std::chrono::milliseconds dist_heartbeat{1000};
  std::uint32_t shard_retry = 2;
  std::uint32_t shards_per_worker = 4;
  std::chrono::seconds accept_timeout{30};
  std::string worker_bin;
  std::uint64_t worker_fetch_latency_us = 0;
  std::vector<std::string> worker_extra_args;
  dist::FleetReadinessRules fleet_readiness;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rcdc_validate: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto rate_value = [&] {
      use_flaky = true;
      const auto text = value();
      double rate = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), rate);
      if (ec != std::errc{} || ptr != text.data() + text.size() ||
          rate < 0.0 || rate > 1.0) {
        std::cerr << "rcdc_validate: " << flag << " wants a rate in [0,1], got '"
                  << text << "'\n";
        std::exit(2);
      }
      return rate;
    };
    const auto count_value = [&]() -> std::uint64_t {
      const auto text = value();
      std::uint64_t n = 0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), n);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        std::cerr << "rcdc_validate: " << flag
                  << " wants a non-negative integer, got '" << text << "'\n";
        std::exit(2);
      }
      return n;
    };
    const auto ms_value = [&] {
      use_resilience = true;
      return std::chrono::milliseconds(count_value());
    };
    const auto double_value = [&] {
      const auto text = value();
      double parsed = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), parsed);
      if (ec != std::errc{} || ptr != text.data() + text.size() ||
          parsed < 0.0) {
        std::cerr << "rcdc_validate: " << flag
                  << " wants a non-negative number, got '" << text << "'\n";
        std::exit(2);
      }
      return parsed;
    };
    if (flag == "--topology") {
      topology_path = value();
    } else if (flag == "--tables") {
      tables_dir = value();
    } else if (flag == "--verifier") {
      verifier_name = value();
    } else if (flag == "--threads") {
      const auto text = value();
      std::from_chars(text.data(), text.data() + text.size(), threads);
    } else if (flag == "--global") {
      run_global = true;
    } else if (flag == "--json") {
      as_json = true;
    } else if (flag == "--beliefs") {
      beliefs_path = value();
    } else if (flag == "--flaky-timeout") {
      flaky.timeout_rate = rate_value();
    } else if (flag == "--flaky-transient") {
      flaky.transient_rate = rate_value();
    } else if (flag == "--flaky-truncate") {
      flaky.truncate_rate = rate_value();
    } else if (flag == "--flaky-corrupt") {
      flaky.corrupt_rate = rate_value();
    } else if (flag == "--flaky-unreachable") {
      flaky.unreachable_rate = rate_value();
    } else if (flag == "--flaky-seed") {
      flaky.seed = count_value();
    } else if (flag == "--retries") {
      use_resilience = true;
      resilience.retry.max_attempts = static_cast<unsigned>(count_value());
    } else if (flag == "--backoff-ms") {
      resilience.retry.initial_backoff = ms_value();
    } else if (flag == "--deadline-ms") {
      resilience.retry.fetch_deadline = ms_value();
    } else if (flag == "--breaker-threshold") {
      use_resilience = true;
      resilience.breaker.failure_threshold =
          static_cast<unsigned>(count_value());
    } else if (flag == "--breaker-cooldown-ms") {
      resilience.breaker.cool_down = ms_value();
    } else if (flag == "--no-stale") {
      use_resilience = true;
      resilience.serve_stale = false;
    } else if (flag == "--metrics-out") {
      metrics_out = value();
    } else if (flag == "--metrics-flush-sec") {
      metrics_flush_sec = count_value();
    } else if (flag == "--serve") {
      serve_set = true;
      serve_port = static_cast<std::uint16_t>(count_value());
    } else if (flag == "--http-workers") {
      http_workers = static_cast<unsigned>(count_value());
    } else if (flag == "--http-queue") {
      http_queue = count_value();
    } else if (flag == "--cycles") {
      cycles_given = true;
      cycles = count_value();
    } else if (flag == "--interval-ms") {
      cycle_interval = std::chrono::milliseconds(count_value());
    } else if (flag == "--pullers") {
      pullers = static_cast<unsigned>(count_value());
    } else if (flag == "--validators") {
      validators = static_cast<unsigned>(count_value());
    } else if (flag == "--queue-capacity") {
      queue_capacity = count_value();
    } else if (flag == "--no-incremental") {
      incremental = false;
    } else if (flag == "--time-scale") {
      time_scale = double_value();
    } else if (flag == "--seed") {
      pipeline_seed = count_value();
    } else if (flag == "--trace-out") {
      trace_out = value();
    } else if (flag == "--trace-capacity") {
      trace_capacity = count_value();
    } else if (flag == "--workers") {
      spawn_workers = static_cast<unsigned>(count_value());
    } else if (flag == "--listen") {
      listen_set = true;
      listen_port = static_cast<std::uint16_t>(count_value());
    } else if (flag == "--expect-workers") {
      expect_workers = count_value();
    } else if (flag == "--lease-ms") {
      dist_lease = std::chrono::milliseconds(count_value());
    } else if (flag == "--heartbeat-ms") {
      dist_heartbeat = std::chrono::milliseconds(count_value());
    } else if (flag == "--shard-retry") {
      shard_retry = static_cast<std::uint32_t>(count_value());
    } else if (flag == "--shards-per-worker") {
      shards_per_worker = static_cast<std::uint32_t>(count_value());
    } else if (flag == "--accept-timeout-sec") {
      accept_timeout = std::chrono::seconds(count_value());
    } else if (flag == "--worker-bin") {
      worker_bin = value();
    } else if (flag == "--worker-fetch-latency-us") {
      worker_fetch_latency_us = count_value();
    } else if (flag == "--worker-arg") {
      worker_extra_args.push_back(value());
    } else if (flag == "--ready-min-workers") {
      fleet_readiness.min_workers = count_value();
    } else if (flag == "--ready-coverage") {
      readiness.min_coverage = double_value();
    } else if (flag == "--ready-max-breaker-opens") {
      readiness.max_breaker_opens = count_value();
    } else if (flag == "--ready-max-age-sec") {
      readiness.max_cycle_age = std::chrono::seconds(count_value());
    } else if (flag == "--ready-max-queue-saturation") {
      readiness.max_queue_saturation = double_value();
    } else if (flag == "--metrics-format") {
      metrics_format = value();
      if (metrics_format != "prom" && metrics_format != "json") {
        std::cerr << "rcdc_validate: --metrics-format wants prom or json, "
                  << "got '" << metrics_format << "'\n";
        return 2;
      }
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "rcdc_validate: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }
  if (topology_path.empty()) {
    usage();
    return 2;
  }

  // Distributed mode: shard the device space across worker processes. Any
  // serve/cycles/trace request otherwise turns the offline sweep into a
  // continuously running MonitoringPipeline.
  const bool distributed = spawn_workers > 0 || listen_set;
  const bool pipeline_mode =
      !distributed && (serve_set || cycles_given || !trace_out.empty());
  if ((pipeline_mode || distributed) && !cycles_given && !serve_set) {
    cycles = 1;
  }

  try {
    obs::MetricsRegistry registry;
    obs::MetricsRegistry* metrics =
        (pipeline_mode || distributed || !metrics_out.empty()) ? &registry
                                                               : nullptr;

    // Periodic atomic-rename flush: a killed run still leaves a complete,
    // recent exposition on disk for the scraper/artifact step.
    std::jthread metrics_flusher;
    if (metrics_flush_sec > 0 && !metrics_out.empty()) {
      metrics_flusher = std::jthread([&registry, metrics_out, metrics_format,
                                      metrics_flush_sec](
                                         std::stop_token stop) {
        const auto period = std::chrono::seconds(metrics_flush_sec);
        auto next_flush = std::chrono::steady_clock::now() + period;
        while (!stop.stop_requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          if (std::chrono::steady_clock::now() < next_flush) continue;
          if (!write_file_atomic(metrics_out,
                                 render_metrics(registry, metrics_format))) {
            std::cerr << "rcdc_validate: periodic metrics flush to "
                      << metrics_out << " failed\n";
          }
          next_flush = std::chrono::steady_clock::now() + period;
        }
      });
    }

    const topo::Topology topology =
        topo::parse_topology(slurp(topology_path));
    const topo::MetadataService metadata(topology);

    if (distributed) {
      // Coordinator role: SIGPIPE must surface as transport errors, and
      // SIGCHLD marks exited workers for reaping between cycles.
      dist::install_fleet_signal_handlers();
      std::signal(SIGINT, on_signal);
      std::signal(SIGTERM, on_signal);

      dist::TcpListener listener(listen_set ? listen_port : 0);
      if (!quiet || listen_set) {
        // JSON mode keeps stdout machine-readable: the report only.
        std::ostream& log = as_json ? std::cerr : std::cout;
        log << "coordinator: accepting workers on 127.0.0.1:"
            << listener.port() << "\n";
        log.flush();
      }

      dist::WorkerFleet fleet(&registry);
      if (spawn_workers > 0) {
        if (worker_bin.empty()) {
          worker_bin = (std::filesystem::path(argv[0]).parent_path() /
                        "dcv_worker")
                           .string();
        }
        for (unsigned w = 0; w < spawn_workers; ++w) {
          std::vector<std::string> args = {
              worker_bin,
              "--connect",
              "127.0.0.1:" + std::to_string(listener.port()),
              "--topology",
              topology_path,
              "--worker-id",
              "w" + std::to_string(w),
              "--verifier",
              verifier_name,
              "--quiet",
          };
          if (!tables_dir.empty()) {
            args.push_back("--tables");
            args.push_back(tables_dir);
          }
          if (worker_fetch_latency_us > 0) {
            args.push_back("--fetch-latency-us");
            args.push_back(std::to_string(worker_fetch_latency_us));
          }
          args.insert(args.end(), worker_extra_args.begin(),
                      worker_extra_args.end());
          if (fleet.spawn(args) < 0) {
            std::cerr << "rcdc_validate: cannot spawn " << worker_bin << "\n";
            return 1;
          }
        }
      }

      std::size_t expect = expect_workers > 0 ? expect_workers : spawn_workers;
      if (expect == 0) {
        std::cerr << "rcdc_validate: --listen needs --expect-workers N "
                     "(or combine with --workers)\n";
        return 2;
      }

      // The coordinator's trace ring anchors the merged fleet timeline:
      // its own assign/cycle spans land here, worker trees are rebased
      // onto its epoch.
      std::unique_ptr<obs::TraceRing> fleet_trace;
      if (serve_set || !trace_out.empty()) {
        fleet_trace = std::make_unique<obs::TraceRing>(trace_capacity);
        fleet_trace->attach_metrics(registry);
      }

      dist::CoordinatorConfig coordinator_config;
      coordinator_config.lease = dist_lease;
      coordinator_config.heartbeat_interval = dist_heartbeat;
      coordinator_config.shard_retry_budget = shard_retry;
      coordinator_config.shards_per_worker = shards_per_worker;
      coordinator_config.metrics = &registry;
      coordinator_config.trace = fleet_trace.get();
      dist::Coordinator coordinator(metadata, coordinator_config);

      std::unique_ptr<obs::TelemetryServer> server;
      if (serve_set) {
        obs::TelemetryServerConfig server_config;
        server_config.port = serve_port;
        // /tracez serves the merged fleet timeline (coordinator + every
        // worker's re-parented spans), not just the local ring.
        server_config.trace_renderer =
            [&coordinator](std::size_t max_spans) {
              return obs::write_trace_json(coordinator.merger().snapshot(),
                                           max_spans);
            };
        fleet_readiness.min_coverage = readiness.min_coverage;
        server = std::make_unique<obs::TelemetryServer>(
            &registry, fleet_trace.get(),
            dist::make_fleet_probe(coordinator, fleet_readiness),
            server_config);
        // Banner goes to stderr: with --json, stdout is the report and
        // must stay machine-parseable.
        std::cerr << "telemetry: /metrics /metrics.json /healthz /readyz "
                     "/tracez on port "
                  << server->port() << "\n";
      }

      // Admission: accept + handshake until the expected fleet is live.
      const auto accept_deadline =
          std::chrono::steady_clock::now() + accept_timeout;
      while (coordinator.live_workers() < expect && !g_stop &&
             std::chrono::steady_clock::now() < accept_deadline) {
        auto transport = listener.accept(std::chrono::milliseconds(50));
        if (transport != nullptr) {
          coordinator.add_worker(std::move(transport));
        }
        coordinator.pump(expect, std::chrono::milliseconds(10));
        fleet.reap();
      }
      if (coordinator.live_workers() == 0) {
        std::cerr << "rcdc_validate: no workers joined within "
                  << accept_timeout.count() << " s\n";
        return 1;
      }

      bool any_degraded = false;
      std::size_t total_violations = 0;
      std::uint64_t completed = 0;
      std::string last_report;
      for (std::uint64_t c = 0; (cycles == 0 || c < cycles) && !g_stop;
           ++c) {
        dist::DistributedSummary summary = coordinator.run_cycle();
        ++completed;
        any_degraded = any_degraded || summary.degraded();
        total_violations += summary.merged.violations.size();
        for (const dist::WorkerExit& exit : fleet.reap()) {
          if (!quiet) {
            std::cerr << "worker pid " << exit.pid << " exited ("
                      << exit.reason << " " << exit.code << ")\n";
          }
        }
        std::size_t shards_ok = 0;
        for (const dist::ShardOutcome& shard : summary.shards) {
          if (shard.status != dist::ShardStatus::kFailed) ++shards_ok;
        }
        if (!quiet) {
          std::fprintf(
              as_json ? stderr : stdout,
              "cycle %llu: coverage %.1f%%, %zu violations, %zu/%zu shards "
              "validated, %zu reassignments, %zu workers live%s\n",
              static_cast<unsigned long long>(completed),
              100.0 * summary.coverage(), summary.merged.violations.size(),
              shards_ok, summary.shards.size(), summary.reassignments,
              coordinator.live_workers(),
              summary.degraded() ? " [DEGRADED]" : "");
          std::fflush(as_json ? stderr : stdout);
        }
        if (as_json) {
          last_report = dist::write_distributed_report_json(summary, topology);
        }
        // Re-admit reconnecting workers between cycles, then pause.
        const auto pause_until =
            std::chrono::steady_clock::now() + cycle_interval;
        do {
          auto transport = listener.accept(std::chrono::milliseconds(0));
          if (transport != nullptr) {
            coordinator.add_worker(std::move(transport));
            coordinator.pump(expect, std::chrono::milliseconds(20));
          }
          if (std::chrono::steady_clock::now() >= pause_until) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        } while (!g_stop && (cycles == 0 || c + 1 < cycles));
      }

      coordinator.shutdown_workers();
      for (int i = 0; i < 40 && fleet.alive() > 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        fleet.reap();
      }
      if (server != nullptr) server->stop();
      if (as_json) std::cout << last_report;
      if (!metrics_out.empty()) {
        if (!quiet && !as_json) print_latency_table(registry);
        write_metrics_file(registry, metrics_out, metrics_format);
      }
      if (!trace_out.empty()) {
        // One Perfetto-loadable file: coordinator track + one named track
        // per worker, offset-aligned onto the coordinator clock.
        const obs::MergedTrace merged = coordinator.merger().snapshot();
        if (!write_file_atomic(trace_out, obs::write_chrome_trace(merged))) {
          std::cerr << "rcdc_validate: cannot write " << trace_out << "\n";
        } else if (!quiet && !as_json) {
          std::size_t spans = 0;
          for (const obs::MergedTrack& track : merged.tracks) {
            spans += track.events.size();
          }
          std::cout << "fleet trace: " << spans << " spans across "
                    << merged.tracks.size() << " processes written to "
                    << trace_out << "\n";
        }
      }
      if (!as_json) {
        std::cout << "rcdc_validate: " << completed
                  << " distributed cycles, " << total_violations
                  << " violations"
                  << (any_degraded ? " (degraded: lost shards exhausted "
                                     "their retry budget)"
                                   : "")
                  << (g_stop ? " (stopped by signal)" : "") << "\n";
      }
      // Exit codes: degraded completion is distinct from both success and
      // ordinary violations so CI and operators can tell them apart.
      if (any_degraded) return 4;
      return total_violations == 0 ? 0 : 3;
    }

    std::unique_ptr<routing::BgpSimulator> simulator;
    std::unique_ptr<rcdc::FibSource> fibs;
    if (tables_dir.empty()) {
      simulator =
          std::make_unique<routing::BgpSimulator>(topology, nullptr, metrics);
      fibs = std::make_unique<rcdc::SimulatorFibSource>(*simulator);
    } else {
      fibs = std::make_unique<FileFibSource>(tables_dir, topology);
    }

    // Optional fetch-layer decorators: failure injection under the
    // resilience layer, so retries/breakers see the injected flakiness.
    std::unique_ptr<rcdc::FlakyFibSource> flaky_source;
    std::unique_ptr<rcdc::ResilientFibSource> resilient_source;
    const rcdc::FibSource* active = fibs.get();
    if (use_flaky) {
      flaky_source = std::make_unique<rcdc::FlakyFibSource>(*active, flaky);
      active = flaky_source.get();
    }
    if (use_resilience) {
      resilience.metrics = metrics;
      resilient_source =
          std::make_unique<rcdc::ResilientFibSource>(*active, resilience);
      active = resilient_source.get();
    }

    const rcdc::VerifierFactory factory =
        verifier_name == "smt" ? rcdc::make_smt_verifier_factory(metrics)
                               : rcdc::make_trie_verifier_factory(metrics);

    if (pipeline_mode) {
      std::unique_ptr<obs::TraceRing> trace;
      if (serve_set || !trace_out.empty()) {
        trace = std::make_unique<obs::TraceRing>(trace_capacity);
        trace->attach_metrics(registry);
      }

      rcdc::PipelineConfig pipeline_config;
      pipeline_config.puller_workers = pullers;
      pipeline_config.validator_workers = validators;
      pipeline_config.time_scale = time_scale;
      pipeline_config.seed = pipeline_seed;
      pipeline_config.queue_capacity = queue_capacity;
      pipeline_config.incremental = incremental;
      pipeline_config.metrics = &registry;
      pipeline_config.trace = trace.get();
      rcdc::MonitoringPipeline pipeline(metadata, *active, factory,
                                        pipeline_config);

      std::unique_ptr<gate::GateService> gate_service;
      std::unique_ptr<obs::TelemetryServer> server;
      if (serve_set) {
        obs::TelemetryServerConfig server_config;
        server_config.port = serve_port;
        server_config.worker_threads = http_workers;
        server_config.max_queued_requests = http_queue;
        server_config.http_metrics = &registry;
        // The change gate rides on the telemetry server: one warm precheck
        // session + NSG engine pool, serving POST /precheck and
        // POST /nsg-check next to the scrape endpoints.
        gate::GateConfig gate_config;
        gate_config.metrics = &registry;
        gate_service =
            std::make_unique<gate::GateService>(topology, gate_config);
        server_config.mount = [&gate_service](obs::HttpServer& http) {
          gate_service->attach(http);
        };
        server = std::make_unique<obs::TelemetryServer>(
            &registry, trace.get(),
            gate_service->wrap_probe(
                rcdc::make_pipeline_probe(pipeline, readiness),
                readiness.max_queue_saturation),
            server_config);
        std::cerr << "telemetry: /metrics /metrics.json /healthz /readyz "
                     "/tracez on port "
                  << server->port() << "\n";
        std::cerr << "gate: POST /precheck, POST /nsg-check, GET /gatez "
                     "(base epoch "
                  << gate_service->session().base_epoch() << ")\n";
      }
      std::signal(SIGINT, on_signal);
      std::signal(SIGTERM, on_signal);

      std::size_t total_violations = 0;
      std::uint64_t completed = 0;
      for (std::uint64_t c = 0; (cycles == 0 || c < cycles) && !g_stop;
           ++c) {
        const auto stats = pipeline.run_cycle();
        ++completed;
        total_violations += stats.violations;
        if (!quiet) {
          std::printf(
              "cycle %llu: %zu devices (%zu revalidated, %zu cached), "
              "coverage %.1f%%, %zu violations (%zu high), wall %.3f s\n",
              static_cast<unsigned long long>(completed), stats.devices,
              stats.devices_revalidated, stats.devices_skipped,
              100.0 * stats.coverage(), stats.violations, stats.alerts_high,
              std::chrono::duration<double>(stats.wall).count());
          std::fflush(stdout);
        }
        // Sleep the inter-cycle interval in slices so a signal still stops
        // the run promptly.
        const auto pause_until =
            std::chrono::steady_clock::now() + cycle_interval;
        while (std::chrono::steady_clock::now() < pause_until && !g_stop &&
               (cycles == 0 || c + 1 < cycles)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }

      if (server != nullptr) server->stop();
      if (trace != nullptr && !trace_out.empty()) {
        if (!write_file_atomic(trace_out, obs::write_chrome_trace(*trace))) {
          std::cerr << "rcdc_validate: cannot write " << trace_out << "\n";
          return 1;
        }
        std::cout << "trace: " << trace->size() << " spans ("
                  << trace->dropped() << " dropped) written to " << trace_out
                  << " (Chrome trace-event JSON; open in Perfetto)\n";
      }
      if (!metrics_out.empty()) {
        if (!quiet) print_latency_table(registry);
        write_metrics_file(registry, metrics_out, metrics_format);
        std::cout << "metrics: " << metrics_format << " dump written to "
                  << metrics_out << "\n";
      }
      std::cout << "rcdc_validate: " << completed << " monitoring cycles, "
                << total_violations << " violations"
                << (g_stop ? " (stopped by signal)" : "") << "\n";
      return total_violations == 0 ? 0 : 3;
    }

    const rcdc::DatacenterValidator validator(metadata, *active, factory, {},
                                              metrics);
    const auto summary = validator.run(threads);

    if (as_json) {
      std::cout << rcdc::write_report_json(summary, topology);
      if (metrics != nullptr) {
        write_metrics_file(registry, metrics_out, metrics_format);
      }
      return summary.violations.empty() ? 0 : 3;
    }

    if (!quiet) {
      const rcdc::RiskPolicy risk(topology);
      const rcdc::TriageEngine triage(topology);
      for (const rcdc::Violation& v : summary.violations) {
        const auto assessment = risk.assess(v);
        const auto decision = triage.triage(v);
        std::cout << topology.device(v.device).name << " "
                  << (v.contract.kind == rcdc::ContractKind::kDefault
                          ? "default"
                          : v.contract.prefix.to_string())
                  << " " << to_string(v.kind) << " risk="
                  << to_string(assessment.level)
                  << " action=" << to_string(decision.action) << "\n";
      }
    }
    std::cout << "rcdc_validate: " << summary.devices_checked
              << " devices, " << summary.contracts_checked << " contracts, "
              << summary.violations.size() << " violations in "
              << std::chrono::duration<double>(summary.elapsed).count()
              << " s (" << verifier_name << ", " << threads
              << " threads)\n";
    if (use_flaky || use_resilience) {
      std::cout << "fetch layer: coverage " << 100.0 * summary.coverage()
                << "% (" << summary.devices_failed << " failed, "
                << summary.devices_stale << " stale, " << summary.retries
                << " retries, " << summary.breaker_opens
                << " breaker-opens, " << summary.violations_degraded
                << " degraded-confidence violations)\n";
    }
    if (metrics != nullptr) {
      if (!quiet) print_latency_table(registry);
      write_metrics_file(registry, metrics_out, metrics_format);
      std::cout << "metrics: " << metrics_format << " dump written to "
                << metrics_out << "\n";
    }

    bool beliefs_ok = true;
    if (!beliefs_path.empty()) {
      const auto beliefs =
          rcdc::parse_beliefs(slurp(beliefs_path), topology);
      const rcdc::BeliefChecker checker(metadata, *fibs);
      std::size_t held = 0;
      for (const rcdc::BeliefResult& result : checker.check_all(beliefs)) {
        if (result.holds) {
          ++held;
        } else {
          beliefs_ok = false;
        }
        if (!quiet || !result.holds) {
          std::cout << (result.holds ? "HOLDS " : "BROKEN ")
                    << result.belief.to_string(topology) << "  ("
                    << result.observed << ")\n";
        }
      }
      std::cout << "beliefs: " << held << "/" << beliefs.size()
                << " hold\n";
    }

    if (run_global) {
      const rcdc::GlobalChecker checker(metadata, *fibs);
      const auto result = checker.check_all_pairs(/*max_failures=*/20);
      std::cout << "global baseline: " << result.pairs_checked
                << " pairs, " << result.pairs_fully_redundant
                << " fully redundant, snapshot "
                << std::chrono::duration<double>(result.snapshot_time)
                       .count()
                << " s, analysis "
                << std::chrono::duration<double>(result.analysis_time)
                       .count()
                << " s\n";
      if (!quiet) {
        for (const std::string& failure : result.failures) {
          std::cout << "  global: " << failure << "\n";
        }
      }
    }
    return summary.violations.empty() && beliefs_ok ? 0 : 3;
  } catch (const std::exception& error) {
    std::cerr << "rcdc_validate: " << error.what() << "\n";
    return 1;
  }
}
