// dcv_gate — the standalone change-gate server: SecGuru NSG vetting and
// RCDC emulated prechecks as a service (§2.7 + §3.4).
//
// Reads a production topology, builds one warm precheck session (clone +
// cold converge + baseline validation, paid once) and an NSG FastEngine
// pool, then serves until SIGINT/SIGTERM (or --duration-sec):
//
//   POST /precheck   change plan in the dcv_precheck format
//   POST /nsg-check  ?vnet=NAME&space=CIDR&db=0|1, body = NSG table
//   GET  /gatez      gate counters; plus /metrics /healthz /readyz
//
// Exit 0 on clean shutdown.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "gate/gate_service.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_server.hpp"
#include "topology/topology_io.hpp"

namespace {

using namespace dcv;

void usage() {
  std::cerr <<
      "usage: dcv_gate --topology FILE [options]\n"
      "  --port N             HTTP port (default 0 = ephemeral; the bound\n"
      "                       port is printed on startup)\n"
      "  --threads N          precheck validation threads (default 0 =\n"
      "                       hardware-aware)\n"
      "  --batch-window-ms N  precheck coalescing window (default 2)\n"
      "  --max-batch N        changes per emulator batch (default 16)\n"
      "  --nsg-engines N      pooled FastEngines for /nsg-check (default 2)\n"
      "  --http-workers N     handler threads (default 4)\n"
      "  --http-queue N       admission queue bound; beyond it requests\n"
      "                       are answered 429 (default 32)\n"
      "  --max-connections N  open-connection cap (default 64)\n"
      "  --ready-saturation T /readyz fails above this queue saturation\n"
      "                       (default 0.9)\n"
      "  --duration-sec N     serve for N seconds then exit (default 0 =\n"
      "                       until SIGINT/SIGTERM)\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dcv_gate: cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string topology_path;
  std::uint16_t port = 0;
  unsigned threads = 0;
  std::uint64_t batch_window_ms = 2;
  std::size_t max_batch = 16;
  std::size_t nsg_engines = 2;
  unsigned http_workers = 4;
  std::size_t http_queue = 32;
  std::size_t max_connections = 64;
  double ready_saturation = 0.9;
  std::uint64_t duration_sec = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "dcv_gate: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topology") {
      topology_path = value();
    } else if (flag == "--port") {
      port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (flag == "--threads") {
      threads = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--batch-window-ms") {
      batch_window_ms = std::stoull(value());
    } else if (flag == "--max-batch") {
      max_batch = std::stoull(value());
    } else if (flag == "--nsg-engines") {
      nsg_engines = std::stoull(value());
    } else if (flag == "--http-workers") {
      http_workers = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--http-queue") {
      http_queue = std::stoull(value());
    } else if (flag == "--max-connections") {
      max_connections = std::stoull(value());
    } else if (flag == "--ready-saturation") {
      ready_saturation = std::stod(value());
    } else if (flag == "--duration-sec") {
      duration_sec = std::stoull(value());
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "dcv_gate: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }
  if (topology_path.empty()) {
    usage();
    return 2;
  }

  try {
    const topo::Topology production =
        topo::parse_topology(slurp(topology_path));

    obs::MetricsRegistry registry;
    gate::GateConfig gate_config;
    gate_config.precheck_threads = threads;
    gate_config.batch_window = std::chrono::milliseconds(batch_window_ms);
    gate_config.max_batch = max_batch;
    gate_config.nsg_engines = nsg_engines;
    gate_config.metrics = &registry;
    std::cerr << "dcv_gate: building warm precheck session ("
              << production.device_count() << " devices)...\n";
    gate::GateService service(production, gate_config);

    obs::TelemetryServerConfig server_config;
    server_config.port = port;
    server_config.worker_threads = http_workers;
    server_config.max_queued_requests = http_queue;
    server_config.max_connections = max_connections;
    server_config.http_metrics = &registry;
    server_config.mount = [&service](obs::HttpServer& http) {
      service.attach(http);
    };
    // Liveness is unconditional; readiness follows serving saturation.
    const obs::HealthProbe probe = service.wrap_probe(
        [] {
          return obs::HealthSnapshot{.alive = true, .ready = true};
        },
        ready_saturation);
    obs::TelemetryServer server(&registry, nullptr, probe, server_config);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::cout << "dcv_gate: serving /precheck /nsg-check /gatez /metrics "
                 "/healthz /readyz on port "
              << server.port() << "\n";
    std::cout.flush();

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(duration_sec);
    while (!g_stop && (duration_sec == 0 ||
                       std::chrono::steady_clock::now() < deadline)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
    std::cout << "dcv_gate: " << service.prechecks_served() << " prechecks ("
              << service.precheck_batches() << " batches), "
              << service.nsg_checks_served() << " nsg checks"
              << (g_stop ? " (stopped by signal)" : "") << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dcv_gate: " << error.what() << "\n";
    return 1;
  }
}
