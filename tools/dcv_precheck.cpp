// dcv_precheck — gate network changes before rollout (§2.7, Figure 7).
//
// Reads a production topology file and a change plan; each change is
// applied to an emulated clone, routing re-runs, and RCDC's contracts
// decide. The plan format is line-oriented:
//
//   # comments allowed
//   change renumber ToR1
//   set-asn T0-0-0 64990
//   change migrate cluster leaves
//   set-asn T1-2-0 65100
//   set-asn T1-2-1 65100
//   change maintenance window
//   shut-link T0-0-0 T1-0-0
//   down-link T1-0-1 T2-1-0
//
// Each `change <description>` opens a change; the following set-asn /
// shut-link / down-link lines belong to it. Exit 0 iff every change is
// approved.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/error.hpp"
#include "rcdc/precheck.hpp"
#include "rcdc/precheck_io.hpp"
#include "topology/topology_io.hpp"

namespace {

using namespace dcv;

void usage() {
  std::cerr << "usage: dcv_precheck --topology FILE --plan FILE [--quiet]\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dcv_precheck: cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology_path;
  std::string plan_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "dcv_precheck: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topology") {
      topology_path = value();
    } else if (flag == "--plan") {
      plan_path = value();
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "dcv_precheck: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }
  if (topology_path.empty() || plan_path.empty()) {
    usage();
    return 2;
  }

  try {
    const topo::Topology production =
        topo::parse_topology(slurp(topology_path));
    const auto plan =
        rcdc::parse_change_plan(slurp(plan_path), production);
    const rcdc::PrecheckPipeline pipeline(production);
    const auto results = pipeline.check_rollout(plan);

    bool all_approved = results.size() == plan.size();
    for (const rcdc::PrecheckResult& result : results) {
      all_approved = all_approved && result.approved;
      std::cout << (result.approved ? "APPROVED " : "REJECTED ")
                << result.description << " (baseline "
                << result.baseline_violations << ", after "
                << result.post_change_violations << ", introduced "
                << result.introduced.size() << ")\n";
      if (!quiet) {
        std::size_t shown = 0;
        for (const rcdc::Violation& v : result.introduced) {
          if (shown++ >= 10) break;
          std::cout << "  " << production.device(v.device).name << " "
                    << v.contract.prefix.to_string() << " "
                    << to_string(v.kind) << "\n";
        }
      }
    }
    return all_approved ? 0 : 3;
  } catch (const std::exception& error) {
    std::cerr << "dcv_precheck: " << error.what() << "\n";
    return 1;
  }
}
