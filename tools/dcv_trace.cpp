// dcv_trace — dataplane's-eye traceroute over validated FIBs.
//
// Traces one flow hop by hop: longest-prefix match per device, ECMP member
// picked by the 5-tuple hash. Complements rcdc_validate (all contracts)
// and the belief checker (all paths) with the single-path view an
// operator reaches for first when debugging.
#include <charconv>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "e2e/trace.hpp"
#include "routing/bgp_sim.hpp"
#include "routing/table_io.hpp"
#include "topology/topology_io.hpp"

namespace {

using namespace dcv;

void usage() {
  std::cerr <<
      "usage: dcv_trace --topology FILE --from DEVICE --to IP [options]\n"
      "  --tables DIR     per-device routing tables (<name>.rt); default:\n"
      "                   simulate EBGP over the topology's recorded state\n"
      "  --src IP         source address (default 10.0.0.1)\n"
      "  --sport N        source port (default 40000)\n"
      "  --dport N        destination port (default 443)\n"
      "  --proto N        IP protocol (default 6/tcp)\n"
      "  --flows N        trace N flows varying the source port (default 1)\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dcv_trace: cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FileFibSource final : public rcdc::FibSource {
 public:
  FileFibSource(std::string directory, const topo::Topology& topology)
      : directory_(std::move(directory)), topology_(&topology) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    const auto path = std::filesystem::path(directory_) /
                      (topology_->device(device).name + ".rt");
    return routing::to_forwarding_table(
        routing::parse_routing_table(slurp(path.string())), *topology_);
  }

 private:
  std::string directory_;
  const topo::Topology* topology_;
};

unsigned parse_number(const std::string& text, const char* flag) {
  unsigned value = 0;
  const auto [next, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || next != text.data() + text.size()) {
    std::cerr << "dcv_trace: bad value for " << flag << "\n";
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology_path;
  std::string tables_dir;
  std::string from;
  std::string to_ip;
  std::string src_ip = "10.0.0.1";
  unsigned sport = 40000;
  unsigned dport = 443;
  unsigned proto = 6;
  unsigned flows = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "dcv_trace: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topology") {
      topology_path = value();
    } else if (flag == "--tables") {
      tables_dir = value();
    } else if (flag == "--from") {
      from = value();
    } else if (flag == "--to") {
      to_ip = value();
    } else if (flag == "--src") {
      src_ip = value();
    } else if (flag == "--sport") {
      sport = parse_number(value(), "--sport");
    } else if (flag == "--dport") {
      dport = parse_number(value(), "--dport");
    } else if (flag == "--proto") {
      proto = parse_number(value(), "--proto");
    } else if (flag == "--flows") {
      flows = std::max(1u, parse_number(value(), "--flows"));
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "dcv_trace: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }
  if (topology_path.empty() || from.empty() || to_ip.empty()) {
    usage();
    return 2;
  }

  try {
    const topo::Topology topology =
        topo::parse_topology(slurp(topology_path));
    const topo::MetadataService metadata(topology);
    const auto source = topology.find_device(from);
    if (!source) {
      std::cerr << "dcv_trace: unknown device '" << from << "'\n";
      return 1;
    }

    std::unique_ptr<routing::BgpSimulator> simulator;
    std::unique_ptr<rcdc::FibSource> fibs;
    if (tables_dir.empty()) {
      simulator = std::make_unique<routing::BgpSimulator>(topology);
      fibs = std::make_unique<rcdc::SimulatorFibSource>(*simulator);
    } else {
      fibs = std::make_unique<FileFibSource>(tables_dir, topology);
    }

    bool all_delivered = true;
    for (unsigned flow = 0; flow < flows; ++flow) {
      const net::PacketHeader packet{
          .src_ip = net::Ipv4Address::parse(src_ip),
          .src_port = static_cast<std::uint16_t>(sport + flow),
          .dst_ip = net::Ipv4Address::parse(to_ip),
          .dst_port = static_cast<std::uint16_t>(dport),
          .protocol = static_cast<std::uint8_t>(proto)};
      const auto result = e2e::trace_flow(metadata, *fibs, *source, packet);
      std::cout << packet.to_string() << ": "
                << result.to_string(topology) << "\n";
      all_delivered = all_delivered &&
                      result.outcome ==
                          e2e::TraceResult::Outcome::kDelivered;
    }
    return all_delivered ? 0 : 3;
  } catch (const std::exception& error) {
    std::cerr << "dcv_trace: " << error.what() << "\n";
    return 1;
  }
}
