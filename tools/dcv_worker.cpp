// dcv_worker — one validation worker of a distributed RCDC fleet.
//
// Connects to a coordinator (rcdc_validate --workers/--listen), loads the
// same topology file, and serves shard assignments: fetch each assigned
// device's table through the local fib-source stack, check the contracts
// that arrived on the wire, and stream the result (summary, violations,
// FIB fingerprints, serialized metrics registry) back. On connection loss
// it reconnects with exponential backoff; on kShutdown it exits 0.
#include <unistd.h>

#include <charconv>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/flaky_fib_source.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "routing/fib_synthesizer.hpp"
#include "routing/table_io.hpp"
#include "topology/topology_io.hpp"

namespace {

using namespace dcv;

void usage() {
  std::cerr <<
      "usage: dcv_worker --connect HOST:PORT --topology FILE [options]\n"
      "  --tables DIR         per-device routing tables (<name>.rt);\n"
      "                       default: simulate EBGP over recorded state\n"
      "  --source sim|synth   table source when --tables is absent:\n"
      "                       sim (EBGP simulation, default) or synth\n"
      "                       (O(1)-memory synthesized converged FIBs)\n"
      "  --verifier V         trie (default), smt, or linear\n"
      "  --worker-id NAME     identity in coordinator metrics (default\n"
      "                       w<pid>)\n"
      "  --fetch-latency-us N simulated per-device pull latency (the\n"
      "                       paper's 200-800 ms acquisition cost;\n"
      "                       default 0)\n"
      "  --time-scale X       scale factor on the simulated latency\n"
      "                       (default 1.0)\n"
      "  --reconnect-attempts N   consecutive failed connects before\n"
      "                       giving up (default 10)\n"
      "  --reconnect-backoff-ms N initial reconnect backoff, doubled per\n"
      "                       attempt, capped at 5 s (default 100)\n"
      "fault injection (per-attempt probabilities, worker-local):\n"
      "  --flaky-timeout R --flaky-transient R --flaky-truncate R\n"
      "  --flaky-corrupt R --flaky-unreachable R --flaky-seed N\n"
      "local telemetry dumps (written once, at exit):\n"
      "  --metrics-out FILE   dump this worker's metrics registry\n"
      "  --metrics-format F   prom (default) or json\n"
      "  --trace-out FILE     dump this worker's own span timeline as a\n"
      "                       Chrome/Perfetto trace (the coordinator merges\n"
      "                       the same spans fleet-wide)\n"
      "  --trace-capacity N   span ring capacity (default 4096)\n"
      "  --quiet              suppress per-connection log lines\n";
}

/// Atomic-enough file write: temp file in the same directory, then rename,
/// so a reader never sees a half-written dump.
bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dcv_worker: cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// FIBs parsed from a directory of routing-table files (same format as
/// rcdc_validate --tables).
class FileFibSource final : public rcdc::FibSource {
 public:
  FileFibSource(std::string directory, const topo::Topology& topology)
      : directory_(std::move(directory)), topology_(&topology) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    const auto path = std::filesystem::path(directory_) /
                      (topology_->device(device).name + ".rt");
    return routing::to_forwarding_table(
        routing::parse_routing_table(slurp(path.string())), *topology_);
  }

 private:
  std::string directory_;
  const topo::Topology* topology_;
};

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string connect_spec;
  std::string topology_path;
  std::string tables_dir;
  std::string source_name = "sim";
  std::string verifier_name = "trie";
  std::string worker_id;
  std::string metrics_out;
  std::string metrics_format = "prom";
  std::string trace_out;
  std::uint64_t trace_capacity = 4096;
  std::uint64_t fetch_latency_us = 0;
  double time_scale = 1.0;
  dist::ReconnectPolicy reconnect;
  rcdc::FlakyConfig flaky;
  bool use_flaky = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "dcv_worker: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto count_value = [&]() -> std::uint64_t {
      const auto text = value();
      std::uint64_t n = 0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), n);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        std::cerr << "dcv_worker: " << flag
                  << " wants a non-negative integer, got '" << text << "'\n";
        std::exit(2);
      }
      return n;
    };
    const auto rate_value = [&] {
      use_flaky = true;
      const auto text = value();
      double rate = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), rate);
      if (ec != std::errc{} || ptr != text.data() + text.size() ||
          rate < 0.0 || rate > 1.0) {
        std::cerr << "dcv_worker: " << flag << " wants a rate in [0,1]\n";
        std::exit(2);
      }
      return rate;
    };
    if (flag == "--connect") {
      connect_spec = value();
    } else if (flag == "--topology") {
      topology_path = value();
    } else if (flag == "--tables") {
      tables_dir = value();
    } else if (flag == "--source") {
      source_name = value();
    } else if (flag == "--verifier") {
      verifier_name = value();
    } else if (flag == "--worker-id") {
      worker_id = value();
    } else if (flag == "--metrics-out") {
      metrics_out = value();
    } else if (flag == "--metrics-format") {
      metrics_format = value();
      if (metrics_format != "prom" && metrics_format != "json") {
        std::cerr << "dcv_worker: --metrics-format wants prom or json\n";
        return 2;
      }
    } else if (flag == "--trace-out") {
      trace_out = value();
    } else if (flag == "--trace-capacity") {
      trace_capacity = count_value();
      if (trace_capacity == 0) {
        std::cerr << "dcv_worker: --trace-capacity wants a positive count\n";
        return 2;
      }
    } else if (flag == "--fetch-latency-us") {
      fetch_latency_us = count_value();
    } else if (flag == "--time-scale") {
      const auto text = value();
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), time_scale);
      if (ec != std::errc{} || ptr != text.data() + text.size() ||
          time_scale < 0.0) {
        std::cerr << "dcv_worker: --time-scale wants a non-negative number\n";
        return 2;
      }
    } else if (flag == "--reconnect-attempts") {
      reconnect.max_attempts = static_cast<std::uint32_t>(count_value());
    } else if (flag == "--reconnect-backoff-ms") {
      reconnect.initial_backoff = std::chrono::milliseconds(count_value());
    } else if (flag == "--flaky-timeout") {
      flaky.timeout_rate = rate_value();
    } else if (flag == "--flaky-transient") {
      flaky.transient_rate = rate_value();
    } else if (flag == "--flaky-truncate") {
      flaky.truncate_rate = rate_value();
    } else if (flag == "--flaky-corrupt") {
      flaky.corrupt_rate = rate_value();
    } else if (flag == "--flaky-unreachable") {
      flaky.unreachable_rate = rate_value();
    } else if (flag == "--flaky-seed") {
      flaky.seed = count_value();
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (flag == "--help" || flag == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "dcv_worker: unknown flag '" << flag << "'\n";
      usage();
      return 2;
    }
  }
  const auto colon = connect_spec.rfind(':');
  if (topology_path.empty() || connect_spec.empty() ||
      colon == std::string::npos) {
    usage();
    return 2;
  }
  const std::string host = connect_spec.substr(0, colon);
  std::uint16_t port = 0;
  {
    const std::string text = connect_spec.substr(colon + 1);
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), port);
    if (ec != std::errc{} || ptr != text.data() + text.size() || port == 0) {
      std::cerr << "dcv_worker: bad port in '" << connect_spec << "'\n";
      return 2;
    }
  }
  if (worker_id.empty()) {
    worker_id = "w" + std::to_string(::getpid());
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    const topo::Topology topology = topo::parse_topology(slurp(topology_path));
    const topo::MetadataService metadata(topology);
    obs::MetricsRegistry registry;
    std::unique_ptr<obs::TraceRing> trace;
    if (!trace_out.empty()) {
      trace = std::make_unique<obs::TraceRing>(
          static_cast<std::size_t>(trace_capacity));
      trace->attach_metrics(registry);
    }
    const auto dump_telemetry = [&] {
      if (!metrics_out.empty()) {
        const std::string body = metrics_format == "json"
                                     ? obs::write_json(registry)
                                     : obs::write_prometheus(registry);
        if (!write_file_atomic(metrics_out, body)) {
          std::cerr << "dcv_worker: cannot write " << metrics_out << "\n";
        }
      }
      if (trace != nullptr &&
          !write_file_atomic(trace_out, obs::write_chrome_trace(*trace))) {
        std::cerr << "dcv_worker: cannot write " << trace_out << "\n";
      }
    };

    std::unique_ptr<routing::BgpSimulator> simulator;
    std::unique_ptr<routing::FibSynthesizer> synthesizer;
    std::unique_ptr<rcdc::FibSource> fibs;
    if (!tables_dir.empty()) {
      fibs = std::make_unique<FileFibSource>(tables_dir, topology);
    } else if (source_name == "synth") {
      synthesizer = std::make_unique<routing::FibSynthesizer>(metadata);
      fibs = std::make_unique<rcdc::SynthesizedFibSource>(*synthesizer);
    } else if (source_name == "sim") {
      simulator = std::make_unique<routing::BgpSimulator>(topology);
      fibs = std::make_unique<rcdc::SimulatorFibSource>(*simulator);
    } else {
      std::cerr << "dcv_worker: --source wants sim or synth, got '"
                << source_name << "'\n";
      return 2;
    }
    std::unique_ptr<rcdc::FlakyFibSource> flaky_source;
    const rcdc::FibSource* active = fibs.get();
    if (use_flaky) {
      flaky_source = std::make_unique<rcdc::FlakyFibSource>(*active, flaky);
      active = flaky_source.get();
    }

    const rcdc::VerifierFactory factory =
        verifier_name == "smt"      ? rcdc::make_smt_verifier_factory(&registry)
        : verifier_name == "linear" ? rcdc::make_linear_verifier_factory(
                                          &registry)
                                    : rcdc::make_trie_verifier_factory(
                                          &registry);

    dist::WorkerSessionConfig session_config;
    session_config.id = worker_id;
    session_config.topology_epoch = topology.epoch();
    session_config.fetch_latency = std::chrono::microseconds(fetch_latency_us);
    session_config.time_scale = time_scale;
    session_config.metrics = &registry;
    session_config.trace = trace.get();
    dist::WorkerSession session(*active, factory, session_config);

    rcdc::SystemFetchClock clock;
    std::uint32_t failed_connects = 0;
    while (g_stop == 0) {
      auto transport =
          dist::connect_tcp(host, port, std::chrono::milliseconds(3000));
      if (transport == nullptr) {
        ++failed_connects;
        if (failed_connects >= reconnect.max_attempts) {
          std::cerr << "dcv_worker: " << worker_id << ": coordinator at "
                    << connect_spec << " unreachable after "
                    << failed_connects << " attempts\n";
          dump_telemetry();
          return 1;
        }
        clock.sleep_for(reconnect_backoff(reconnect, failed_connects + 1));
        continue;
      }
      failed_connects = 0;
      if (!quiet) {
        std::cerr << "dcv_worker: " << worker_id << ": connected to "
                  << connect_spec << "\n";
      }
      const std::uint64_t before = session.shards_validated();
      const dist::SessionEnd end = session.run(*transport);
      if (end == dist::SessionEnd::kShutdown) {
        if (!quiet) {
          std::cerr << "dcv_worker: " << worker_id << ": shutdown ("
                    << session.shards_validated() << " shards validated)\n";
        }
        dump_telemetry();
        return 0;
      }
      // Connection lost. A session that did real work earns a fresh
      // reconnect budget; a rejected/immediately-dropped one burns it.
      if (session.shards_validated() == before) ++failed_connects;
      if (failed_connects >= reconnect.max_attempts) {
        std::cerr << "dcv_worker: " << worker_id
                  << ": giving up after repeated connection losses\n";
        dump_telemetry();
        return 1;
      }
      clock.sleep_for(reconnect_backoff(reconnect, failed_connects + 1));
    }
    dump_telemetry();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dcv_worker: " << error.what() << "\n";
    return 1;
  }
}
