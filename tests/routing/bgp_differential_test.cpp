// Differential pinning of the worklist engine (BgpSimulator) against the
// retained Jacobi reference (ReferenceBgpSimulator): across randomized
// small Clos topologies, fault sets, and link-state churn, warm-started
// reconvergence must produce byte-equal RIBs and FIBs to a cold reference
// run on the mutated topology — at thread count 1 and at thread count N.
//
// The BgpParallel suite at the bottom is additionally run under
// ThreadSanitizer in CI; keep its tests self-contained and thread-heavy.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "net/error.hpp"
#include "obs/metrics.hpp"
#include "rcdc/fib_source.hpp"
#include "routing/bgp_reference.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/faults.hpp"

namespace dcv::routing {
namespace {

using topo::ClosParams;
using topo::DeviceFaultKind;
using topo::DeviceId;
using topo::DeviceRole;
using topo::FaultInjector;
using topo::Topology;

ClosParams random_params(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::uint32_t> clusters(1, 3);
  std::uniform_int_distribution<std::uint32_t> tors(1, 3);
  std::uniform_int_distribution<std::uint32_t> leaves(1, 3);
  std::uniform_int_distribution<std::uint32_t> spines(1, 2);
  std::uniform_int_distribution<std::uint32_t> regionals(2, 4);
  return ClosParams{.clusters = clusters(rng),
                    .tors_per_cluster = tors(rng),
                    .leaves_per_cluster = leaves(rng),
                    .spines_per_plane = spines(rng),
                    .regional_spines = regionals(rng)};
}

/// One random mutation drawn from the production churn mix: link failures,
/// session shutdowns, device faults, ASN drift, and repairs of earlier
/// faults (FaultInjector::repair clears and re-applies the remaining set,
/// which stresses the reconverge diff with whole-topology state swings).
void churn_step(Topology& topology, FaultInjector& injector,
                std::mt19937_64& rng) {
  std::uniform_real_distribution<double> pick(0.0, 1.0);
  const double p = pick(rng);
  if (p < 0.30) {
    injector.random_link_failures(1);
  } else if (p < 0.50) {
    injector.random_bgp_shutdowns(1);
  } else if (p < 0.70) {
    static constexpr DeviceFaultKind kKinds[] = {
        DeviceFaultKind::kRibFibInconsistency,
        DeviceFaultKind::kLayer2InterfaceBug,
        DeviceFaultKind::kEcmpSingleNextHop,
        DeviceFaultKind::kRejectDefaultRoute,
    };
    static constexpr DeviceRole kRoles[] = {
        DeviceRole::kTor, DeviceRole::kLeaf, DeviceRole::kSpine};
    std::uniform_int_distribution<std::size_t> kind_pick(0, 3);
    std::uniform_int_distribution<std::size_t> role_pick(0, 2);
    injector.random_device_faults(1, kRoles[role_pick(rng)],
                                  kKinds[kind_pick(rng)]);
  } else if (p < 0.85 && !injector.records().empty()) {
    std::uniform_int_distribution<std::size_t> record_pick(
        0, injector.records().size() - 1);
    injector.repair(record_pick(rng));
  } else {
    // ASN drift: the §2.6.2 migration misconfiguration — reassign a random
    // non-regional device's ASN within the private range.
    std::uniform_int_distribution<std::size_t> device_pick(
        0, topology.device_count() - 1);
    std::uniform_int_distribution<topo::Asn> asn_pick(64500, 65535);
    const DeviceId d = static_cast<DeviceId>(device_pick(rng));
    if (topology.device(d).role != DeviceRole::kRegionalSpine) {
      topology.set_asn(d, asn_pick(rng));
    }
  }
}

/// Asserts warm engine state ≡ cold reference on every device.
void expect_equal(const BgpSimulator& sim, const ReferenceBgpSimulator& ref,
                  const Topology& topology, const char* context) {
  for (const topo::Device& device : topology.devices()) {
    ASSERT_EQ(sim.rib(device.id), ref.rib(device.id))
        << context << ": RIB mismatch at " << device.name;
    ASSERT_EQ(sim.fib(device.id), ref.fib(device.id))
        << context << ": FIB mismatch at " << device.name;
  }
}

class BgpDifferential : public testing::TestWithParam<unsigned> {};

// 27 random topologies x 20 churn steps per thread count = 540 mutated
// states per instantiation, 1080 across both — each state compared on
// every device's RIB and FIB against a cold reference run.
TEST_P(BgpDifferential, WarmReconvergeMatchesColdReferenceUnderChurn) {
  const unsigned threads = GetParam();
  std::mt19937_64 rng(0xD1FFu * (threads + 1));
  for (int topo_case = 0; topo_case < 27; ++topo_case) {
    Topology topology = topo::build_clos(random_params(rng));
    FaultInjector injector(topology, /*seed=*/rng());
    BgpSimulator sim(topology, &injector, nullptr,
                     BgpSimOptions{.threads = threads,
                                   .parallel_threshold = 8});
    {
      const ReferenceBgpSimulator cold_ref(topology, &injector);
      ASSERT_EQ(sim.rounds(), cold_ref.rounds());
      expect_equal(sim, cold_ref, topology, "cold");
    }
    for (int step = 0; step < 20; ++step) {
      churn_step(topology, injector, rng);
      sim.reconverge();
      const ReferenceBgpSimulator ref(topology, &injector);
      expect_equal(sim, ref, topology, "churn");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BgpDifferential,
                         testing::Values(1u, 4u));

TEST(BgpReconverge, NoChangeIsZeroRounds) {
  Topology topology = topo::build_clos(ClosParams{.clusters = 2,
                                                  .tors_per_cluster = 2,
                                                  .leaves_per_cluster = 2,
                                                  .spines_per_plane = 1,
                                                  .regional_spines = 2});
  BgpSimulator sim(topology);
  EXPECT_EQ(sim.reconverge(), 0);
}

TEST(BgpReconverge, HostedPrefixChangePropagatesAsDelta) {
  Topology topology = topo::build_clos(ClosParams{.clusters = 2,
                                                  .tors_per_cluster = 2,
                                                  .leaves_per_cluster = 2,
                                                  .spines_per_plane = 1,
                                                  .regional_spines = 2});
  BgpSimulator sim(topology);
  const auto tors = topology.devices_with_role(DeviceRole::kTor);
  const auto extra = net::Prefix::parse("10.200.0.0/24");
  topology.add_hosted_prefix(tors.front(), extra);
  EXPECT_GT(sim.reconverge(), 0);
  const ReferenceBgpSimulator ref(topology);
  for (const topo::Device& device : topology.devices()) {
    ASSERT_EQ(sim.rib(device.id), ref.rib(device.id)) << device.name;
  }
  EXPECT_TRUE(sim.rib(tors.front()).contains(extra));
}

TEST(BgpReconverge, TopologyGrowthFallsBackToColdRun) {
  Topology topology = topo::build_clos(ClosParams{.clusters = 2,
                                                  .tors_per_cluster = 2,
                                                  .leaves_per_cluster = 2,
                                                  .spines_per_plane = 1,
                                                  .regional_spines = 2});
  BgpSimulator sim(topology);
  // A new device+link changes the expected shape: not representable as a
  // delta seed, so reconverge must rebuild from cold — and still be right.
  const auto spines = topology.devices_with_role(DeviceRole::kSpine);
  const DeviceId extra = topology.add_device(
      "extra-regional", DeviceRole::kRegionalSpine, 63099);
  topology.add_link(extra, spines.front());
  EXPECT_GT(sim.reconverge(), 0);
  const ReferenceBgpSimulator ref(topology);
  for (const topo::Device& device : topology.devices()) {
    ASSERT_EQ(sim.rib(device.id), ref.rib(device.id)) << device.name;
  }
}

// Regression for the historical convergence check that ignored
// origin_datacenter: entries differing only in origin must compare unequal,
// so an origin flip re-triggers propagation and regional-spine hairpin
// suppression never acts on a stale origin.
TEST(RibEntryEquality, OriginDatacenterIsPartOfEquality) {
  const auto prefix = net::Prefix::parse("10.0.0.0/24");
  const std::vector<topo::Asn> asns{64500, 63000};
  const PathId path = global_path_table().intern(asns);
  const std::vector<DeviceId> hops{3};
  Rib a;
  a.append(prefix, path, hops, /*connected=*/false, /*origin=*/0);
  Rib same;
  same.append(prefix, path, hops, /*connected=*/false, /*origin=*/0);
  Rib flipped;
  flipped.append(prefix, path, hops, /*connected=*/false, /*origin=*/1);
  EXPECT_TRUE(Rib::entry_equal(a, a.entries()[0], same, same.entries()[0]));
  EXPECT_FALSE(
      Rib::entry_equal(a, a.entries()[0], flipped, flipped.entries()[0]));
  EXPECT_EQ(a, same);
  EXPECT_NE(a, flipped);
}

TEST(RibLookup, FindAtContains) {
  const auto p1 = net::Prefix::parse("10.0.0.0/24");
  const auto p2 = net::Prefix::parse("10.0.1.0/24");
  Rib rib;
  rib.append(p2, kEmptyPathId, {}, /*connected=*/false, /*origin=*/0);
  rib.append(p1, kEmptyPathId, {}, /*connected=*/false, /*origin=*/0);
  rib.sort_by_prefix();
  ASSERT_EQ(rib.size(), 2u);
  EXPECT_EQ(rib.begin()->prefix, std::min(p1, p2));  // canonical order
  EXPECT_TRUE(rib.contains(p1));
  EXPECT_EQ(rib.at(p2).prefix, p2);
  EXPECT_EQ(rib.find(net::Prefix::parse("10.9.9.0/24")), nullptr);
  EXPECT_THROW(static_cast<void>(rib.at(net::Prefix::default_route())),
               InvalidArgument);
}

// The acceptance criterion for SimulatorFibSource: repeated fetches serve
// the cached materialization; a reconverge rebuilds only the devices whose
// RIB actually changed.
TEST(FibCache, FetchesServeCachedTablesAcrossCycles) {
  Topology topology = topo::build_clos(ClosParams{.clusters = 3,
                                                  .tors_per_cluster = 3,
                                                  .leaves_per_cluster = 3,
                                                  .spines_per_plane = 2,
                                                  .regional_spines = 4});
  FaultInjector injector(topology, /*seed=*/9);
  obs::MetricsRegistry registry;
  BgpSimulator sim(topology, &injector, &registry);
  const rcdc::SimulatorFibSource source(sim);

  const auto& rebuilds =
      registry.counter("dcv_bgp_fib_rebuilds_total", "");
  const auto& hits = registry.counter("dcv_bgp_fib_cache_hits_total", "");
  const std::size_t n = topology.device_count();

  // Two full pipeline cycles: every table is built exactly once.
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (DeviceId d = 0; d < n; ++d) (void)source.fetch(d);
  }
  EXPECT_EQ(rebuilds.value(), n);
  EXPECT_EQ(hits.value(), n);

  // One link fault + warm reconverge: only affected devices rebuild.
  injector.random_link_failures(1);
  EXPECT_GT(sim.reconverge(), 0);
  for (DeviceId d = 0; d < n; ++d) (void)source.fetch(d);
  const std::uint64_t after_fault = rebuilds.value();
  EXPECT_GT(after_fault, n);       // something was invalidated
  EXPECT_LT(after_fault, 2 * n);   // but nowhere near the whole fleet

  // A FIB-programming fault flips a device's table without touching RIBs:
  // exactly that one device rebuilds.
  const auto tors = topology.devices_with_role(DeviceRole::kTor);
  injector.device_fault(tors.front(),
                        DeviceFaultKind::kEcmpSingleNextHop);
  EXPECT_EQ(sim.reconverge(), 0);  // no routing change
  for (DeviceId d = 0; d < n; ++d) (void)source.fetch(d);
  EXPECT_EQ(rebuilds.value(), after_fault + 1);
}

// ---------------------------------------------------------------------------
// BgpParallel.* — exercised under ThreadSanitizer in CI.

TEST(BgpParallel, DeterministicAcrossThreadCounts) {
  Topology topology = topo::build_clos(ClosParams{.clusters = 4,
                                                  .tors_per_cluster = 4,
                                                  .leaves_per_cluster = 4,
                                                  .spines_per_plane = 2,
                                                  .regional_spines = 4});
  const BgpSimulator serial(topology, nullptr, nullptr,
                            BgpSimOptions{.threads = 1});
  const BgpSimulator parallel(topology, nullptr, nullptr,
                              BgpSimOptions{.threads = 8,
                                            .parallel_threshold = 1});
  ASSERT_EQ(serial.rounds(), parallel.rounds());
  for (const topo::Device& device : topology.devices()) {
    ASSERT_EQ(serial.rib(device.id), parallel.rib(device.id)) << device.name;
  }
}

TEST(BgpParallel, ReconvergeChurnWithConcurrentFibFetches) {
  Topology topology = topo::build_clos(ClosParams{.clusters = 4,
                                                  .tors_per_cluster = 3,
                                                  .leaves_per_cluster = 3,
                                                  .spines_per_plane = 2,
                                                  .regional_spines = 4});
  FaultInjector injector(topology, /*seed=*/21);
  BgpSimulator sim(topology, &injector, nullptr,
                   BgpSimOptions{.threads = 4, .parallel_threshold = 1});
  std::mt19937_64 rng(21);
  for (int round = 0; round < 5; ++round) {
    churn_step(topology, injector, rng);
    sim.reconverge();
    // Converged state is immutable until the next reconverge: hammer the
    // striped FIB cache from several threads at once.
    std::vector<std::thread> fetchers;
    for (int t = 0; t < 4; ++t) {
      fetchers.emplace_back([&sim, &topology, t] {
        for (std::size_t d = 0; d < topology.device_count(); ++d) {
          const auto& fib =
              sim.fib(static_cast<DeviceId>((d + t) %
                                            topology.device_count()));
          ASSERT_GE(fib.rules().size(), 0u);
        }
      });
    }
    for (std::thread& f : fetchers) f.join();
  }
  const ReferenceBgpSimulator ref(topology, &injector);
  for (const topo::Device& device : topology.devices()) {
    ASSERT_EQ(sim.rib(device.id), ref.rib(device.id)) << device.name;
  }
}

}  // namespace
}  // namespace dcv::routing
