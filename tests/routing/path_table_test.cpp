#include "routing/path_table.hpp"

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "routing/bgp_sim.hpp"

namespace dcv::routing {
namespace {

using topo::Asn;

TEST(PathTable, InternDedupesByContent) {
  PathTable table;
  const std::vector<Asn> path{65001, 65002, 65003};
  const PathId first = table.intern(path);
  const std::vector<Asn> copy = path;
  EXPECT_EQ(table.intern(copy), first);
  EXPECT_NE(first, kEmptyPathId);
  EXPECT_EQ(table.size(), 1u);

  const auto view = table.view(first);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), path.begin(), path.end()));
}

TEST(PathTable, IdEqualityIsContentEquality) {
  PathTable table;
  const std::vector<Asn> a{65001, 65002};
  const std::vector<Asn> b{65002, 65001};  // order matters for AS-paths
  const std::vector<Asn> c{65001};
  const PathId ia = table.intern(a);
  const PathId ib = table.intern(b);
  const PathId ic = table.intern(c);
  EXPECT_NE(ia, ib);
  EXPECT_NE(ia, ic);
  EXPECT_NE(ib, ic);
  EXPECT_EQ(table.size(), 3u);
}

TEST(PathTable, EmptyPathIsIdZero) {
  PathTable table;
  EXPECT_EQ(table.intern({}), kEmptyPathId);
  EXPECT_TRUE(table.view(kEmptyPathId).empty());
  EXPECT_EQ(table.size(), 0u);
}

TEST(PathTable, UnknownIdThrows) {
  PathTable table;
  EXPECT_THROW((void)table.view(12345), InvalidArgument);
}

TEST(PathTable, BytesGrowWithDistinctPaths) {
  PathTable table;
  const std::size_t before = table.bytes();
  std::vector<Asn> path{65000};
  for (Asn asn = 1; asn <= 64; ++asn) {
    path.push_back(asn);
    (void)table.intern(path);
  }
  EXPECT_GT(table.bytes(), before);
  EXPECT_EQ(table.size(), 64u);
}

// Run under TSan: concurrent interns of overlapping path sets racing
// lock-free view() readers. Every thread must agree on id <-> content.
TEST(PathTable, ConcurrentInternAndViewAgree) {
  PathTable table;
  constexpr int kThreads = 8;
  constexpr int kPaths = 512;

  // Each thread interns the same kPaths paths (in a thread-specific order)
  // and immediately validates the view of every id it receives.
  std::vector<std::vector<PathId>> ids(kThreads,
                                       std::vector<PathId>(kPaths, 0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &ids, t] {
      for (int i = 0; i < kPaths; ++i) {
        // Thread-specific visiting order over a shared path universe.
        const int p = (i * 37 + t * 101) % kPaths;
        const std::vector<Asn> path{static_cast<Asn>(64500 + p % 97),
                                    static_cast<Asn>(64500 + p % 31),
                                    static_cast<Asn>(64500 + p)};
        const PathId id = table.intern(path);
        const auto view = table.view(id);
        ASSERT_TRUE(std::equal(view.begin(), view.end(), path.begin(),
                               path.end()));
        ids[t][p] = id;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Hash-consing held across threads: same content, same id everywhere.
  for (int t = 1; t < kThreads; ++t) {
    for (int p = 0; p < kPaths; ++p) {
      ASSERT_EQ(ids[t][p], ids[0][p]) << "path " << p;
    }
  }
  EXPECT_EQ(table.size(), kPaths);
}

// Arena-reuse property: a cleared Rib rebuilds identical content without
// allocating — capacities (and therefore buffer addresses) are retained.
TEST(RibArena, ClearRetainsCapacityAndRebuildsInPlace) {
  PathTable& table = global_path_table();
  const std::vector<Asn> path{65001, 65002};
  const PathId id = table.intern(path);

  // Hop lists longer than kInlineHops force arena storage.
  const std::vector<topo::DeviceId> hops{1, 2, 3, 4, 5};
  Rib rib;
  for (std::uint32_t i = 0; i < 64; ++i) {
    rib.append(net::Prefix::parse(std::to_string(i % 250) + "." +
                                  std::to_string(i / 250) + ".0.0/24"),
               id, hops, false, 0);
  }
  rib.sort_by_prefix();
  const std::size_t bytes = rib.memory_bytes();
  ASSERT_GT(bytes, 0u);
  const topo::DeviceId* arena_data = rib.next_hops(*rib.begin()).data();

  for (int round = 0; round < 10; ++round) {
    rib.clear();
    EXPECT_EQ(rib.memory_bytes(), bytes) << "round " << round;
    for (std::uint32_t i = 0; i < 64; ++i) {
      rib.append(net::Prefix::parse(std::to_string(i % 250) + "." +
                                    std::to_string(i / 250) + ".0.0/24"),
                 id, hops, false, 0);
    }
    rib.sort_by_prefix();
    // Same capacity and the arena kept its address: no reallocation.
    EXPECT_EQ(rib.memory_bytes(), bytes) << "round " << round;
    EXPECT_EQ(rib.next_hops(*rib.begin()).data(), arena_data)
        << "round " << round;
  }
}

// release()/from_sorted() move storage wholesale: no copies, entries and
// arena survive the round trip bit-identically.
TEST(RibArena, ReleaseFromSortedRoundTripsWithoutReallocating) {
  PathTable& table = global_path_table();
  const PathId id = table.intern(std::vector<Asn>{65009});
  const std::vector<topo::DeviceId> hops{9, 8, 7, 6};

  Rib rib;
  rib.append(net::Prefix::parse("10.1.0.0/24"), id, hops, false, 1);
  rib.append(net::Prefix::parse("10.2.0.0/24"), id,
             std::vector<topo::DeviceId>{3}, false, 1);
  rib.sort_by_prefix();
  const topo::DeviceId* arena_data =
      rib.next_hops(rib.at(net::Prefix::parse("10.1.0.0/24"))).data();

  Rib moved = Rib::from_sorted(std::move(rib).release());
  EXPECT_EQ(moved.size(), 2u);
  const auto& entry = moved.at(net::Prefix::parse("10.1.0.0/24"));
  const auto moved_hops = moved.next_hops(entry);
  EXPECT_EQ(moved_hops.data(), arena_data);
  EXPECT_TRUE(
      std::equal(moved_hops.begin(), moved_hops.end(), hops.begin(),
                 hops.end()));
}

}  // namespace
}  // namespace dcv::routing
