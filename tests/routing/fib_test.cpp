#include "routing/fib.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dcv::routing {
namespace {

Rule rule(const char* prefix, std::vector<topo::DeviceId> hops) {
  return Rule{.prefix = net::Prefix::parse(prefix),
              .next_hops = std::move(hops)};
}

TEST(ForwardingTable, RulesSortedLongestFirst) {
  ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1}));
  fib.add(rule("10.0.0.0/8", {2}));
  fib.add(rule("10.0.0.0/24", {3}));
  ASSERT_EQ(fib.size(), 3u);
  EXPECT_EQ(fib.rules()[0].prefix.length(), 24);
  EXPECT_EQ(fib.rules()[1].prefix.length(), 8);
  EXPECT_EQ(fib.rules()[2].prefix.length(), 0);
}

TEST(ForwardingTable, LongestPrefixMatchWins) {
  ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1}));
  fib.add(rule("10.0.0.0/8", {2}));
  fib.add(rule("10.3.129.224/28", {3}));
  EXPECT_EQ(fib.lookup(net::Ipv4Address::parse("10.3.129.230"))->next_hops,
            std::vector<topo::DeviceId>{3});
  EXPECT_EQ(fib.lookup(net::Ipv4Address::parse("10.3.129.240"))->next_hops,
            std::vector<topo::DeviceId>{2});
  EXPECT_EQ(fib.lookup(net::Ipv4Address::parse("11.0.0.1"))->next_hops,
            std::vector<topo::DeviceId>{1});
}

TEST(ForwardingTable, NoMatchMeansDrop) {
  ForwardingTable fib;
  fib.add(rule("10.0.0.0/8", {2}));
  EXPECT_EQ(fib.lookup(net::Ipv4Address::parse("11.0.0.1")), nullptr);
}

TEST(ForwardingTable, NextHopsCanonicalized) {
  ForwardingTable fib;
  fib.add(rule("10.0.0.0/8", {5, 3, 3, 1}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.0.0/8"))->next_hops,
            (std::vector<topo::DeviceId>{1, 3, 5}));
}

TEST(ForwardingTable, DuplicatePrefixReplaces) {
  ForwardingTable fib;
  fib.add(rule("10.0.0.0/8", {1}));
  fib.add(rule("10.0.0.0/8", {2}));
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.0.0/8"))->next_hops,
            std::vector<topo::DeviceId>{2});
}

TEST(ForwardingTable, DefaultRouteAccessor) {
  ForwardingTable fib;
  EXPECT_EQ(fib.default_route(), nullptr);
  fib.add(rule("0.0.0.0/0", {7}));
  ASSERT_NE(fib.default_route(), nullptr);
  EXPECT_EQ(fib.default_route()->next_hops, std::vector<topo::DeviceId>{7});
}

TEST(ForwardingTable, FindIsExactMatch) {
  ForwardingTable fib;
  fib.add(rule("10.0.0.0/8", {1}));
  EXPECT_NE(fib.find(net::Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.0.0/9")), nullptr);
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.0.0/24")), nullptr);
}

TEST(ForwardingTable, ConnectedRule) {
  ForwardingTable fib;
  fib.add(Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
               .next_hops = {},
               .connected = true});
  const Rule* hit = fib.lookup(net::Ipv4Address::parse("10.0.0.1"));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->connected);
}

/// Property: lookup agrees with a brute-force longest-prefix scan.
TEST(ForwardingTableProperty, LookupMatchesBruteForce) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(4, 28);
  for (int trial = 0; trial < 30; ++trial) {
    ForwardingTable fib;
    for (int i = 0; i < 60; ++i) {
      Rule r = rule("0.0.0.0/0", {static_cast<topo::DeviceId>(i)});
      r.prefix = net::Prefix(
          net::Ipv4Address((addr(rng) & 0x0FFFFFFFu) | 0x0A000000u),
          len(rng));
      fib.add(r);
    }
    for (int probe = 0; probe < 200; ++probe) {
      const net::Ipv4Address a((addr(rng) & 0x0FFFFFFFu) | 0x0A000000u);
      const Rule* got = fib.lookup(a);
      const Rule* expected = nullptr;
      for (const Rule& r : fib.rules()) {
        if (r.prefix.contains(a) &&
            (expected == nullptr ||
             r.prefix.length() > expected->prefix.length())) {
          expected = &r;
        }
      }
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(Rule, ToStringIncludesHops) {
  // Rule itself preserves insertion order; canonicalization happens on
  // ForwardingTable::add.
  const Rule r = rule("10.0.0.0/8", {2, 1});
  EXPECT_EQ(r.to_string(), "10.0.0.0/8 -> 2 1");
}

}  // namespace
}  // namespace dcv::routing
