// Property suite over random Clos shapes: structural invariants of the
// EBGP propagation that the paper's design arguments rest on.
#include <gtest/gtest.h>

#include <set>

#include "rcdc/local_validation.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/metadata.hpp"

namespace dcv::routing {
namespace {

using topo::ClosParams;
using topo::DeviceId;
using topo::DeviceRole;

struct Shape {
  std::uint32_t clusters;
  std::uint32_t tors;
  std::uint32_t leaves;
  std::uint32_t spines_per_plane;
  std::uint32_t regionals;
};

class BgpInvariants : public testing::TestWithParam<Shape> {
 protected:
  ClosParams params() const {
    const Shape s = GetParam();
    return ClosParams{.clusters = s.clusters,
                      .tors_per_cluster = s.tors,
                      .leaves_per_cluster = s.leaves,
                      .spines_per_plane = s.spines_per_plane,
                      .regional_spines = s.regionals};
  }
};

TEST_P(BgpInvariants, ConvergesWithinDiameterBound) {
  const auto topology = topo::build_clos(params());
  const BgpSimulator sim(topology);
  // Announcements cross at most ToR->leaf->spine->regional->spine->leaf->
  // ToR plus slack for the synchronous-round model.
  EXPECT_LE(sim.rounds(), 12);
}

TEST_P(BgpInvariants, AsPathsAreLoopFree) {
  const auto topology = topo::build_clos(params());
  const BgpSimulator sim(topology);
  for (const topo::Device& device : topology.devices()) {
    for (const RibEntry& entry : sim.rib(device.id)) {
      // No ASN may repeat in a selected path — except the reused ToR ASN,
      // which the allowas-in configuration admits at the receiving ToR
      // only (§2.1); even there a single path never contains the same
      // *adjacent* hops, so repetitions are bounded by the reuse scheme.
      const auto path = entry.as_path();
      std::multiset<topo::Asn> seen(path.begin(), path.end());
      for (const topo::Asn asn : seen) {
        if (device.role == DeviceRole::kTor &&
            asn == device.asn) {
          continue;  // allowas-in at the ToR
        }
        EXPECT_LE(seen.count(asn), 1u)
            << device.name << " " << entry.prefix.to_string();
      }
    }
  }
}

TEST_P(BgpInvariants, PathLengthsMatchArchitecturalDistance) {
  const auto topology = topo::build_clos(params());
  const topo::MetadataService metadata(topology);
  const rcdc::LocalValidationFramework framework(metadata);
  const BgpSimulator sim(topology);
  for (const topo::Device& device : topology.devices()) {
    for (const RibEntry& entry : sim.rib(device.id)) {
      if (entry.prefix.is_default() || entry.connected) continue;
      const auto rank = framework.delta(entry.prefix, device.id);
      if (!rank) continue;
      // The selected AS-path (own ASN + traversed ASNs) spans exactly the
      // architectural distance to the hosting ToR.
      EXPECT_EQ(entry.as_path().size(), static_cast<std::size_t>(*rank) + 1)
          << device.name << " " << entry.prefix.to_string();
    }
  }
}

TEST_P(BgpInvariants, EveryFibSatisfiesTheRankFramework) {
  const auto topology = topo::build_clos(params());
  const topo::MetadataService metadata(topology);
  const rcdc::LocalValidationFramework framework(metadata);
  const BgpSimulator sim(topology);
  for (const topo::Device& device : topology.devices()) {
    EXPECT_TRUE(framework.check_fib(device.id, sim.fib(device.id)).empty())
        << device.name;
  }
}

TEST_P(BgpInvariants, NextHopSetsAreMaximal) {
  // ECMP uses *every* equally-good neighbor (Intent 3: all redundant
  // shortest paths available).
  const auto topology = topo::build_clos(params());
  const topo::MetadataService metadata(topology);
  const BgpSimulator sim(topology);
  for (const DeviceId tor : topology.devices_with_role(DeviceRole::kTor)) {
    const auto leaves_adj = topology.neighbors_with_role(tor, DeviceRole::kLeaf);
    const std::vector<DeviceId> leaves(leaves_adj.begin(), leaves_adj.end());
    const auto fib = sim.fib(tor);
    ASSERT_NE(fib.default_route(), nullptr);
    EXPECT_EQ(fib.default_route()->next_hops, leaves);
    for (const auto& fact : metadata.all_prefixes()) {
      if (fact.tor == tor) continue;
      const Rule* rule = fib.find(fact.prefix);
      ASSERT_NE(rule, nullptr);
      EXPECT_EQ(rule->next_hops, leaves)
          << topology.device(tor).name << " " << fact.prefix.to_string();
    }
  }
}

TEST_P(BgpInvariants, FaultsOnlyEverShrinkNextHopSets) {
  // Under link failures, surviving routes use a subset of the healthy
  // ECMP sets — never a detour that violates the rank framework.
  auto topology = topo::build_clos(params());
  const topo::MetadataService metadata(topology);
  const BgpSimulator healthy(topology);

  topo::FaultInjector faults(topology, /*seed=*/GetParam().clusters * 7 +
                                           GetParam().leaves);
  faults.random_link_failures(3);
  const BgpSimulator faulty(topology, &faults);

  for (const topo::Device& device : topology.devices()) {
    const auto healthy_fib = healthy.fib(device.id);
    const auto faulty_fib = faulty.fib(device.id);
    for (const Rule& rule : faulty_fib.rules()) {
      const Rule* baseline = healthy_fib.find(rule.prefix);
      ASSERT_NE(baseline, nullptr)
          << device.name << " grew a route for " << rule.prefix.to_string();
      EXPECT_TRUE(std::includes(baseline->next_hops.begin(),
                                baseline->next_hops.end(),
                                rule.next_hops.begin(),
                                rule.next_hops.end()))
          << device.name << " " << rule.prefix.to_string();
    }
  }
}

TEST_P(BgpInvariants, NextHopsAreCanonicallyOrdered) {
  // ECMP next-hop sets come out of selection in canonical order on every
  // device and prefix — the determinism argument for the parallel frontier
  // rests on selection being order-independent.
  const auto topology = topo::build_clos(params());
  const BgpSimulator sim(topology);
  for (const topo::Device& device : topology.devices()) {
    const Rib& rib = sim.rib(device.id);
    for (const RibEntry& entry : rib) {
      const auto hops = rib.next_hops(entry);
      std::vector<DeviceId> canonical(hops.begin(), hops.end());
      canonicalize(canonical);
      EXPECT_TRUE(std::equal(hops.begin(), hops.end(), canonical.begin(),
                             canonical.end()))
          << device.name << " " << entry.prefix.to_string();
    }
  }
}

TEST_P(BgpInvariants, ReconvergeAfterLinkFlapsEqualsColdRun) {
  // Warm-starting from fault sites reaches the same fixpoint as a cold run
  // on the mutated topology — across shapes and a burst of random flaps.
  auto topology = topo::build_clos(params());
  topo::FaultInjector faults(topology, /*seed=*/GetParam().clusters * 31 +
                                           GetParam().regionals);
  BgpSimulator warm(topology, &faults);
  faults.random_link_failures(2);
  faults.random_bgp_shutdowns(1);
  warm.reconverge();
  if (!faults.records().empty()) {
    faults.repair(0);  // one flap back up
    warm.reconverge();
  }
  const BgpSimulator cold(topology, &faults);
  for (const topo::Device& device : topology.devices()) {
    ASSERT_EQ(warm.rib(device.id), cold.rib(device.id)) << device.name;
    ASSERT_EQ(warm.fib(device.id), cold.fib(device.id)) << device.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BgpInvariants,
    testing::Values(Shape{2, 2, 2, 1, 2}, Shape{2, 2, 4, 1, 4},
                    Shape{3, 2, 3, 2, 4}, Shape{4, 3, 4, 2, 4},
                    Shape{5, 2, 2, 3, 6}, Shape{3, 4, 6, 1, 4},
                    Shape{2, 1, 8, 2, 8}, Shape{6, 2, 4, 2, 4}));

}  // namespace
}  // namespace dcv::routing
