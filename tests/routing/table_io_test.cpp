#include "routing/table_io.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::routing {
namespace {

TEST(TableIo, DeviceAddressIsStable) {
  EXPECT_EQ(device_address(0).to_string(), "172.16.0.1");
  EXPECT_EQ(device_address(255).to_string(), "172.16.1.0");
}

TEST(TableIo, WriteContainsFigure2Furniture) {
  ForwardingTable fib;
  fib.add(Rule{.prefix = net::Prefix::default_route(), .next_hops = {0, 1}});
  const std::string text = write_routing_table(fib);
  EXPECT_NE(text.find("VRF name: default"), std::string::npos);
  EXPECT_NE(text.find("Gateway of last resort"), std::string::npos);
  EXPECT_NE(text.find("B E 0.0.0.0/0 [200/0] via 172.16.0.1"),
            std::string::npos);
}

TEST(TableIo, ParseFigure2StyleText) {
  const char* text =
      "VRF name: default\n"
      "Codes: C - connected, S - static, K - kernel,\n"
      "Gateway of last resort:\n"
      "B E 0.0.0.0/0 [200/0] via 172.16.0.1,\n"
      "                      via 172.16.0.2\n"
      "B E 10.3.129.224/28 [200/0] via 172.16.0.1\n"
      "C 10.0.0.0/24 directly connected\n";
  const ParsedRoutingTable parsed = parse_routing_table(text);
  EXPECT_EQ(parsed.vrf, "default");
  ASSERT_EQ(parsed.routes.size(), 3u);
  EXPECT_EQ(parsed.routes[0].prefix, net::Prefix::default_route());
  EXPECT_EQ(parsed.routes[0].via.size(), 2u);
  EXPECT_EQ(parsed.routes[1].prefix, net::Prefix::parse("10.3.129.224/28"));
  EXPECT_TRUE(parsed.routes[2].connected);
}

TEST(TableIo, ParseRejectsGarbage) {
  EXPECT_THROW(parse_routing_table("nonsense line\n"), ParseError);
  EXPECT_THROW(parse_routing_table("via 1.2.3.4\n"), ParseError);
  EXPECT_THROW(parse_routing_table("B E 1.2.3.0/24 banana\n"), ParseError);
}

TEST(TableIo, RoundTripThroughText) {
  // Simulate, render every FIB to device text, parse it back, resolve next
  // hops, and require exact equality — the full puller path.
  const auto topology = topo::build_figure3();
  const BgpSimulator sim(topology);
  for (const topo::Device& device : topology.devices()) {
    const ForwardingTable original = sim.fib(device.id);
    const std::string text = write_routing_table(original);
    const ForwardingTable reparsed =
        to_forwarding_table(parse_routing_table(text), topology);
    EXPECT_EQ(original, reparsed) << device.name;
  }
}

TEST(TableIo, ResolveRejectsUnknownNextHop) {
  ParsedRoutingTable parsed;
  parsed.routes.push_back(ParsedRoute{
      .prefix = net::Prefix::default_route(),
      .connected = false,
      .via = {net::Ipv4Address::parse("192.0.2.1")}});
  const auto topology = topo::build_figure3();
  EXPECT_THROW(to_forwarding_table(parsed, topology), ParseError);
}

TEST(TableIo, DropRouteRenders) {
  ForwardingTable fib;
  fib.add(Rule{.prefix = net::Prefix::parse("10.0.0.0/24"), .next_hops = {}});
  const std::string text = write_routing_table(fib);
  EXPECT_NE(text.find("drop"), std::string::npos);
  const ParsedRoutingTable parsed = parse_routing_table(text);
  ASSERT_EQ(parsed.routes.size(), 1u);
  EXPECT_TRUE(parsed.routes[0].via.empty());
}

}  // namespace
}  // namespace dcv::routing
