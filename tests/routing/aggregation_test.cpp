// Tests of the §2.1 design rationale: route aggregation is rejected
// because it black-holes traffic under single-link failures. The
// aggregation transform exists precisely to demonstrate that.
#include "routing/aggregation.hpp"

#include <gtest/gtest.h>

#include "rcdc/fib_source.hpp"
#include "rcdc/global_checker.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::routing {
namespace {

TEST(CommonPrefix, LowestCommonAncestor) {
  EXPECT_EQ(net::common_prefix(net::Prefix::parse("10.0.0.0/24"),
                               net::Prefix::parse("10.0.1.0/24")),
            net::Prefix::parse("10.0.0.0/23"));
  EXPECT_EQ(net::common_prefix(net::Prefix::parse("10.0.0.0/24"),
                               net::Prefix::parse("10.0.0.0/24")),
            net::Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(net::common_prefix(net::Prefix::parse("10.0.0.0/8"),
                               net::Prefix::parse("192.0.0.0/8")),
            net::Prefix::default_route());
  EXPECT_EQ(net::common_prefix(net::Prefix::parse("10.0.0.0/8"),
                               net::Prefix::parse("10.1.0.0/16")),
            net::Prefix::parse("10.0.0.0/8"));
}

TEST(Aggregation, FoldsClusterRoutesAtSpine) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const BgpSimulator sim(topology);
  const auto d1 = *topology.find_device("D1");
  const ForwardingTable plain = sim.fib(d1);
  const ForwardingTable aggregated =
      aggregate_cluster_routes(plain, metadata, d1);

  // 4 specific routes fold into 2 cluster aggregates; default unchanged.
  EXPECT_EQ(plain.size(), 5u);
  EXPECT_EQ(aggregated.size(), 3u);
  // Cluster A's prefixes 10.0.0.0/24 and 10.0.1.0/24 -> 10.0.0.0/23 {A1}.
  const Rule* a = aggregated.find(net::Prefix::parse("10.0.0.0/23"));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->next_hops,
            std::vector<topo::DeviceId>{*topology.find_device("A1")});
  ASSERT_NE(aggregated.default_route(), nullptr);
  EXPECT_EQ(aggregated.default_route()->next_hops,
            plain.default_route()->next_hops);
}

TEST(Aggregation, LeafOriginatesDiscardRoute) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const BgpSimulator sim(topology);
  const auto a1 = *topology.find_device("A1");
  const ForwardingTable aggregated =
      aggregate_cluster_routes(sim.fib(a1), metadata, a1);
  const Rule* discard = aggregated.find(net::Prefix::parse("10.0.0.0/23"));
  ASSERT_NE(discard, nullptr);
  EXPECT_TRUE(discard->next_hops.empty());
  // Specifics survive and, being longer, win LPM on the healthy network.
  const Rule* hit =
      aggregated.lookup(net::Ipv4Address::parse("10.0.1.9"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix, net::Prefix::parse("10.0.1.0/24"));
}

TEST(Aggregation, PreservesForwardingOnHealthyNetwork) {
  const auto topology = topo::build_clos(topo::ClosParams{});
  const topo::MetadataService metadata(topology);
  const BgpSimulator sim(topology);
  const rcdc::SimulatorFibSource plain(sim);
  const rcdc::AggregatingFibSource aggregated(plain, metadata);
  const rcdc::GlobalChecker checker(metadata, aggregated);
  const auto result = checker.check_all_pairs();
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(result.pairs_with_loops, 0u);
}

TEST(Aggregation, LinkFailuresBlackHoleTheAggregatedDesign) {
  // The Figure 3 failures. The paper's aggregation-free design degrades
  // onto the regional detour — every pair stays reachable (§2.4.4). Under
  // aggregation, the aggregate keeps attracting Prefix_B traffic to A1/A2,
  // whose lost specifics expose the discard route: a black hole the upper
  // layers cannot see, because the aggregate announcement never changed.
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  topo::apply_figure3_failures(topology);
  const BgpSimulator sim(topology);
  const rcdc::SimulatorFibSource plain(sim);

  const rcdc::GlobalChecker plain_checker(metadata, plain);
  const auto without = plain_checker.check_all_pairs();
  EXPECT_EQ(without.pairs_reachable, without.pairs_checked);
  EXPECT_EQ(without.pairs_with_loops, 0u);

  const rcdc::AggregatingFibSource aggregated(plain, metadata);
  const rcdc::GlobalChecker aggregated_checker(metadata, aggregated);
  const auto with = aggregated_checker.check_all_pairs();
  EXPECT_LT(with.pairs_reachable, with.pairs_checked);
}

TEST(Aggregation, LocalContractsStillCatchTheFailure) {
  // Even under aggregation, the leaf that lost its specific route violates
  // its contract — RCDC's local checks flag the latent hazard either way.
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  topo::apply_figure3_failures(topology);
  const BgpSimulator sim(topology);
  const rcdc::SimulatorFibSource plain(sim);
  const rcdc::AggregatingFibSource aggregated(plain, metadata);
  const rcdc::DatacenterValidator validator(
      metadata, aggregated, rcdc::make_trie_verifier_factory());
  EXPECT_FALSE(validator.run(2).violations.empty());
}

}  // namespace
}  // namespace dcv::routing
