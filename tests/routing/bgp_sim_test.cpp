#include "routing/bgp_sim.hpp"

#include <gtest/gtest.h>

#include "topology/clos_builder.hpp"
#include "topology/metadata.hpp"

namespace dcv::routing {
namespace {

using topo::DeviceId;
using topo::DeviceRole;

std::vector<DeviceId> ids(const topo::Topology& t,
                          std::initializer_list<const char*> names) {
  std::vector<DeviceId> out;
  for (const char* name : names) out.push_back(*t.find_device(name));
  std::sort(out.begin(), out.end());
  return out;
}

class Figure3Bgp : public testing::Test {
 protected:
  Figure3Bgp() : topology_(topo::build_figure3()) {}

  topo::Topology topology_;
};

TEST_F(Figure3Bgp, ConvergesQuickly) {
  const BgpSimulator sim(topology_);
  EXPECT_LE(sim.rounds(), 12);
}

TEST_F(Figure3Bgp, TorDefaultRouteUsesAllLeaves) {
  const BgpSimulator sim(topology_);
  const auto fib = sim.fib(*topology_.find_device("ToR1"));
  const Rule* def = fib.default_route();
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->next_hops, ids(topology_, {"A1", "A2", "A3", "A4"}));
}

TEST_F(Figure3Bgp, TorSpecificRoutesUseAllLeaves) {
  const BgpSimulator sim(topology_);
  const auto fib = sim.fib(*topology_.find_device("ToR1"));
  // Prefix_B (10.0.1.0/24, hosted at ToR2) through all four leaves.
  const Rule* r = fib.find(net::Prefix::parse("10.0.1.0/24"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->next_hops, ids(topology_, {"A1", "A2", "A3", "A4"}));
  // Prefix_C (cluster B) too: same ECMP set at the ToR.
  const Rule* rc = fib.find(net::Prefix::parse("10.0.2.0/24"));
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(rc->next_hops, ids(topology_, {"A1", "A2", "A3", "A4"}));
}

TEST_F(Figure3Bgp, OwnPrefixIsConnected) {
  const BgpSimulator sim(topology_);
  const auto fib = sim.fib(*topology_.find_device("ToR1"));
  const Rule* own = fib.find(net::Prefix::parse("10.0.0.0/24"));
  ASSERT_NE(own, nullptr);
  EXPECT_TRUE(own->connected);
}

TEST_F(Figure3Bgp, LeafRoutesMatchFigure4) {
  const BgpSimulator sim(topology_);
  // A1 contracts table of Figure 4: default {D1}, Prefix_A {ToR1},
  // Prefix_B {ToR2}, Prefix_C {D1}, Prefix_D {D1}.
  const auto fib = sim.fib(*topology_.find_device("A1"));
  EXPECT_EQ(fib.default_route()->next_hops, ids(topology_, {"D1"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.0.0/24"))->next_hops,
            ids(topology_, {"ToR1"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.1.0/24"))->next_hops,
            ids(topology_, {"ToR2"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.2.0/24"))->next_hops,
            ids(topology_, {"D1"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.3.0/24"))->next_hops,
            ids(topology_, {"D1"}));
}

TEST_F(Figure3Bgp, SpineRoutesMatchFigure4) {
  const BgpSimulator sim(topology_);
  // D1 contracts table of Figure 4: default {R1, R3}, Prefix_A/B {A1},
  // Prefix_C/D {B1}.
  const auto fib = sim.fib(*topology_.find_device("D1"));
  EXPECT_EQ(fib.default_route()->next_hops, ids(topology_, {"R1", "R3"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.0.0/24"))->next_hops,
            ids(topology_, {"A1"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.1.0/24"))->next_hops,
            ids(topology_, {"A1"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.2.0/24"))->next_hops,
            ids(topology_, {"B1"}));
  EXPECT_EQ(fib.find(net::Prefix::parse("10.0.3.0/24"))->next_hops,
            ids(topology_, {"B1"}));
}

TEST_F(Figure3Bgp, RegionalSpineLearnsSpecificRoutes) {
  const BgpSimulator sim(topology_);
  const auto fib = sim.fib(*topology_.find_device("R1"));
  const Rule* r = fib.find(net::Prefix::parse("10.0.0.0/24"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->next_hops, ids(topology_, {"D1", "D3"}));
  // The default route is locally originated at regionals.
  ASSERT_NE(fib.default_route(), nullptr);
  EXPECT_TRUE(fib.default_route()->connected);
}

TEST_F(Figure3Bgp, Figure3FailuresShrinkEcmpSets) {
  topo::apply_figure3_failures(topology_);
  const BgpSimulator sim(topology_);

  // ToR1's default route degrades to {A1, A2} (the paper's default
  // contract failure).
  const auto tor1 = sim.fib(*topology_.find_device("ToR1"));
  EXPECT_EQ(tor1.default_route()->next_hops, ids(topology_, {"A1", "A2"}));
  // ToR1 loses the specific route for Prefix_B entirely: ToR2 only
  // announces via A3/A4, which ToR1 cannot hear (shared leaf ASN blocks the
  // spine detour).
  EXPECT_EQ(tor1.find(net::Prefix::parse("10.0.1.0/24")), nullptr);

  // A1 (lost its ToR2 link) reaches Prefix_B no more: the D1 detour path
  // carries A-leaf ASN... actually A1 hears Prefix_B via D1 from R-level
  // relays being blocked; assert the paper's contract failure: no specific
  // route or wrong next hops.
  const auto a1 = sim.fib(*topology_.find_device("A1"));
  const Rule* a1_b = a1.find(net::Prefix::parse("10.0.1.0/24"));
  EXPECT_TRUE(a1_b == nullptr || a1_b->next_hops != ids(topology_, {"ToR2"}));

  // D1 no longer has Prefix_B via A1.
  const auto d1 = sim.fib(*topology_.find_device("D1"));
  EXPECT_EQ(d1.find(net::Prefix::parse("10.0.1.0/24")), nullptr);

  // The R devices still have Prefix_B (via D3/D4) — the longer path of
  // §2.4.4 exists.
  const auto r1 = sim.fib(*topology_.find_device("R1"));
  const Rule* r1_b = r1.find(net::Prefix::parse("10.0.1.0/24"));
  ASSERT_NE(r1_b, nullptr);
  EXPECT_EQ(r1_b->next_hops, ids(topology_, {"D3"}));
}

TEST_F(Figure3Bgp, RibFibInconsistencyFault) {
  topo::FaultInjector faults(topology_);
  const auto tor1 = *topology_.find_device("ToR1");
  faults.device_fault(tor1, topo::DeviceFaultKind::kRibFibInconsistency);
  const BgpSimulator sim(topology_, &faults);
  // The RIB still has 4 next hops; the FIB only 1 (§2.6.2 Software Bug 1).
  const Rib& rib = sim.rib(tor1);
  EXPECT_EQ(rib.next_hops(rib.at(net::Prefix::default_route())).size(), 4u);
  EXPECT_EQ(sim.fib(tor1).default_route()->next_hops.size(), 1u);
  // Specific routes are unaffected.
  EXPECT_EQ(
      sim.fib(tor1).find(net::Prefix::parse("10.0.1.0/24"))->next_hops.size(),
      4u);
}

TEST_F(Figure3Bgp, EcmpSingleNextHopFault) {
  topo::FaultInjector faults(topology_);
  const auto tor1 = *topology_.find_device("ToR1");
  faults.device_fault(tor1, topo::DeviceFaultKind::kEcmpSingleNextHop);
  const BgpSimulator sim(topology_, &faults);
  const auto fib = sim.fib(tor1);
  for (const Rule& rule : fib.rules()) {
    EXPECT_LE(rule.next_hops.size(), 1u) << rule.to_string();
  }
}

TEST_F(Figure3Bgp, RejectDefaultRouteFault) {
  topo::FaultInjector faults(topology_);
  const auto a1 = *topology_.find_device("A1");
  faults.device_fault(a1, topo::DeviceFaultKind::kRejectDefaultRoute);
  const BgpSimulator sim(topology_, &faults);
  EXPECT_EQ(sim.fib(a1).default_route(), nullptr);
  // Downstream, ToR1 still gets a default from the other leaves only.
  const auto tor1 = sim.fib(*topology_.find_device("ToR1"));
  EXPECT_EQ(tor1.default_route()->next_hops,
            ids(topology_, {"A2", "A3", "A4"}));
}

TEST_F(Figure3Bgp, Layer2BugIsolatesDevice) {
  topo::FaultInjector faults(topology_);
  const auto a1 = *topology_.find_device("A1");
  faults.device_fault(a1, topo::DeviceFaultKind::kLayer2InterfaceBug);
  const BgpSimulator sim(topology_, &faults);
  // A1 learns nothing (no sessions).
  EXPECT_TRUE(sim.fib(a1).empty());
}

TEST(BgpRegion, CrossDatacenterRoutesRequireAsnStripping) {
  const topo::ClosParams p{.clusters = 2,
                           .tors_per_cluster = 2,
                           .leaves_per_cluster = 2,
                           .spines_per_plane = 1,
                           .regional_spines = 2,
                           .regional_links_per_spine = 2};
  const topo::Topology t = topo::build_region(p, 2);
  const BgpSimulator sim(t);
  // A DC1 ToR reaches a DC0 prefix (via default-free specific routes),
  // which is only possible because regionals strip the (reused) private
  // ASNs from relayed paths.
  const auto dc1_tor = *t.find_device("DC1-T0-2-0");
  const auto dc0_prefix = t.device(*t.find_device("DC0-T0-0-0"))
                              .hosted_prefixes.front();
  const auto dc1_tor_fib = sim.fib(dc1_tor);
  const Rule* r = dc1_tor_fib.find(dc0_prefix);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->next_hops.size(), 2u);  // both its leaves

  // The relayed AS-path at a DC1 spine contains no private ASNs beyond its
  // own contribution.
  const auto dc1_spine = *t.find_device("DC1-T2-0-0");
  const auto path = sim.rib(dc1_spine).at(dc0_prefix).as_path();
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_FALSE(BgpSimulator::is_private_asn(path[i])) << path[i];
  }
}

TEST(BgpClos, HealthyWideClosHasFullEcmp) {
  const topo::ClosParams p{.clusters = 3,
                           .tors_per_cluster = 3,
                           .leaves_per_cluster = 4,
                           .spines_per_plane = 2,
                           .regional_spines = 4};
  const topo::Topology t = topo::build_clos(p);
  const topo::MetadataService metadata(t);
  const BgpSimulator sim(t);
  // Every ToR has, for every remote prefix, all of its leaves as next hops.
  for (const DeviceId tor : t.devices_with_role(DeviceRole::kTor)) {
    const auto fib = sim.fib(tor);
    for (const auto& fact : metadata.all_prefixes()) {
      if (fact.tor == tor) continue;
      const Rule* r = fib.find(fact.prefix);
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(r->next_hops.size(), 4u);
    }
  }
  // Every leaf reaches remote clusters via its plane's spines (2 of them).
  for (const DeviceId leaf : t.devices_with_role(DeviceRole::kLeaf)) {
    const auto fib = sim.fib(leaf);
    for (const auto& fact : metadata.all_prefixes()) {
      if (fact.cluster == t.device(leaf).cluster) continue;
      const Rule* r = fib.find(fact.prefix);
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(r->next_hops.size(), 2u);
    }
  }
}

}  // namespace
}  // namespace dcv::routing
