#include "routing/fib_synthesizer.hpp"

#include <gtest/gtest.h>

#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/metadata.hpp"

namespace dcv::routing {
namespace {

/// The load-bearing equivalence: on a fault-free structured datacenter the
/// closed-form synthesis and full EBGP propagation converge to identical
/// FIBs on every device. This is what licenses using the synthesizer for
/// scale benchmarks, and it doubles as an end-to-end check of the
/// propagation rules.
void expect_equivalent(const topo::Topology& topology) {
  const topo::MetadataService metadata(topology);
  const FibSynthesizer synthesizer(metadata);
  const BgpSimulator simulator(topology);
  for (const topo::Device& device : topology.devices()) {
    const ForwardingTable simulated = simulator.fib(device.id);
    const ForwardingTable synthesized = synthesizer.fib(device.id);
    ASSERT_EQ(simulated.size(), synthesized.size()) << device.name;
    for (std::size_t i = 0; i < simulated.size(); ++i) {
      EXPECT_EQ(simulated.rules()[i], synthesized.rules()[i])
          << device.name << " rule " << i << ": simulated "
          << simulated.rules()[i].to_string() << " vs synthesized "
          << synthesized.rules()[i].to_string();
    }
  }
}

TEST(FibSynthesizer, MatchesBgpOnFigure3) {
  expect_equivalent(topo::build_figure3());
}

TEST(FibSynthesizer, MatchesBgpOnDefaultClos) {
  expect_equivalent(topo::build_clos(topo::ClosParams{}));
}

TEST(FibSynthesizer, MatchesBgpOnWideClos) {
  expect_equivalent(topo::build_clos(topo::ClosParams{
      .clusters = 4,
      .tors_per_cluster = 3,
      .leaves_per_cluster = 4,
      .spines_per_plane = 2,
      .regional_spines = 4,
      .regional_links_per_spine = 2,
      .prefixes_per_tor = 2}));
}

TEST(FibSynthesizer, MatchesBgpOnAsymmetricFanouts) {
  expect_equivalent(topo::build_clos(topo::ClosParams{
      .clusters = 5,
      .tors_per_cluster = 2,
      .leaves_per_cluster = 3,
      .spines_per_plane = 3,
      .regional_spines = 6,
      .regional_links_per_spine = 3}));
}

TEST(FibSynthesizer, MatchesBgpOnTwoDatacenterRegion) {
  expect_equivalent(topo::build_region(
      topo::ClosParams{.clusters = 2,
                       .tors_per_cluster = 2,
                       .leaves_per_cluster = 2,
                       .spines_per_plane = 1,
                       .regional_spines = 2,
                       .regional_links_per_spine = 2},
      /*datacenters=*/2));
}

TEST(FibSynthesizer, TorFibShape) {
  const auto topology = topo::build_clos(topo::ClosParams{});
  const topo::MetadataService metadata(topology);
  const FibSynthesizer synthesizer(metadata);
  const auto tor = topology.devices_with_role(topo::DeviceRole::kTor)[0];
  const auto fib = synthesizer.fib(tor);
  // 1 default + 1 connected + (prefixes - own) remote rules.
  EXPECT_EQ(fib.size(), 1 + metadata.all_prefixes().size());
  ASSERT_NE(fib.default_route(), nullptr);
  EXPECT_EQ(fib.default_route()->next_hops.size(), 4u);
}

}  // namespace
}  // namespace dcv::routing
