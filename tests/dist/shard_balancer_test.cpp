#include "dist/shard_balancer.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace dcv::dist {
namespace {

using topo::DeviceId;

TEST(ShardBalancer, UniformBeforeAnyFeedback) {
  const ShardBalancer balancer;
  EXPECT_FALSE(balancer.has_observations());
  // Every device prices the same, so cost-balanced carving degrades to
  // count-balanced carving on a cold coordinator.
  EXPECT_DOUBLE_EQ(balancer.cost(0), 1.0);
  EXPECT_DOUBLE_EQ(balancer.cost(12345), 1.0);
}

TEST(ShardBalancer, SkewedProfileSeparatesSlowFromFast) {
  ShardBalancer balancer;
  const std::vector<DeviceId> slow{0, 1, 2};
  const std::vector<DeviceId> fast{3, 4, 5};
  // Synthetic skew: the slow shard reports 10x the wall time, repeatedly.
  for (int cycle = 0; cycle < 6; ++cycle) {
    balancer.record(slow, 30'000'000);  // 10ms/device
    balancer.record(fast, 3'000'000);   // 1ms/device
  }
  EXPECT_TRUE(balancer.has_observations());
  EXPECT_EQ(balancer.devices_tracked(), 6u);
  EXPECT_GT(balancer.cost(0), 4.0 * balancer.cost(3));
  // Devices sharing a shard share its attribution.
  EXPECT_DOUBLE_EQ(balancer.cost(0), balancer.cost(2));
  EXPECT_DOUBLE_EQ(balancer.cost(3), balancer.cost(5));
}

TEST(ShardBalancer, UnobservedDevicesPriceAtTheMean) {
  ShardBalancer balancer;
  balancer.record(std::vector<DeviceId>{0}, 8'000'000);
  balancer.record(std::vector<DeviceId>{1}, 2'000'000);
  // Device 99 was never in a shard: it gets the mean of the estimates, so
  // newcomers neither starve a shard nor dominate it.
  EXPECT_DOUBLE_EQ(balancer.cost(99), 5'000'000.0);
}

TEST(ShardBalancer, EwmaTracksShiftingTimings) {
  ShardBalancer balancer(/*alpha=*/0.5);
  const std::vector<DeviceId> devices{7};
  balancer.record(devices, 10'000'000);
  const double initial = balancer.cost(7);
  // The device got faster (say its contract set shrank); the estimate must
  // follow the new timings instead of averaging over all history.
  for (int cycle = 0; cycle < 10; ++cycle) {
    balancer.record(devices, 1'000'000);
  }
  EXPECT_LT(balancer.cost(7), initial / 5.0);
  EXPECT_GT(balancer.cost(7), 0.0);
}

TEST(ShardBalancer, IgnoresEmptyShardsAndZeroTimings) {
  ShardBalancer balancer;
  balancer.record({}, 5'000'000);
  // Failed shards report elapsed 0; they carry no cost signal.
  balancer.record(std::vector<DeviceId>{1, 2}, 0);
  EXPECT_FALSE(balancer.has_observations());
  EXPECT_DOUBLE_EQ(balancer.cost(1), 1.0);
}

}  // namespace
}  // namespace dcv::dist
