// End-to-end distribution tests over real TCP on loopback: a coordinator
// thread and WorkerSession threads speak the actual wire protocol through
// real sockets, a scripted "crasher" thread dies mid-shard to prove
// same-cycle recovery, and WorkerFleet's fork/exec/reap path is exercised
// with real child processes. Everything binds ephemeral ports; nothing
// sleeps longer than the protocol needs.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/coordinator.hpp"
#include "dist/process.hpp"
#include "dist/transport.hpp"
#include "dist/worker.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_merge.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::dist {
namespace {

using namespace std::chrono_literals;

class E2eProcessTest : public testing::Test {
 protected:
  E2eProcessTest()
      : topology_(topo::build_clos(topo::ClosParams{.clusters = 2,
                                                    .tors_per_cluster = 2,
                                                    .leaves_per_cluster = 2,
                                                    .spines_per_plane = 1,
                                                    .regional_spines = 2})),
        metadata_(topology_),
        simulator_(topology_),
        fibs_(simulator_) {}

  /// Starts a real worker thread: connect, serve until shutdown/loss.
  std::thread start_worker(std::uint16_t port, const std::string& id,
                           std::atomic<int>* shutdowns) {
    return std::thread([this, port, id, shutdowns] {
      WorkerSessionConfig config;
      config.id = id;
      config.topology_epoch = topology_.epoch();
      WorkerSession session(fibs_, rcdc::make_trie_verifier_factory(), config);
      auto transport = connect_tcp("127.0.0.1", port, 3000ms);
      ASSERT_NE(transport, nullptr) << id << " could not connect";
      if (session.run(*transport) == SessionEnd::kShutdown &&
          shutdowns != nullptr) {
        shutdowns->fetch_add(1);
      }
    });
  }

  /// Accepts `count` connections into the coordinator.
  void accept_workers(Coordinator& coordinator, TcpListener& listener,
                      std::size_t count) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (coordinator.live_workers() < count &&
           std::chrono::steady_clock::now() < deadline) {
      if (auto transport = listener.accept(50ms)) {
        coordinator.add_worker(std::move(transport));
      }
      coordinator.pump(count, std::chrono::milliseconds(10));
    }
    ASSERT_EQ(coordinator.live_workers(), count);
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
  routing::BgpSimulator simulator_;
  rcdc::SimulatorFibSource fibs_;
};

TEST_F(E2eProcessTest, RealTcpCycleWithTwoWorkers) {
  TcpListener listener(0);
  CoordinatorConfig config;
  config.shards_per_worker = 2;
  Coordinator coordinator(metadata_, config);

  std::atomic<int> shutdowns{0};
  std::thread w0 = start_worker(listener.port(), "tcp-w0", &shutdowns);
  std::thread w1 = start_worker(listener.port(), "tcp-w1", &shutdowns);
  accept_workers(coordinator, listener, 2);

  const DistributedSummary summary = coordinator.run_cycle();
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  EXPECT_FALSE(summary.degraded());
  EXPECT_EQ(summary.merged.devices_checked, topology_.device_count());
  EXPECT_TRUE(summary.merged.violations.empty());
  EXPECT_EQ(coordinator.fingerprints().size(), topology_.device_count());

  coordinator.shutdown_workers();
  w0.join();
  w1.join();
  EXPECT_EQ(shutdowns.load(), 2);
}

TEST_F(E2eProcessTest, ThreeWorkerCycleMergesOneCausalTimeline) {
  TcpListener listener(0);
  obs::TraceRing trace(8192);
  CoordinatorConfig config;
  config.shards_per_worker = 2;
  config.trace = &trace;
  Coordinator coordinator(metadata_, config);

  std::atomic<int> shutdowns{0};
  std::thread w0 = start_worker(listener.port(), "trace-w0", &shutdowns);
  std::thread w1 = start_worker(listener.port(), "trace-w1", &shutdowns);
  std::thread w2 = start_worker(listener.port(), "trace-w2", &shutdowns);
  accept_workers(coordinator, listener, 3);

  const DistributedSummary summary = coordinator.run_cycle();
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);

  coordinator.shutdown_workers();
  w0.join();
  w1.join();
  w2.join();

  // The acceptance invariant: one merged timeline with a named track per
  // process, where every worker span tree hangs under the assign span of
  // the shard that caused it, and — after offset rewrite + causal clamp —
  // no worker span starts before its assign span.
  const obs::MergedTrace merged = coordinator.merger().snapshot();
  ASSERT_GE(merged.tracks.size(), 3u);
  EXPECT_EQ(merged.tracks[0].process, "coordinator");
  EXPECT_EQ(merged.truncated, 0u);

  std::map<std::uint64_t, const obs::TraceEvent*> assigns;
  for (const obs::TraceEvent& event : merged.tracks[0].events) {
    if (event.name == "assign") assigns[event.id] = &event;
  }
  ASSERT_FALSE(assigns.empty());

  std::size_t fetch_or_validate = 0;
  for (std::size_t t = 1; t < merged.tracks.size(); ++t) {
    const obs::MergedTrack& track = merged.tracks[t];
    EXPECT_EQ(track.process.rfind("trace-w", 0), 0u) << track.process;
    ASSERT_FALSE(track.events.empty()) << track.process;
    std::map<std::uint64_t, const obs::TraceEvent*> by_id;
    for (const obs::TraceEvent& event : track.events) {
      by_id[event.id] = &event;
    }
    for (const obs::TraceEvent& event : track.events) {
      if (event.name == "shard") {
        const auto assign = assigns.find(event.parent);
        ASSERT_NE(assign, assigns.end())
            << track.process << ": shard span not under an assign span";
        EXPECT_GE(event.start.count(), assign->second->start.count())
            << track.process << ": shard span precedes its assign span";
      } else {
        ++fetch_or_validate;
        const auto parent = by_id.find(event.parent);
        ASSERT_NE(parent, by_id.end())
            << track.process << ": " << event.name << " parent unresolvable";
        EXPECT_EQ(parent->second->name, "shard");
        EXPECT_GE(event.start.count(), parent->second->start.count());
      }
    }
  }
  // Real shards fetch and validate, so the merged timeline carries leaf
  // work spans from multiple workers, not just shard roots.
  EXPECT_GT(fetch_or_validate, 0u);
}

TEST_F(E2eProcessTest, PeerCrashMidShardRecoversSameCycle) {
  TcpListener listener(0);
  CoordinatorConfig config;
  config.shards_per_worker = 2;
  config.lease = 2s;
  Coordinator coordinator(metadata_, config);

  // A "crasher" speaking the raw protocol: hello, wait for the first
  // assignment, then die (socket closes). The real worker next to it must
  // absorb the reassigned shard within the same cycle.
  std::thread crasher([&listener, this] {
    auto transport = connect_tcp("127.0.0.1", listener.port(), 3000ms);
    ASSERT_NE(transport, nullptr);
    HelloMsg hello;
    hello.worker_id = "crasher";
    hello.topology_epoch = topology_.epoch();
    ASSERT_TRUE(transport->send(encode(hello)));
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (const auto frame = transport->poll()) {
        if (frame->type == MsgType::kAssign) return;  // dies holding a shard
      }
      if (transport->closed()) return;
      std::this_thread::sleep_for(1ms);
    }
  });
  std::atomic<int> shutdowns{0};
  std::thread survivor = start_worker(listener.port(), "survivor", &shutdowns);
  accept_workers(coordinator, listener, 2);

  const DistributedSummary summary = coordinator.run_cycle();
  crasher.join();
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0) << "shard was not recovered";
  EXPECT_FALSE(summary.degraded());
  EXPECT_EQ(summary.workers_lost, 1u);
  EXPECT_GE(summary.reassignments, 1u);
  std::size_t recovered = 0;
  for (const ShardOutcome& shard : summary.shards) {
    if (shard.status == ShardStatus::kRecovered) {
      ++recovered;
      EXPECT_TRUE(shard.degraded_confidence);
    }
  }
  EXPECT_GE(recovered, 1u);

  coordinator.shutdown_workers();
  survivor.join();
  EXPECT_EQ(shutdowns.load(), 1);
}

TEST_F(E2eProcessTest, WorkerFleetClassifiesExits) {
  install_fleet_signal_handlers();
  obs::MetricsRegistry registry;
  WorkerFleet fleet(&registry);

  const pid_t clean = fleet.spawn({"/bin/sh", "-c", "exit 0"});
  const pid_t error = fleet.spawn({"/bin/sh", "-c", "exit 3"});
  const pid_t sleeper = fleet.spawn({"/bin/sh", "-c", "sleep 30"});
  ASSERT_GT(clean, 0);
  ASSERT_GT(error, 0);
  ASSERT_GT(sleeper, 0);
  EXPECT_EQ(fleet.alive(), 3u);

  ASSERT_EQ(::kill(sleeper, SIGKILL), 0);

  std::vector<WorkerExit> exits;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (exits.size() < 3 && std::chrono::steady_clock::now() < deadline) {
    for (WorkerExit& exit : fleet.reap()) exits.push_back(std::move(exit));
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(exits.size(), 3u);
  EXPECT_EQ(fleet.alive(), 0u);  // reaped: no zombies left behind

  for (const WorkerExit& exit : exits) {
    if (exit.pid == clean) {
      EXPECT_EQ(exit.reason, "exit0");
      EXPECT_EQ(exit.code, 0);
    } else if (exit.pid == error) {
      EXPECT_EQ(exit.reason, "exit");
      EXPECT_EQ(exit.code, 3);
    } else if (exit.pid == sleeper) {
      EXPECT_EQ(exit.reason, "signal");
      EXPECT_EQ(exit.code, SIGKILL);
    } else {
      ADD_FAILURE() << "unknown pid " << exit.pid;
    }
  }
  EXPECT_EQ(registry
                .counter("dcv_dist_worker_exits_total", "",
                         {{"reason", "exit0"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("dcv_dist_worker_exits_total", "",
                         {{"reason", "exit"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("dcv_dist_worker_exits_total", "",
                         {{"reason", "signal"}})
                .value(),
            1u);
}

TEST(ReconnectBackoffTest, ScheduleIsExponentialAndCapped) {
  ReconnectPolicy policy;
  policy.initial_backoff = 100ms;
  policy.multiplier = 2.0;
  policy.max_backoff = 1s;
  EXPECT_EQ(reconnect_backoff(policy, 1), 0ns);  // first try is immediate
  EXPECT_EQ(reconnect_backoff(policy, 2), 100ms);
  EXPECT_EQ(reconnect_backoff(policy, 3), 200ms);
  EXPECT_EQ(reconnect_backoff(policy, 4), 400ms);
  EXPECT_EQ(reconnect_backoff(policy, 5), 800ms);
  EXPECT_EQ(reconnect_backoff(policy, 6), 1s);  // capped
  EXPECT_EQ(reconnect_backoff(policy, 20), 1s);
}

}  // namespace
}  // namespace dcv::dist
