// Wire-format tests: frame round-trips, streaming decode, every framing
// error, message codec round-trips, hostile-input rejection, the checked-in
// malformed-frame corpus, and a seeded mutation fuzz pass. The decode path
// must never crash, never read out of bounds (ASan/UBSan enforce this in
// CI), and never accept a frame whose checksum or structure lies.
#include "dist/messages.hpp"
#include "dist/wire.hpp"
#include "obs/span_serde.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace dcv::dist {
namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Runs every payload decoder that could apply to the frame; the point is
/// that none of them crashes or over-reads, whatever the bytes say.
void exercise_payload_decoders(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHello:
      (void)decode_hello(frame.payload);
      break;
    case MsgType::kWelcome:
      (void)decode_welcome(frame.payload);
      break;
    case MsgType::kAssign:
      (void)decode_assign(frame.payload);
      break;
    case MsgType::kHeartbeat:
      (void)decode_heartbeat(frame.payload);
      break;
    case MsgType::kResult: {
      // A decodable result may still carry a hostile trace blob; the span
      // deserializer faces the same adversary as the message codecs.
      const auto result = decode_result(frame.payload);
      if (result.has_value() && !result->trace_blob.empty()) {
        obs::DecodedTrace trace;
        (void)obs::deserialize_trace(result->trace_blob, trace);
      }
      break;
    }
    case MsgType::kShutdown:
      break;
  }
}

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The standard CRC-32 check string.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(WireFrameTest, RoundTripsEveryType) {
  for (const MsgType type :
       {MsgType::kHello, MsgType::kWelcome, MsgType::kAssign,
        MsgType::kHeartbeat, MsgType::kResult, MsgType::kShutdown}) {
    Frame frame{type, {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42}};
    const auto encoded = encode_frame(frame);
    EXPECT_EQ(encoded.size(), frame.payload.size() + kFrameOverhead);
    const DecodeResult result = try_decode_frame(encoded);
    ASSERT_TRUE(result.ok()) << to_string(type);
    EXPECT_EQ(result.frame->type, type);
    EXPECT_EQ(result.frame->payload, frame.payload);
    EXPECT_EQ(result.consumed, encoded.size());
  }
}

TEST(WireFrameTest, EmptyPayloadRoundTrips) {
  const auto encoded = encode_frame(Frame{MsgType::kShutdown, {}});
  const DecodeResult result = try_decode_frame(encoded);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.frame->payload.empty());
}

TEST(WireFrameTest, StreamingDecodeSplitsAndConcatenations) {
  const auto first = encode_frame(Frame{MsgType::kHello, {1, 2, 3}});
  const auto second = encode_frame(Frame{MsgType::kHeartbeat, {9}});
  std::vector<std::uint8_t> stream = first;
  stream.insert(stream.end(), second.begin(), second.end());

  // Every prefix shorter than the first frame wants more data.
  for (std::size_t cut = 0; cut < first.size(); ++cut) {
    const DecodeResult partial =
        try_decode_frame(std::span(stream.data(), cut));
    EXPECT_FALSE(partial.ok());
    EXPECT_EQ(partial.error, DecodeError::kNeedMoreData);
    EXPECT_EQ(partial.consumed, 0u);
  }
  // The full buffer yields frame one, then frame two from the remainder.
  const DecodeResult one = try_decode_frame(stream);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.frame->type, MsgType::kHello);
  const DecodeResult two = try_decode_frame(
      std::span(stream.data() + one.consumed, stream.size() - one.consumed));
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two.frame->type, MsgType::kHeartbeat);
}

TEST(WireFrameTest, RejectsCorruptHeadersAndChecksums) {
  const auto good = encode_frame(Frame{MsgType::kHello, {1, 2, 3, 4}});

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(try_decode_frame(bad_magic).error, DecodeError::kBadMagic);

  auto bad_version = good;
  bad_version[4] ^= 0xFF;
  EXPECT_EQ(try_decode_frame(bad_version).error, DecodeError::kBadVersion);

  auto bad_payload = good;
  bad_payload[12] ^= 0x01;
  EXPECT_EQ(try_decode_frame(bad_payload).error, DecodeError::kBadChecksum);

  auto bad_crc = good;
  bad_crc.back() ^= 0x01;
  EXPECT_EQ(try_decode_frame(bad_crc).error, DecodeError::kBadChecksum);

  // A fatal error consumes the whole buffer: the stream cannot resync.
  EXPECT_EQ(try_decode_frame(bad_magic).consumed, bad_magic.size());
}

TEST(WireFrameTest, RejectsOversizedDeclaredLength) {
  std::vector<std::uint8_t> header(kFrameOverhead, 0);
  const std::uint32_t magic = kWireMagic;
  const std::uint16_t version = kWireVersion;
  const std::uint16_t type = 1;
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(header.data(), &magic, 4);
  std::memcpy(header.data() + 4, &version, 2);
  std::memcpy(header.data() + 6, &type, 2);
  std::memcpy(header.data() + 8, &huge, 4);
  EXPECT_EQ(try_decode_frame(header).error, DecodeError::kOversized);
}

TEST(WireFrameTest, RejectsUnknownTypeOnlyAfterChecksum) {
  Frame frame{MsgType::kHello, {7, 7}};
  auto encoded = encode_frame(frame);
  // Patch type to 99 and recompute the CRC so only the type is wrong.
  const std::uint16_t unknown = 99;
  std::memcpy(encoded.data() + 6, &unknown, 2);
  const std::uint32_t crc = crc32(
      std::span(encoded).subspan(4, encoded.size() - 8));
  std::memcpy(encoded.data() + encoded.size() - 4, &crc, 4);
  EXPECT_EQ(try_decode_frame(encoded).error, DecodeError::kUnknownType);
}

using rcdc::Contract;

Contract sample_contract() {
  Contract contract;
  contract.kind = rcdc::ContractKind::kSpecific;
  contract.prefix = net::Prefix(net::Ipv4Address(0x0A010200u), 24);
  contract.expected_next_hops = {4, 9, 17};
  contract.mode = rcdc::MatchMode::kSubsetAtLeast;
  contract.min_next_hops = 2;
  contract.allow_default_route = true;
  return contract;
}

TEST(MessageCodecTest, HelloRoundTrips) {
  HelloMsg msg;
  msg.worker_id = "worker-7";
  msg.topology_epoch = 42;
  const Frame frame = encode(msg);
  EXPECT_EQ(frame.type, MsgType::kHello);
  const auto decoded = decode_hello(frame.payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->worker_id, "worker-7");
  EXPECT_EQ(decoded->protocol, kProtocolVersion);
  EXPECT_EQ(decoded->topology_epoch, 42u);
}

TEST(MessageCodecTest, WelcomeRoundTrips) {
  WelcomeMsg msg;
  msg.heartbeat_interval_ns = 123456789;
  msg.lease_ns = 5000000000;
  const auto decoded = decode_welcome(encode(msg).payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->heartbeat_interval_ns, msg.heartbeat_interval_ns);
  EXPECT_EQ(decoded->lease_ns, msg.lease_ns);
}

TEST(MessageCodecTest, AssignRoundTripsDevicesAndContracts) {
  AssignMsg msg;
  msg.shard_id = 3;
  msg.attempt = 2;
  msg.plan_epoch = 7;
  msg.devices.push_back({11, {sample_contract()}});
  Contract defaulted;  // default contract, empty hops
  msg.devices.push_back({12, {defaulted, sample_contract()}});
  msg.devices.push_back({13, {}});  // contract-free device still travels

  const auto decoded = decode_assign(encode(msg).payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, 3u);
  EXPECT_EQ(decoded->attempt, 2u);
  EXPECT_EQ(decoded->plan_epoch, 7u);
  ASSERT_EQ(decoded->devices.size(), 3u);
  EXPECT_EQ(decoded->devices[0].device, 11u);
  ASSERT_EQ(decoded->devices[0].contracts.size(), 1u);
  const Contract& c = decoded->devices[0].contracts[0];
  EXPECT_EQ(c.kind, rcdc::ContractKind::kSpecific);
  EXPECT_EQ(c.prefix.to_string(), "10.1.2.0/24");
  EXPECT_EQ(c.expected_next_hops, (std::vector<topo::DeviceId>{4, 9, 17}));
  EXPECT_EQ(c.mode, rcdc::MatchMode::kSubsetAtLeast);
  EXPECT_EQ(c.min_next_hops, 2u);
  EXPECT_TRUE(c.allow_default_route);
  EXPECT_EQ(decoded->devices[1].contracts.size(), 2u);
  EXPECT_TRUE(decoded->devices[2].contracts.empty());
}

TEST(MessageCodecTest, ResultRoundTripsViolationsFingerprintsAndBlob) {
  ResultMsg msg;
  msg.shard_id = 5;
  msg.attempt = 1;
  msg.devices_checked = 100;
  msg.contracts_checked = 900;
  msg.devices_failed = 3;
  msg.devices_stale = 2;
  msg.retries = 7;
  msg.breaker_opens = 1;
  msg.violations_degraded = 4;
  msg.elapsed_ns = 123456;
  rcdc::Violation violation;
  violation.device = 42;
  violation.contract = sample_contract();
  violation.kind = rcdc::ViolationKind::kUnreachableRange;
  violation.rule_prefix = net::Prefix(net::Ipv4Address(0x0A000000u), 8);
  violation.actual_next_hops = {5};
  msg.violations.push_back(violation);
  msg.fingerprints = {{1, 0x1111}, {2, 0x2222}};
  msg.registry_blob = {1, 2, 3, 4, 5};

  const auto decoded = decode_result(encode(msg).payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->devices_checked, 100u);
  EXPECT_EQ(decoded->contracts_checked, 900u);
  EXPECT_EQ(decoded->devices_failed, 3u);
  EXPECT_EQ(decoded->devices_stale, 2u);
  EXPECT_EQ(decoded->retries, 7u);
  EXPECT_EQ(decoded->breaker_opens, 1u);
  EXPECT_EQ(decoded->violations_degraded, 4u);
  EXPECT_EQ(decoded->elapsed_ns, 123456u);
  ASSERT_EQ(decoded->violations.size(), 1u);
  EXPECT_EQ(decoded->violations[0].device, 42u);
  EXPECT_EQ(decoded->violations[0].kind,
            rcdc::ViolationKind::kUnreachableRange);
  EXPECT_EQ(decoded->violations[0].actual_next_hops,
            (std::vector<topo::DeviceId>{5}));
  EXPECT_EQ(decoded->fingerprints, msg.fingerprints);
  EXPECT_EQ(decoded->registry_blob, msg.registry_blob);
}

TEST(MessageCodecTest, V2TraceContextFieldsRoundTrip) {
  // Hello/Welcome carry send timestamps for the clock-sync handshake.
  HelloMsg hello;
  hello.worker_id = "w";
  hello.send_ns = 111;
  EXPECT_EQ(decode_hello(encode(hello).payload)->send_ns, 111u);

  WelcomeMsg welcome;
  welcome.send_ns = 222;
  EXPECT_EQ(decode_welcome(encode(welcome).payload)->send_ns, 222u);

  // Assign propagates the trace context: cycle id + parent span.
  AssignMsg assign;
  assign.shard_id = 1;
  assign.plan_epoch = 1;
  assign.devices.push_back({7, {sample_contract()}});
  assign.cycle_id = 33;
  assign.parent_span = 0xABCDEF;
  assign.send_ns = 444;
  const auto decoded_assign = decode_assign(encode(assign).payload);
  ASSERT_TRUE(decoded_assign.has_value());
  EXPECT_EQ(decoded_assign->cycle_id, 33u);
  EXPECT_EQ(decoded_assign->parent_span, 0xABCDEFu);
  EXPECT_EQ(decoded_assign->send_ns, 444u);

  // Heartbeat echoes the coordinator's newest send for RTT sampling.
  HeartbeatMsg heartbeat;
  heartbeat.shard_id = 1;
  heartbeat.send_ns = 555;
  heartbeat.peer_tx_ns = 444;
  heartbeat.peer_rx_ns = 500;
  const auto decoded_hb = decode_heartbeat(encode(heartbeat).payload);
  ASSERT_TRUE(decoded_hb.has_value());
  EXPECT_EQ(decoded_hb->send_ns, 555u);
  EXPECT_EQ(decoded_hb->peer_tx_ns, 444u);
  EXPECT_EQ(decoded_hb->peer_rx_ns, 500u);
}

TEST(MessageCodecTest, ResultCarriesDecodableTraceBlob) {
  using std::chrono::nanoseconds;
  std::vector<obs::TraceEvent> events = {
      {"fetch", 2, 1, 9, 0, nanoseconds(100), nanoseconds(40)},
      {"shard", 1, 0, 9, 0, nanoseconds(50), nanoseconds(300)},
  };
  ResultMsg msg;
  msg.shard_id = 4;
  msg.trace_blob = obs::serialize_trace(events, nanoseconds(0), 2);
  msg.send_ns = 777;
  msg.peer_tx_ns = 700;
  msg.peer_rx_ns = 750;

  const auto decoded = decode_result(encode(msg).payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->send_ns, 777u);
  EXPECT_EQ(decoded->peer_tx_ns, 700u);
  EXPECT_EQ(decoded->peer_rx_ns, 750u);
  obs::DecodedTrace trace;
  ASSERT_TRUE(obs::deserialize_trace(decoded->trace_blob, trace));
  EXPECT_EQ(trace.dropped, 2u);
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].name, "fetch");
  EXPECT_EQ(trace.events[1].name, "shard");

  // A garbage blob still rides the frame fine — the *message* decodes, and
  // only the span layer rejects it.
  ResultMsg hostile;
  hostile.shard_id = 4;
  hostile.trace_blob = {0xFF, 0xFE, 0xFD, 0xFC, 0x01, 0x02};
  const auto decoded_hostile = decode_result(encode(hostile).payload);
  ASSERT_TRUE(decoded_hostile.has_value());
  EXPECT_FALSE(obs::deserialize_trace(decoded_hostile->trace_blob, trace));
}

TEST(MessageCodecTest, RejectsTruncationsOfEveryMessage) {
  const std::vector<Frame> frames = {
      encode(HelloMsg{"w", kProtocolVersion, 1}),
      encode(WelcomeMsg{100, 200}),
      encode(AssignMsg{1, 0, 1, {{7, {sample_contract()}}}}),
      encode(HeartbeatMsg{1, 0, 5}),
      [] {
        ResultMsg r;
        r.shard_id = 1;
        r.violations.resize(1);
        r.violations[0].contract = sample_contract();
        r.fingerprints = {{3, 9}};
        r.registry_blob = {1, 2};
        r.trace_blob = obs::serialize_trace(
            std::vector<obs::TraceEvent>{
                {"shard", 1, 0, 1, 0, std::chrono::nanoseconds(1),
                 std::chrono::nanoseconds(2)}},
            std::chrono::nanoseconds(0), 0);
        return encode(r);
      }(),
  };
  for (const Frame& frame : frames) {
    for (std::size_t cut = 0; cut < frame.payload.size(); ++cut) {
      const std::span<const std::uint8_t> truncated(frame.payload.data(), cut);
      Frame partial{frame.type, {truncated.begin(), truncated.end()}};
      exercise_payload_decoders(partial);  // must not crash
      switch (frame.type) {
        case MsgType::kHello:
          EXPECT_FALSE(decode_hello(truncated).has_value());
          break;
        case MsgType::kWelcome:
          EXPECT_FALSE(decode_welcome(truncated).has_value());
          break;
        case MsgType::kAssign:
          EXPECT_FALSE(decode_assign(truncated).has_value());
          break;
        case MsgType::kHeartbeat:
          EXPECT_FALSE(decode_heartbeat(truncated).has_value());
          break;
        case MsgType::kResult:
          EXPECT_FALSE(decode_result(truncated).has_value());
          break;
        case MsgType::kShutdown:
          break;
      }
    }
  }
}

TEST(MessageCodecTest, RejectsTrailingJunk) {
  Frame frame = encode(HeartbeatMsg{1, 2, 3});
  frame.payload.push_back(0xAA);
  EXPECT_FALSE(decode_heartbeat(frame.payload).has_value());
}

TEST(MessageCodecTest, RejectsOutOfRangeEnumsAndPrefixes) {
  // Contract kind 200 inside an assign.
  AssignMsg msg{0, 0, 1, {{7, {sample_contract()}}}};
  Frame frame = encode(msg);
  // The contract kind byte sits after shard(4) + attempt(4) + epoch(8) +
  // device count(4) + device id(4) + contract count(4) = 28 bytes.
  ASSERT_GT(frame.payload.size(), 28u);
  frame.payload[28] = 200;
  EXPECT_FALSE(decode_assign(frame.payload).has_value());
}

TEST(CorpusTest, EveryCheckedInFrameDecodesSafely) {
  const std::filesystem::path dir =
      std::filesystem::path(DCV_TEST_DATA_DIR) / "dist" / "corpus";
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t files = 0;
  std::size_t decoded_ok = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".bin") continue;
    ++files;
    const auto bytes = read_file(entry.path());
    const DecodeResult result = try_decode_frame(bytes);
    if (result.ok()) {
      ++decoded_ok;
      exercise_payload_decoders(*result.frame);
    }
    // Named expectations for the deliberately-broken files.
    const std::string name = entry.path().filename().string();
    if (name == "valid_hello.bin") {
      EXPECT_TRUE(result.ok()) << name;
      EXPECT_TRUE(decode_hello(result.frame->payload).has_value());
    } else if (name == "bad_magic.bin") {
      EXPECT_EQ(result.error, DecodeError::kBadMagic);
    } else if (name == "bad_version.bin") {
      EXPECT_EQ(result.error, DecodeError::kBadVersion);
    } else if (name == "bad_crc.bin") {
      EXPECT_EQ(result.error, DecodeError::kBadChecksum);
    } else if (name == "unknown_type.bin") {
      EXPECT_EQ(result.error, DecodeError::kUnknownType);
    } else if (name == "oversized_length.bin") {
      EXPECT_EQ(result.error, DecodeError::kOversized);
    } else if (name == "empty.bin" || name == "truncated_header.bin" ||
               name == "truncated_payload.bin") {
      EXPECT_EQ(result.error, DecodeError::kNeedMoreData);
    } else if (name == "hostile_string_len.bin" ||
               name == "hostile_count_assign.bin" ||
               name == "hostile_count_contracts.bin" ||
               name == "hostile_count_result.bin" ||
               name == "bad_prefix_len.bin" || name == "trailing_junk.bin") {
      // Well-framed, hostile payload: the frame decodes, the message must
      // not.
      ASSERT_TRUE(result.ok()) << name;
      switch (result.frame->type) {
        case MsgType::kHello:
          EXPECT_FALSE(decode_hello(result.frame->payload)) << name;
          break;
        case MsgType::kAssign:
          EXPECT_FALSE(decode_assign(result.frame->payload)) << name;
          break;
        case MsgType::kResult:
          EXPECT_FALSE(decode_result(result.frame->payload)) << name;
          break;
        case MsgType::kHeartbeat:
          EXPECT_FALSE(decode_heartbeat(result.frame->payload)) << name;
          break;
        default:
          break;
      }
    } else if (name == "result_garbage_trace.bin" ||
               name == "result_truncated_trace.bin") {
      // Well-framed result whose embedded trace blob is hostile: frame and
      // message decode, the span layer must reject the blob.
      ASSERT_TRUE(result.ok()) << name;
      const auto msg = decode_result(result.frame->payload);
      ASSERT_TRUE(msg.has_value()) << name;
      ASSERT_FALSE(msg->trace_blob.empty()) << name;
      obs::DecodedTrace trace;
      EXPECT_FALSE(obs::deserialize_trace(msg->trace_blob, trace)) << name;
    }
  }
  EXPECT_GE(files, 15u) << "corpus went missing";
  EXPECT_GE(decoded_ok, 1u);
}

TEST(MutationFuzzTest, TenThousandMutationsNeverCrash) {
  // Seeded: failures reproduce. Start from real frames so mutations
  // explore the interesting neighborhoods of the format, not just noise.
  std::mt19937 rng(0xDC5F00D);
  AssignMsg assign{3, 1, 1, {{7, {sample_contract()}}, {8, {}}}};
  ResultMsg result;
  result.shard_id = 3;
  result.violations.resize(2);
  result.violations[0].contract = sample_contract();
  result.violations[1].contract = sample_contract();
  result.fingerprints = {{7, 0xAB}, {8, 0xCD}};
  result.registry_blob = {0x44, 0x43, 0x56, 0x4D, 1, 0};
  ResultMsg traced = result;
  traced.trace_blob = obs::serialize_trace(
      std::vector<obs::TraceEvent>{
          {"shard", 1, 0, 1, 0, std::chrono::nanoseconds(5),
           std::chrono::nanoseconds(9)},
          {"fetch", 2, 1, 1, 0, std::chrono::nanoseconds(6),
           std::chrono::nanoseconds(3)}},
      std::chrono::nanoseconds(0), 0);
  const std::vector<std::vector<std::uint8_t>> seeds = {
      encode_frame(encode(assign)),
      encode_frame(encode(result)),
      encode_frame(encode(traced)),
      encode_frame(encode(HelloMsg{"fuzz", kProtocolVersion, 9})),
      encode_frame(encode_shutdown()),
  };

  for (int iteration = 0; iteration < 10000; ++iteration) {
    std::vector<std::uint8_t> bytes = seeds[rng() % seeds.size()];
    switch (rng() % 4) {
      case 0:  // bit flips
        for (int n = 1 + static_cast<int>(rng() % 8); n > 0; --n) {
          bytes[rng() % bytes.size()] ^= 1u << (rng() % 8);
        }
        break;
      case 1:  // truncate
        bytes.resize(rng() % (bytes.size() + 1));
        break;
      case 2:  // extend with junk
        for (int n = 1 + static_cast<int>(rng() % 32); n > 0; --n) {
          bytes.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      case 3: {  // splice two seeds
        const auto& other = seeds[rng() % seeds.size()];
        const std::size_t cut = rng() % (bytes.size() + 1);
        bytes.resize(cut);
        bytes.insert(bytes.end(), other.begin() + rng() % other.size(),
                     other.end());
        break;
      }
    }
    const DecodeResult decoded = try_decode_frame(bytes);
    if (decoded.ok()) {
      exercise_payload_decoders(*decoded.frame);
      EXPECT_LE(decoded.consumed, bytes.size());
    } else if (decoded.error != DecodeError::kNeedMoreData) {
      EXPECT_EQ(decoded.consumed, bytes.size());
    } else {
      EXPECT_EQ(decoded.consumed, 0u);
    }
  }
}

}  // namespace
}  // namespace dcv::dist
