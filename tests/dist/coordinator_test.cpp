// Coordinator failure-domain tests. Workers here are scripted in-process
// Transports (obedient / crash-after-assign / silent / heartbeat-forever)
// driven by a ManualFetchClock, so every crash, hang, and partition
// scenario — including lease expiry and the hard shard deadline — runs
// deterministically with zero wall-clock sleeping.
#include "dist/coordinator.hpp"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/messages.hpp"
#include "obs/metrics_serde.hpp"
#include "obs/span.hpp"
#include "obs/span_serde.hpp"
#include "obs/trace_merge.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::dist {
namespace {

using namespace std::chrono_literals;

/// An in-process fake worker implementing the wire protocol from the
/// worker's side, with scriptable misbehavior.
class ScriptedWorker final : public Transport {
 public:
  enum class Mode {
    /// Handshakes, then answers every assignment with a synthesized clean
    /// result (fingerprints + a small metrics registry included).
    kObedient,
    /// Handshakes, accepts one assignment, then the process "dies": the
    /// connection closes without a result.
    kCrashAfterAssign,
    /// Handshakes, accepts assignments, then goes silent — the connection
    /// stays open but nothing ever comes back (hang/partition). Detected
    /// only by lease expiry.
    kSilentAfterAssign,
    /// Keeps heartbeating its assignment forever without ever producing a
    /// result — the pathological worker the hard shard deadline exists for.
    kHeartbeatForever,
  };

  ScriptedWorker(std::string id, std::uint64_t epoch, Mode mode,
                 rcdc::FetchClock* clock = nullptr)
      : id_(std::move(id)), mode_(mode), clock_(clock) {
    HelloMsg hello;
    hello.worker_id = id_;
    hello.topology_epoch = epoch;
    outbox_.push_back(encode(hello));
  }

  /// Sends a hello with an arbitrary protocol version (rejection tests).
  static std::unique_ptr<ScriptedWorker> with_hello(std::string id,
                                                    std::uint32_t protocol,
                                                    std::uint64_t epoch) {
    auto worker = std::make_unique<ScriptedWorker>(id, epoch, Mode::kObedient);
    HelloMsg hello;
    hello.worker_id = id;
    hello.protocol = protocol;
    hello.topology_epoch = epoch;
    worker->outbox_.clear();
    worker->outbox_.push_back(encode(hello));
    return worker;
  }

  bool send(const Frame& frame) override {
    if (closed_) return false;
    switch (frame.type) {
      case MsgType::kWelcome:
        welcomed_ = true;
        return true;
      case MsgType::kAssign: {
        const auto assign = decode_assign(frame.payload);
        EXPECT_TRUE(assign.has_value()) << id_ << ": malformed assign";
        if (!assign) return true;
        ++assignments_received_;
        switch (mode_) {
          case Mode::kObedient:
            outbox_.push_back(encode(synthesize_result(*assign)));
            break;
          case Mode::kCrashAfterAssign:
            closed_ = true;
            break;
          case Mode::kSilentAfterAssign:
            break;
          case Mode::kHeartbeatForever:
            active_ = *assign;
            if (clock_ != nullptr) last_heartbeat_ = clock_->now();
            break;
        }
        return true;
      }
      case MsgType::kShutdown:
        shutdown_received_ = true;
        return true;
      default:
        ADD_FAILURE() << id_ << ": unexpected frame " << to_string(frame.type);
        return true;
    }
  }

  std::optional<Frame> poll() override {
    if (!outbox_.empty()) {
      Frame frame = std::move(outbox_.front());
      outbox_.erase(outbox_.begin());
      return frame;
    }
    // Heartbeat-forever mode: one heartbeat per elapsed interval, paced on
    // the injected clock so the coordinator's idle sleeps (which advance
    // simulated time) are what release the next beat.
    if (mode_ == Mode::kHeartbeatForever && active_.has_value() &&
        clock_ != nullptr && clock_->now() - last_heartbeat_ >= 500ms) {
      last_heartbeat_ = clock_->now();
      return encode(HeartbeatMsg{active_->shard_id, active_->attempt, 1});
    }
    return std::nullopt;
  }

  bool closed() const override { return closed_; }
  std::string peer() const override { return id_; }

  [[nodiscard]] bool shutdown_received() const { return shutdown_received_; }
  [[nodiscard]] int assignments_received() const {
    return assignments_received_;
  }

  /// Overrides the fixed 1ms result timing with a per-assignment model —
  /// the knob the feedback-balancing tests use to fake slow devices.
  void set_elapsed_model(
      std::function<std::uint64_t(const AssignMsg&)> model) {
    elapsed_model_ = std::move(model);
  }

 private:
  ResultMsg synthesize_result(const AssignMsg& assign) {
    ResultMsg result;
    result.shard_id = assign.shard_id;
    result.attempt = assign.attempt;
    result.devices_checked = assign.devices.size();
    result.contracts_checked = std::accumulate(
        assign.devices.begin(), assign.devices.end(), std::uint64_t{0},
        [](std::uint64_t total, const DeviceWork& work) {
          return total + work.contracts.size();
        });
    result.elapsed_ns =
        elapsed_model_ ? elapsed_model_(assign) : 1'000'000;
    for (const DeviceWork& work : assign.devices) {
      result.fingerprints.emplace_back(work.device,
                                       0x9E3779B9u ^ (work.device * 2654435761u));
    }
    obs::MetricsRegistry registry;
    registry.counter("dcv_worker_shards_validated_total", "shards").inc();
    result.registry_blob = obs::serialize_registry(registry);
    return result;
  }

  std::string id_;
  Mode mode_;
  rcdc::FetchClock* clock_;
  std::function<std::uint64_t(const AssignMsg&)> elapsed_model_;
  bool closed_ = false;
  bool welcomed_ = false;
  bool shutdown_received_ = false;
  int assignments_received_ = 0;
  std::optional<AssignMsg> active_;
  std::chrono::steady_clock::time_point last_heartbeat_{};
  std::vector<Frame> outbox_;
};

/// A v2-fluent fake worker whose steady clock runs `skew` away from the
/// coordinator's: it stamps hellos/results in its own (skewed) time, echoes
/// the coordinator's send stamps for RTT sampling, and ships a small span
/// tree (shard → fetch + validate) on every result, with starts in its own
/// clock. Exercises the full clock-alignment + trace-merge path.
class SkewedTracedWorker final : public Transport {
 public:
  SkewedTracedWorker(std::string id, std::uint64_t epoch,
                     std::chrono::nanoseconds skew, rcdc::FetchClock* clock)
      : id_(std::move(id)), skew_(skew), clock_(clock) {
    HelloMsg hello;
    hello.worker_id = id_;
    hello.topology_epoch = epoch;
    hello.send_ns = remote_now();
    outbox_.push_back(encode(hello));
  }

  bool send(const Frame& frame) override {
    switch (frame.type) {
      case MsgType::kWelcome: {
        const auto welcome = decode_welcome(frame.payload);
        if (welcome.has_value() && welcome->send_ns != 0) {
          peer_tx_ns_ = welcome->send_ns;
          peer_rx_ns_ = remote_now();
        }
        return true;
      }
      case MsgType::kAssign: {
        const auto assign = decode_assign(frame.payload);
        EXPECT_TRUE(assign.has_value()) << id_ << ": malformed assign";
        if (!assign) return true;
        if (assign->send_ns != 0) {
          peer_tx_ns_ = assign->send_ns;
          peer_rx_ns_ = remote_now();
        }
        outbox_.push_back(encode(synthesize_result(*assign)));
        return true;
      }
      default:
        return true;
    }
  }

  std::optional<Frame> poll() override {
    if (outbox_.empty()) return std::nullopt;
    Frame frame = std::move(outbox_.front());
    outbox_.erase(outbox_.begin());
    return frame;
  }

  bool closed() const override { return false; }
  std::string peer() const override { return id_; }

 private:
  [[nodiscard]] std::uint64_t remote_now() const {
    return static_cast<std::uint64_t>(
        (clock_->now() + skew_).time_since_epoch().count());
  }

  ResultMsg synthesize_result(const AssignMsg& assign) {
    ResultMsg result;
    result.shard_id = assign.shard_id;
    result.attempt = assign.attempt;
    result.devices_checked = assign.devices.size();
    result.elapsed_ns = 2'000'000;
    for (const DeviceWork& work : assign.devices) {
      result.fingerprints.emplace_back(work.device, 0x1234u ^ work.device);
    }
    using std::chrono::nanoseconds;
    // Absolute starts in the *worker's* clock, as span_serde ships them;
    // ids live in the worker's span space (the merger re-keys them).
    const auto base = static_cast<std::int64_t>(remote_now());
    const std::uint64_t shard_span = 100 + assign.shard_id * 10;
    const std::vector<obs::TraceEvent> events = {
        {"fetch", shard_span + 1, shard_span, assign.cycle_id, 0,
         nanoseconds(base + 100), nanoseconds(300)},
        {"validate", shard_span + 2, shard_span, assign.cycle_id, 0,
         nanoseconds(base + 500), nanoseconds(200)},
        {"shard", shard_span, 0, assign.cycle_id, 0, nanoseconds(base),
         nanoseconds(900)},
    };
    result.trace_blob = obs::serialize_trace(events, nanoseconds(0), 0);
    result.send_ns = remote_now();
    result.peer_tx_ns = peer_tx_ns_;
    result.peer_rx_ns = peer_rx_ns_;
    return result;
  }

  std::string id_;
  std::chrono::nanoseconds skew_;
  rcdc::FetchClock* clock_;
  std::uint64_t peer_tx_ns_ = 0;
  std::uint64_t peer_rx_ns_ = 0;
  std::vector<Frame> outbox_;
};

class CoordinatorTest : public testing::Test {
 protected:
  CoordinatorTest()
      : topology_(topo::build_clos(topo::ClosParams{.clusters = 2,
                                                    .tors_per_cluster = 3,
                                                    .leaves_per_cluster = 3,
                                                    .spines_per_plane = 1,
                                                    .regional_spines = 2})),
        metadata_(topology_) {}

  CoordinatorConfig config() {
    CoordinatorConfig cfg;
    cfg.clock = &clock_;
    cfg.metrics = &registry_;
    cfg.lease = 2s;
    cfg.heartbeat_interval = 500ms;
    cfg.poll_interval = 50ms;
    cfg.shard_deadline = 30s;
    return cfg;
  }

  /// Adds a scripted worker and returns a borrowed pointer (the
  /// coordinator owns the transport).
  ScriptedWorker* add(Coordinator& coordinator, const std::string& id,
                      ScriptedWorker::Mode mode) {
    auto worker =
        std::make_unique<ScriptedWorker>(id, topology_.epoch(), mode, &clock_);
    ScriptedWorker* raw = worker.get();
    coordinator.add_worker(std::move(worker));
    return raw;
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
  rcdc::ManualFetchClock clock_;
  obs::MetricsRegistry registry_;
};

TEST_F(CoordinatorTest, HappyPathThreeWorkers) {
  Coordinator coordinator(metadata_, config());
  std::vector<ScriptedWorker*> workers = {
      add(coordinator, "w0", ScriptedWorker::Mode::kObedient),
      add(coordinator, "w1", ScriptedWorker::Mode::kObedient),
      add(coordinator, "w2", ScriptedWorker::Mode::kObedient)};
  EXPECT_EQ(coordinator.pump(3, 5s), 3u);

  const DistributedSummary summary = coordinator.run_cycle();
  EXPECT_EQ(summary.workers_connected, 3u);
  EXPECT_EQ(summary.workers_lost, 0u);
  EXPECT_EQ(summary.shards_failed, 0u);
  EXPECT_EQ(summary.reassignments, 0u);
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  EXPECT_FALSE(summary.degraded());
  EXPECT_EQ(summary.merged.devices_checked, topology_.device_count());
  EXPECT_GT(summary.merged.contracts_checked, 0u);
  // Shards are carved at ~4 per live worker (ceil-division may merge the
  // tail, but there are always enough to spread across the fleet).
  EXPECT_GE(summary.shards.size(), 3u);
  EXPECT_LE(summary.shards.size(), 12u);
  for (const ShardOutcome& shard : summary.shards) {
    EXPECT_EQ(shard.status, ShardStatus::kValidated);
    EXPECT_FALSE(shard.degraded_confidence);
    EXPECT_EQ(shard.attempts, 1u);
  }
  // Every device fingerprint arrived at the coordinator.
  EXPECT_EQ(coordinator.fingerprints().size(), topology_.device_count());
  // All three workers did work (queue-stealing may skew the split, but
  // nobody is idle with 4 shards each carved for them).
  for (ScriptedWorker* worker : workers) {
    EXPECT_GT(worker->assignments_received(), 0);
  }
  // Worker registries were folded in under {worker=<id>} labels.
  EXPECT_GT(registry_
                .counter("dcv_worker_shards_validated_total", "",
                         {{"worker", "w1"}})
                .value(),
            0u);
  EXPECT_EQ(coordinator.cycles_completed(), 1u);

  coordinator.shutdown_workers();
  for (ScriptedWorker* worker : workers) {
    EXPECT_TRUE(worker->shutdown_received());
  }
}

TEST_F(CoordinatorTest, FeedbackRebalancesShardsTowardEqualTime) {
  Coordinator coordinator(metadata_, config());
  ScriptedWorker* worker =
      add(coordinator, "w0", ScriptedWorker::Mode::kObedient);
  // Synthetic skew: the five lowest-id devices are 10x slower to validate.
  worker->set_elapsed_model([](const AssignMsg& assign) {
    std::uint64_t total = 0;
    for (const DeviceWork& work : assign.devices) {
      total += work.device < 5 ? 10'000'000 : 1'000'000;
    }
    return total;
  });
  EXPECT_EQ(coordinator.pump(1, 5s), 1u);

  const DistributedSummary first = coordinator.run_cycle();
  ASSERT_EQ(first.shards_failed, 0u);
  // Cold carve is count-balanced: the lead shard holds ceil(17/4) devices
  // — all five of the slow ones.
  EXPECT_EQ(first.shards.front().devices, 5u);

  const DistributedSummary second = coordinator.run_cycle();
  ASSERT_EQ(second.shards_failed, 0u);
  // The balancer learned where the time went: slow devices get carved into
  // smaller shards, the cheap tail into bigger ones.
  EXPECT_LT(second.shards.front().devices, first.shards.front().devices);
  EXPECT_GT(second.shards.back().devices, second.shards.front().devices);
  std::size_t total_devices = 0;
  for (const ShardOutcome& shard : second.shards) {
    total_devices += shard.devices;
  }
  EXPECT_EQ(total_devices, topology_.device_count());
  EXPECT_GT(coordinator.balancer().cost(0),
            4.0 * coordinator.balancer().cost(16));
}

TEST_F(CoordinatorTest, CrashReassignedWithinCycle) {
  Coordinator coordinator(metadata_, config());
  add(coordinator, "steady", ScriptedWorker::Mode::kObedient);
  add(coordinator, "crasher", ScriptedWorker::Mode::kCrashAfterAssign);
  EXPECT_EQ(coordinator.pump(2, 5s), 2u);

  const DistributedSummary summary = coordinator.run_cycle();
  // The crasher's shard moved to the survivor: full coverage, no failed
  // shards, but the event is visible as a loss + reassignment and the
  // recovered shard carries degraded confidence.
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  EXPECT_FALSE(summary.degraded());
  EXPECT_EQ(summary.workers_lost, 1u);
  EXPECT_GE(summary.reassignments, 1u);
  std::size_t recovered = 0;
  for (const ShardOutcome& shard : summary.shards) {
    if (shard.status == ShardStatus::kRecovered) {
      ++recovered;
      EXPECT_TRUE(shard.degraded_confidence);
      EXPECT_EQ(shard.worker, "steady");
      EXPECT_GE(shard.attempts, 2u);
    }
  }
  EXPECT_GE(recovered, 1u);
  EXPECT_EQ(coordinator.live_workers(), 1u);
}

TEST_F(CoordinatorTest, CrashBudgetExhaustedDegradesThenRecovers) {
  // Retry budget 0: a lost shard fails immediately. This is the
  // deterministic twin of the kill-one-of-three process test.
  CoordinatorConfig cfg = config();
  cfg.shard_retry_budget = 0;
  Coordinator coordinator(metadata_, cfg);
  add(coordinator, "w0", ScriptedWorker::Mode::kObedient);
  add(coordinator, "w1", ScriptedWorker::Mode::kObedient);
  add(coordinator, "crasher", ScriptedWorker::Mode::kCrashAfterAssign);
  EXPECT_EQ(coordinator.pump(3, 5s), 3u);

  const DistributedSummary degraded = coordinator.run_cycle();
  EXPECT_LT(degraded.coverage(), 1.0);
  EXPECT_TRUE(degraded.degraded());
  EXPECT_GE(degraded.shards_failed, 1u);
  std::size_t failed_devices = 0;
  for (const ShardOutcome& shard : degraded.shards) {
    if (shard.status == ShardStatus::kFailed) {
      EXPECT_TRUE(shard.degraded_confidence);
      EXPECT_TRUE(shard.worker.empty());
      failed_devices += shard.devices;
    }
  }
  // Coverage dropped by exactly the failed shards' devices.
  EXPECT_EQ(degraded.merged.devices_failed, failed_devices);
  EXPECT_DOUBLE_EQ(
      degraded.coverage(),
      1.0 - static_cast<double>(failed_devices) /
                static_cast<double>(topology_.device_count()));

  // Next cycle the survivors carry the whole fleet: coverage back to 1.0.
  const DistributedSummary recovered = coordinator.run_cycle();
  EXPECT_DOUBLE_EQ(recovered.coverage(), 1.0);
  EXPECT_FALSE(recovered.degraded());
  EXPECT_EQ(coordinator.cycles_completed(), 2u);
}

TEST_F(CoordinatorTest, HangDetectedByLeaseExpiry) {
  Coordinator coordinator(metadata_, config());
  add(coordinator, "steady", ScriptedWorker::Mode::kObedient);
  add(coordinator, "hung", ScriptedWorker::Mode::kSilentAfterAssign);
  EXPECT_EQ(coordinator.pump(2, 5s), 2u);

  const DistributedSummary summary = coordinator.run_cycle();
  // The silent worker holds its shard until the lease (2 s simulated)
  // expires, then the shard is reassigned. No wall time passed. (The
  // coordinator frees lost workers at cycle end, so don't touch the
  // ScriptedWorker pointer after run_cycle — a lease can only expire on
  // an assigned shard, which workers_lost + reassignments already prove.)
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  EXPECT_EQ(summary.workers_lost, 1u);
  EXPECT_GE(summary.reassignments, 1u);
  EXPECT_EQ(coordinator.live_workers(), 1u);
  EXPECT_GT(
      registry_
          .counter("dcv_dist_workers_lost_total", "",
                   {{"reason", "lease_expired"}})
          .value(),
      0u);
}

TEST_F(CoordinatorTest, HeartbeatCannotExtendPastShardDeadline) {
  CoordinatorConfig cfg = config();
  cfg.shard_deadline = 6s;  // a few lease renewals, then the axe
  Coordinator coordinator(metadata_, cfg);
  add(coordinator, "steady", ScriptedWorker::Mode::kObedient);
  add(coordinator, "stuck", ScriptedWorker::Mode::kHeartbeatForever);
  EXPECT_EQ(coordinator.pump(2, 5s), 2u);

  const DistributedSummary summary = coordinator.run_cycle();
  // The stuck worker renewed its lease via heartbeats yet still lost the
  // shard at the hard deadline; the cycle completed with full coverage.
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  EXPECT_EQ(summary.workers_lost, 1u);
  EXPECT_GT(registry_
                .counter("dcv_dist_workers_lost_total", "",
                         {{"reason", "shard_deadline"}})
                .value(),
            0u);
}

TEST_F(CoordinatorTest, AllWorkersLostFailsEveryShardWithoutHanging) {
  CoordinatorConfig cfg = config();
  cfg.shard_retry_budget = 1;
  Coordinator coordinator(metadata_, cfg);
  add(coordinator, "c0", ScriptedWorker::Mode::kCrashAfterAssign);
  add(coordinator, "c1", ScriptedWorker::Mode::kCrashAfterAssign);
  EXPECT_EQ(coordinator.pump(2, 5s), 2u);

  const DistributedSummary summary = coordinator.run_cycle();
  EXPECT_EQ(summary.workers_lost, 2u);
  EXPECT_EQ(summary.shards_failed, summary.shards.size());
  EXPECT_DOUBLE_EQ(summary.coverage(), 0.0);
  EXPECT_TRUE(summary.degraded());
  EXPECT_EQ(summary.merged.devices_failed, topology_.device_count());
  EXPECT_EQ(coordinator.live_workers(), 0u);
}

TEST_F(CoordinatorTest, NoWorkersYieldsFullyFailedCycle) {
  Coordinator coordinator(metadata_, config());
  const DistributedSummary summary = coordinator.run_cycle();
  EXPECT_EQ(summary.workers_connected, 0u);
  EXPECT_TRUE(summary.degraded());
  EXPECT_DOUBLE_EQ(summary.coverage(), 0.0);
}

TEST_F(CoordinatorTest, RejectsWrongEpochAndWrongProtocol) {
  Coordinator coordinator(metadata_, config());
  auto wrong_epoch = std::make_unique<ScriptedWorker>(
      "time-traveler", topology_.epoch() + 1, ScriptedWorker::Mode::kObedient);
  coordinator.add_worker(std::move(wrong_epoch));
  coordinator.add_worker(ScriptedWorker::with_hello(
      "alien", kProtocolVersion + 7, topology_.epoch()));
  EXPECT_EQ(coordinator.pump(2, 1s), 0u);
  EXPECT_EQ(coordinator.live_workers(), 0u);
  EXPECT_EQ(registry_.counter("dcv_dist_workers_rejected_total", "").value(),
            2u);
}

TEST_F(CoordinatorTest, FleetProbeTracksReadiness) {
  Coordinator coordinator(metadata_, config());
  FleetReadinessRules rules;
  rules.min_workers = 1;
  rules.min_coverage = 0.95;
  const obs::HealthProbe probe = make_fleet_probe(coordinator, rules);

  // No workers, no cycles: alive but not ready.
  obs::HealthSnapshot snapshot = probe();
  EXPECT_TRUE(snapshot.alive);
  EXPECT_FALSE(snapshot.ready);

  add(coordinator, "w0", ScriptedWorker::Mode::kObedient);
  EXPECT_EQ(coordinator.pump(1, 5s), 1u);
  snapshot = probe();
  EXPECT_FALSE(snapshot.ready) << "no completed cycle yet";

  (void)coordinator.run_cycle();
  snapshot = probe();
  EXPECT_TRUE(snapshot.ready) << snapshot.detail;

  // A degraded cycle (worker gone, every shard failed) flips it back.
  coordinator.shutdown_workers();
  CoordinatorConfig cfg = config();
  cfg.shard_retry_budget = 0;
  Coordinator degraded_coordinator(metadata_, cfg);
  const obs::HealthProbe degraded_probe =
      make_fleet_probe(degraded_coordinator, rules);
  add(degraded_coordinator, "c", ScriptedWorker::Mode::kCrashAfterAssign);
  EXPECT_EQ(degraded_coordinator.pump(1, 5s), 1u);
  (void)degraded_coordinator.run_cycle();
  snapshot = degraded_probe();
  EXPECT_FALSE(snapshot.ready);
  EXPECT_NE(snapshot.detail.find("coverage"), std::string::npos);
}

TEST_F(CoordinatorTest, MergedTraceNestsWorkerSpansUnderAssignSpans) {
  obs::TraceRing trace(4096);
  CoordinatorConfig cfg = config();
  cfg.trace = &trace;
  Coordinator coordinator(metadata_, cfg);
  // The worker's steady clock runs 250 ms ahead of the coordinator's.
  constexpr auto kSkew = 250ms;
  coordinator.add_worker(std::make_unique<SkewedTracedWorker>(
      "skewed", topology_.epoch(), kSkew, &clock_));
  EXPECT_EQ(coordinator.pump(1, 5s), 1u);

  const DistributedSummary summary = coordinator.run_cycle();
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  for (const ShardOutcome& shard : summary.shards) {
    EXPECT_GT(shard.elapsed_ns, 0u);
  }

  // The estimator learned the skew (worker minus coordinator, positive):
  // midpoint-of-RTT is only good to half the poll latency, so the bound is
  // loose but the sign and magnitude must be right.
  const double offset_ns =
      registry_
          .gauge("dcv_dist_clock_offset_ns", "", {{"worker", "skewed"}})
          .value();
  EXPECT_GT(offset_ns, 0.0);
  EXPECT_NEAR(offset_ns, 2.5e8, 1.5e8);

  const obs::MergedTrace merged = coordinator.merger().snapshot();
  ASSERT_GE(merged.tracks.size(), 2u);
  EXPECT_EQ(merged.tracks[0].process, "coordinator");
  EXPECT_EQ(merged.truncated, 0u);
  EXPECT_EQ(merged.remote_dropped, 0u);

  // Index the coordinator's own spans: one "cycle" root, one "assign" per
  // delivered shard.
  std::map<std::uint64_t, const obs::TraceEvent*> assigns;
  bool saw_cycle = false;
  for (const obs::TraceEvent& event : merged.tracks[0].events) {
    if (event.name == "assign") assigns[event.id] = &event;
    if (event.name == "cycle") saw_cycle = true;
  }
  EXPECT_TRUE(saw_cycle);
  ASSERT_FALSE(assigns.empty());

  const obs::MergedTrack* worker_track = nullptr;
  for (const obs::MergedTrack& track : merged.tracks) {
    if (track.process == "skewed") worker_track = &track;
  }
  ASSERT_NE(worker_track, nullptr);
  ASSERT_FALSE(worker_track->events.empty());

  std::map<std::uint64_t, const obs::TraceEvent*> worker_spans;
  for (const obs::TraceEvent& event : worker_track->events) {
    worker_spans[event.id] = &event;
  }
  std::size_t shard_roots = 0;
  for (const obs::TraceEvent& event : worker_track->events) {
    if (event.name == "shard") {
      // The batch root was re-parented under the owning shard's assign
      // span, and — after the offset rewrite + causal clamp — never starts
      // before it on the merged timeline.
      ++shard_roots;
      const auto assign = assigns.find(event.parent);
      ASSERT_NE(assign, assigns.end())
          << "shard span's parent is not an assign span";
      EXPECT_GE(event.start.count(), assign->second->start.count());
      EXPECT_EQ(event.cycle, assign->second->cycle);
    } else {
      // fetch/validate keep their in-batch parent (the shard root).
      const auto parent = worker_spans.find(event.parent);
      ASSERT_NE(parent, worker_spans.end())
          << event.name << " has an unresolvable parent";
      EXPECT_EQ(parent->second->name, "shard");
      EXPECT_GE(event.start.count(), parent->second->start.count());
    }
  }
  EXPECT_EQ(shard_roots, assigns.size());
}

TEST_F(CoordinatorTest, DuplicateWorkerIdsStayDistinguishable) {
  Coordinator coordinator(metadata_, config());
  add(coordinator, "twin", ScriptedWorker::Mode::kObedient);
  add(coordinator, "twin", ScriptedWorker::Mode::kObedient);
  EXPECT_EQ(coordinator.pump(2, 5s), 2u);
  const DistributedSummary summary = coordinator.run_cycle();
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  // The second "twin" was renamed on admission, so shard outcomes never
  // ambiguously attribute work.
  bool saw_suffixed = false;
  for (const ShardOutcome& shard : summary.shards) {
    if (shard.worker != "twin") {
      EXPECT_EQ(shard.worker.rfind("twin#", 0), 0u) << shard.worker;
      saw_suffixed = true;
    }
  }
  EXPECT_TRUE(saw_suffixed);
}

}  // namespace
}  // namespace dcv::dist
