#include "rcdc/beliefs.hpp"

#include <gtest/gtest.h>

#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class BeliefsTest : public testing::Test {
 protected:
  BeliefsTest() : topology_(topo::build_figure3()), metadata_(topology_) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  Belief belief(BeliefKind kind, const char* source, const char* prefix) {
    return Belief{.kind = kind,
                  .source = id(source),
                  .destination = net::Prefix::parse(prefix)};
  }

  BeliefResult check(const Belief& b) {
    const routing::BgpSimulator sim(topology_);
    const SimulatorFibSource fibs(sim);
    return BeliefChecker(metadata_, fibs).check(b);
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST_F(BeliefsTest, ReachabilityOnHealthyNetwork) {
  EXPECT_TRUE(
      check(belief(BeliefKind::kReachable, "ToR1", "10.0.2.0/24")).holds);
  EXPECT_FALSE(
      check(belief(BeliefKind::kUnreachable, "ToR1", "10.0.2.0/24")).holds);
}

TEST_F(BeliefsTest, UnknownPrefixIsUnreachable) {
  EXPECT_FALSE(
      check(belief(BeliefKind::kReachable, "ToR1", "99.0.0.0/24")).holds);
  EXPECT_TRUE(
      check(belief(BeliefKind::kUnreachable, "ToR1", "99.0.0.0/24")).holds);
}

TEST_F(BeliefsTest, PathLengthBounds) {
  // Inter-cluster: length 4 exactly (Intent 2).
  Belief b = belief(BeliefKind::kMaxPathLength, "ToR1", "10.0.2.0/24");
  b.bound = 4;
  EXPECT_TRUE(check(b).holds);
  b.bound = 3;
  EXPECT_FALSE(check(b).holds);
  // Intra-cluster: length 2.
  Belief intra = belief(BeliefKind::kMaxPathLength, "ToR1", "10.0.1.0/24");
  intra.bound = 2;
  EXPECT_TRUE(check(intra).holds);
}

TEST_F(BeliefsTest, EcmpPathCount) {
  Belief b = belief(BeliefKind::kMinEcmpPaths, "ToR1", "10.0.2.0/24");
  b.bound = 4;  // the maximal redundant set in Figure 3
  EXPECT_TRUE(check(b).holds);
  b.bound = 5;
  EXPECT_FALSE(check(b).holds);
  EXPECT_EQ(check(b).observed, "4 paths, lengths 4..4");
}

TEST_F(BeliefsTest, TraversesAndAvoids) {
  // Some ToR1 -> Prefix_C path passes through D1; none pass through a
  // regional spine on the healthy network.
  Belief via_d1 = belief(BeliefKind::kTraverses, "ToR1", "10.0.2.0/24");
  via_d1.via = id("D1");
  EXPECT_TRUE(check(via_d1).holds);

  Belief avoid_r1 = belief(BeliefKind::kAvoids, "ToR1", "10.0.2.0/24");
  avoid_r1.via = id("R1");
  EXPECT_TRUE(check(avoid_r1).holds);

  Belief via_b2 = belief(BeliefKind::kTraverses, "ToR1", "10.0.2.0/24");
  via_b2.via = id("B2");
  EXPECT_TRUE(check(via_b2).holds);
}

TEST_F(BeliefsTest, Figure3FailuresShiftTheBeliefs) {
  topo::apply_figure3_failures(topology_);
  // ToR1 -> Prefix_B now rides the regional detour: longer than 4, through
  // R1 (so "avoids R1" breaks), still reachable.
  EXPECT_TRUE(
      check(belief(BeliefKind::kReachable, "ToR1", "10.0.1.0/24")).holds);
  Belief len = belief(BeliefKind::kMaxPathLength, "ToR1", "10.0.1.0/24");
  len.bound = 4;
  EXPECT_FALSE(check(len).holds);
  len.bound = 6;
  EXPECT_TRUE(check(len).holds);

  Belief avoid_r1 = belief(BeliefKind::kAvoids, "ToR1", "10.0.1.0/24");
  avoid_r1.via = id("R1");
  EXPECT_FALSE(check(avoid_r1).holds);

  Belief via_r1 = belief(BeliefKind::kTraverses, "ToR1", "10.0.1.0/24");
  via_r1.via = id("R1");
  EXPECT_TRUE(check(via_r1).holds);
}

TEST_F(BeliefsTest, CheckAllPreservesOrder) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  const BeliefChecker checker(metadata_, fibs);
  const std::vector<Belief> beliefs = {
      belief(BeliefKind::kReachable, "ToR1", "10.0.2.0/24"),
      belief(BeliefKind::kUnreachable, "ToR1", "10.0.2.0/24")};
  const auto results = checker.check_all(beliefs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].holds);
  EXPECT_FALSE(results[1].holds);
}

TEST_F(BeliefsTest, ToStringIsReadable) {
  Belief b = belief(BeliefKind::kTraverses, "ToR1", "10.0.2.0/24");
  b.via = id("D1");
  EXPECT_EQ(b.to_string(topology_), "traverses ToR1 -> 10.0.2.0/24 via D1");
  Belief len = belief(BeliefKind::kMinEcmpPaths, "ToR2", "10.0.3.0/24");
  len.bound = 4;
  EXPECT_EQ(len.to_string(topology_),
            "min-ecmp-paths ToR2 -> 10.0.3.0/24 (4)");
}

}  // namespace
}  // namespace dcv::rcdc
