// Change-plan parsing: parse-time name/link/ASN resolution (bad plans
// must fail here, never inside NetworkChange::apply against a shared warm
// emulator) and faithful application of the resolved operations.
#include "rcdc/precheck_io.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class ChangePlanTest : public testing::Test {
 protected:
  ChangePlanTest() : topology_(topo::build_figure3()) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  topo::Topology topology_;
};

TEST_F(ChangePlanTest, ParsesChangesWithTheirOperations) {
  const auto changes = parse_change_plan(
      "# plan\n"
      "change renumber ToR1\n"
      "set-asn ToR1 64990\n"
      "\n"
      "change maintenance window\n"
      "shut-link ToR1 A1\n"
      "down-link ToR2 A2\n",
      topology_);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].description, "renumber ToR1");
  EXPECT_EQ(changes[1].description, "maintenance window");

  // Applying to a clone performs the resolved mutations.
  topo::Topology clone = topology_;
  changes[0].apply(clone);
  EXPECT_EQ(clone.device(id("ToR1")).asn, 64990u);
  changes[1].apply(clone);
  const auto link = *clone.find_link(id("ToR1"), id("A1"));
  EXPECT_EQ(clone.link(link).bgp_state, topo::BgpSessionState::kAdminShutdown);
  const auto down = *clone.find_link(id("ToR2"), id("A2"));
  EXPECT_EQ(clone.link(down).link_state, topo::LinkState::kDown);
}

TEST_F(ChangePlanTest, ResolvesNamesAtParseTime) {
  EXPECT_THROW(parse_change_plan("change x\nset-asn NoSuchDevice 1\n",
                                 topology_),
               dcv::ParseError);
  EXPECT_THROW(parse_change_plan("change x\nshut-link ToR1 ToR2\n",
                                 topology_),  // devices exist, link doesn't
               dcv::ParseError);
  EXPECT_THROW(parse_change_plan("change x\nset-asn ToR1 notanumber\n",
                                 topology_),
               dcv::ParseError);
  EXPECT_THROW(parse_change_plan("set-asn ToR1 64990\n", topology_),
               dcv::ParseError);  // operation before any 'change'
  EXPECT_THROW(parse_change_plan("change x\nfrob ToR1\n", topology_),
               dcv::ParseError);  // unknown operation
}

TEST_F(ChangePlanTest, ErrorsNameTheOffendingLine) {
  try {
    parse_change_plan("change ok\nset-asn ToR1 64990\nset-asn Ghost 1\n",
                      topology_);
    FAIL() << "expected ParseError";
  } catch (const dcv::ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("Ghost"), std::string::npos) << what;
  }
}

TEST_F(ChangePlanTest, EmptyAndCommentOnlyPlansYieldNoChanges) {
  EXPECT_TRUE(parse_change_plan("", topology_).empty());
  EXPECT_TRUE(parse_change_plan("# nothing\n\n", topology_).empty());
}

}  // namespace
}  // namespace dcv::rcdc
