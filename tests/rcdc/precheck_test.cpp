// Tests of the §2.7 pre-check workflow (Figure 7), including the
// §2.6.2 "Migrations" root cause: decommissioned and new leaf devices
// configured with the same ASN, which silently suppresses specific-route
// announcements between clusters.
#include "rcdc/precheck.hpp"

#include <gtest/gtest.h>

#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class PrecheckTest : public testing::Test {
 protected:
  PrecheckTest() : topology_(topo::build_figure3()) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  topo::Topology topology_;
};

TEST_F(PrecheckTest, HarmlessChangeIsApproved) {
  const PrecheckPipeline pipeline(topology_);
  // Renumbering a ToR's ASN to another value unique in its cluster leaves
  // forwarding intact.
  const auto result =
      pipeline.check(reassign_asn("renumber ToR1", id("ToR1"), 64900));
  EXPECT_TRUE(result.approved);
  EXPECT_EQ(result.baseline_violations, 0u);
  EXPECT_EQ(result.post_change_violations, 0u);
}

TEST_F(PrecheckTest, MigrationAsnCollisionIsRejected) {
  const PrecheckPipeline pipeline(topology_);
  // The §2.6.2 migration misconfiguration: cluster B's leaves get cluster
  // A's leaf ASN. Loop prevention then hides each cluster's specific
  // routes from the other; traffic still flows via default routes, but the
  // specific contracts break — exactly what the paper describes.
  std::vector<NetworkChange> rollout;
  rollout.push_back(NetworkChange{
      .description = "migrate cluster B onto cluster A's leaf ASN",
      .apply = [&](topo::Topology& emulated) {
        for (const topo::DeviceId leaf : emulated.leaves_in_cluster(1)) {
          emulated.set_asn(leaf, emulated.device(
                                     emulated.leaves_in_cluster(0)[0])
                                     .asn);
        }
      }});
  const auto results = pipeline.check_rollout(rollout);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].approved);
  EXPECT_GT(results[0].introduced.size(), 0u);
  // The introduced violations are specific-contract failures: "the
  // top-of-rack switches violated all the specific contracts. There were
  // no reachability issues because the traffic ... was following default
  // routes and reaching the correct destination."
  for (const Violation& v : results[0].introduced) {
    EXPECT_EQ(v.contract.kind, ContractKind::kSpecific)
        << v.contract.prefix.to_string();
    EXPECT_EQ(v.kind, ViolationKind::kSpecificViaDefaultRoute)
        << v.contract.prefix.to_string();
  }
}

TEST_F(PrecheckTest, ShuttingRedundantLinkIsCaught) {
  const PrecheckPipeline pipeline(topology_);
  const auto link = *topology_.find_link(id("ToR1"), id("A1"));
  const auto result = pipeline.check(
      shut_links("maintenance: shut ToR1-A1", {link}));
  // Intent requires the full redundant set; the shut session degrades
  // ToR1's ECMP fan-out, so the precheck flags it for a maintenance window
  // decision rather than silently passing it.
  EXPECT_FALSE(result.approved);
  EXPECT_GT(result.introduced.size(), 0u);
}

TEST_F(PrecheckTest, PreexistingDriftIsNotChargedToTheChange) {
  // Break the network first; a no-op change must still be approved.
  topo::apply_figure3_failures(topology_);
  const PrecheckPipeline pipeline(topology_);
  const auto result = pipeline.check(NetworkChange{
      .description = "no-op", .apply = [](topo::Topology&) {}});
  EXPECT_GT(result.baseline_violations, 0u);
  EXPECT_EQ(result.post_change_violations, result.baseline_violations);
  EXPECT_TRUE(result.approved);
}

TEST_F(PrecheckTest, RolloutStopsAtFirstRejection) {
  const PrecheckPipeline pipeline(topology_);
  std::vector<NetworkChange> rollout;
  rollout.push_back(NetworkChange{.description = "ok",
                                  .apply = [](topo::Topology&) {}});
  rollout.push_back(shut_links(
      "bad", {*topology_.find_link(id("ToR1"), id("A1"))}));
  rollout.push_back(NetworkChange{.description = "never reached",
                                  .apply = [](topo::Topology&) {}});
  const auto results = pipeline.check_rollout(rollout);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].approved);
  EXPECT_FALSE(results[1].approved);
}

}  // namespace
}  // namespace dcv::rcdc
