// Tests of the §2.7 pre-check workflow (Figure 7), including the
// §2.6.2 "Migrations" root cause: decommissioned and new leaf devices
// configured with the same ASN, which silently suppresses specific-route
// announcements between clusters.
#include "rcdc/precheck.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class PrecheckTest : public testing::Test {
 protected:
  PrecheckTest() : topology_(topo::build_figure3()) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  topo::Topology topology_;
};

TEST_F(PrecheckTest, HarmlessChangeIsApproved) {
  const PrecheckPipeline pipeline(topology_);
  // Renumbering a ToR's ASN to another value unique in its cluster leaves
  // forwarding intact.
  const auto result =
      pipeline.check(reassign_asn("renumber ToR1", id("ToR1"), 64900));
  EXPECT_TRUE(result.approved);
  EXPECT_EQ(result.baseline_violations, 0u);
  EXPECT_EQ(result.post_change_violations, 0u);
}

TEST_F(PrecheckTest, MigrationAsnCollisionIsRejected) {
  const PrecheckPipeline pipeline(topology_);
  // The §2.6.2 migration misconfiguration: cluster B's leaves get cluster
  // A's leaf ASN. Loop prevention then hides each cluster's specific
  // routes from the other; traffic still flows via default routes, but the
  // specific contracts break — exactly what the paper describes.
  std::vector<NetworkChange> rollout;
  rollout.push_back(NetworkChange{
      .description = "migrate cluster B onto cluster A's leaf ASN",
      .apply = [&](topo::Topology& emulated) {
        for (const topo::DeviceId leaf : emulated.leaves_in_cluster(1)) {
          emulated.set_asn(leaf, emulated.device(
                                     emulated.leaves_in_cluster(0)[0])
                                     .asn);
        }
      }});
  const auto results = pipeline.check_rollout(rollout);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].approved);
  EXPECT_GT(results[0].introduced.size(), 0u);
  // The introduced violations are specific-contract failures: "the
  // top-of-rack switches violated all the specific contracts. There were
  // no reachability issues because the traffic ... was following default
  // routes and reaching the correct destination."
  for (const Violation& v : results[0].introduced) {
    EXPECT_EQ(v.contract.kind, ContractKind::kSpecific)
        << v.contract.prefix.to_string();
    EXPECT_EQ(v.kind, ViolationKind::kSpecificViaDefaultRoute)
        << v.contract.prefix.to_string();
  }
}

TEST_F(PrecheckTest, ShuttingRedundantLinkIsCaught) {
  const PrecheckPipeline pipeline(topology_);
  const auto link = *topology_.find_link(id("ToR1"), id("A1"));
  const auto result = pipeline.check(
      shut_links("maintenance: shut ToR1-A1", {link}));
  // Intent requires the full redundant set; the shut session degrades
  // ToR1's ECMP fan-out, so the precheck flags it for a maintenance window
  // decision rather than silently passing it.
  EXPECT_FALSE(result.approved);
  EXPECT_GT(result.introduced.size(), 0u);
}

TEST_F(PrecheckTest, PreexistingDriftIsNotChargedToTheChange) {
  // Break the network first; a no-op change must still be approved.
  topo::apply_figure3_failures(topology_);
  const PrecheckPipeline pipeline(topology_);
  const auto result = pipeline.check(NetworkChange{
      .description = "no-op", .apply = [](topo::Topology&) {}});
  EXPECT_GT(result.baseline_violations, 0u);
  EXPECT_EQ(result.post_change_violations, result.baseline_violations);
  EXPECT_TRUE(result.approved);
}

TEST_F(PrecheckTest, RolloutStopsAtFirstRejection) {
  const PrecheckPipeline pipeline(topology_);
  std::vector<NetworkChange> rollout;
  rollout.push_back(NetworkChange{.description = "ok",
                                  .apply = [](topo::Topology&) {}});
  rollout.push_back(shut_links(
      "bad", {*topology_.find_link(id("ToR1"), id("A1"))}));
  rollout.push_back(NetworkChange{.description = "never reached",
                                  .apply = [](topo::Topology&) {}});
  const auto results = pipeline.check_rollout(rollout);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].approved);
  EXPECT_FALSE(results[1].approved);
}

TEST(PrecheckThreads, ZeroResolvesToAHardwareAwareDefault) {
  const unsigned resolved = resolve_precheck_threads(0);
  EXPECT_GE(resolved, 1u);
  EXPECT_LE(resolved, 16u);
  // An explicit count is taken at face value.
  EXPECT_EQ(resolve_precheck_threads(3), 3u);
  EXPECT_EQ(resolve_precheck_threads(64), 64u);
}

// The warm serving session must be semantically indistinguishable from
// the cold clone-per-check pipeline — same verdicts, same counts, same
// introduced violations — while revalidating only the diverged devices.
class PrecheckSessionTest : public PrecheckTest {
 protected:
  static void expect_same(const PrecheckResult& warm,
                          const PrecheckResult& cold) {
    EXPECT_EQ(warm.approved, cold.approved) << warm.description;
    EXPECT_EQ(warm.baseline_violations, cold.baseline_violations);
    EXPECT_EQ(warm.post_change_violations, cold.post_change_violations);
    ASSERT_EQ(warm.introduced.size(), cold.introduced.size());
    for (const Violation& violation : cold.introduced) {
      EXPECT_NE(std::find(warm.introduced.begin(), warm.introduced.end(),
                          violation),
                warm.introduced.end());
    }
  }
};

TEST_F(PrecheckSessionTest, MatchesThePipelineVerdictForVerdict) {
  const PrecheckPipeline pipeline(topology_);
  PrecheckSession session(topology_);
  const std::vector<NetworkChange> probes = {
      reassign_asn("renumber ToR1", id("ToR1"), 64900),
      shut_links("shut ToR1-A1", {*topology_.find_link(id("ToR1"), id("A1"))}),
      NetworkChange{.description = "no-op", .apply = [](topo::Topology&) {}},
  };
  for (const NetworkChange& change : probes) {
    expect_same(session.check(change), pipeline.check(change));
  }
}

TEST_F(PrecheckSessionTest, ChecksAreIndependentDespiteTheSharedEmulator) {
  PrecheckSession session(topology_);
  const auto bad = shut_links(
      "shut", {*topology_.find_link(id("ToR1"), id("A1"))});
  const auto good = reassign_asn("renumber", id("ToR1"), 64900);

  EXPECT_FALSE(session.check(bad).approved);
  // The rejected change must have been rolled back: the same good change
  // still sees the pristine baseline.
  const auto after = session.check(good);
  EXPECT_TRUE(after.approved);
  EXPECT_EQ(after.baseline_violations, 0u);
  EXPECT_FALSE(session.check(bad).approved);  // and the bad one still fails
  EXPECT_EQ(session.checks_run(), 3u);
}

TEST_F(PrecheckSessionTest, BatchResultsEqualIndividualChecks) {
  PrecheckSession batched(topology_);
  PrecheckSession individual(topology_);
  const std::vector<NetworkChange> changes = {
      reassign_asn("renumber ToR1", id("ToR1"), 64900),
      shut_links("shut ToR1-A1", {*topology_.find_link(id("ToR1"), id("A1"))}),
      reassign_asn("renumber ToR3", id("ToR3"), 64901),
  };
  const auto batch = batched.check_batch(changes);
  ASSERT_EQ(batch.size(), changes.size());
  for (std::size_t i = 0; i < changes.size(); ++i) {
    expect_same(batch[i], individual.check(changes[i]));
  }
  EXPECT_TRUE(batch[0].approved);
  EXPECT_FALSE(batch[1].approved);
  EXPECT_TRUE(batch[2].approved);
}

TEST_F(PrecheckSessionTest, RevalidatesOnlyDivergedDevices) {
  PrecheckSession session(topology_);
  // A local ASN renumber leaves most FIBs fingerprint-identical; the
  // session must skip those devices rather than revalidating the fabric.
  (void)session.check(reassign_asn("renumber ToR1", id("ToR1"), 64900));
  EXPECT_GT(session.devices_skipped(), 0u);
  EXPECT_LT(session.devices_revalidated(),
            session.devices_revalidated() + session.devices_skipped());
}

TEST_F(PrecheckSessionTest, ThrowingChangeReportsErrorAndRecovers) {
  PrecheckSession session(topology_);
  const NetworkChange broken{
      .description = "explodes",
      .apply = [](topo::Topology&) { throw std::runtime_error("bad plan"); }};
  const auto result = session.check(broken);
  EXPECT_FALSE(result.approved);
  EXPECT_NE(result.error.find("bad plan"), std::string::npos);
  // The session survives and still answers correctly.
  EXPECT_TRUE(
      session.check(reassign_asn("renumber", id("ToR1"), 64900)).approved);
}

TEST_F(PrecheckSessionTest, ShapeChangingChangesAreRefused) {
  PrecheckSession session(topology_);
  const NetworkChange grow{
      .description = "add a device",
      .apply = [](topo::Topology& emulated) {
        emulated.add_device("intruder", topo::DeviceRole::kLeaf, 65432);
      }};
  const auto result = session.check(grow);
  EXPECT_FALSE(result.approved);
  EXPECT_NE(result.error.find("shape"), std::string::npos);
  EXPECT_TRUE(
      session.check(reassign_asn("renumber", id("ToR1"), 64900)).approved);
}

TEST_F(PrecheckSessionTest, PreexistingDriftStaysWithTheBaseline) {
  topo::apply_figure3_failures(topology_);
  PrecheckSession session(topology_);
  EXPECT_GT(session.baseline_violations(), 0u);
  const auto result = session.check(NetworkChange{
      .description = "no-op", .apply = [](topo::Topology&) {}});
  EXPECT_TRUE(result.approved);
  EXPECT_EQ(result.post_change_violations, result.baseline_violations);
}

}  // namespace
}  // namespace dcv::rcdc
