#include "rcdc/contract_gen.hpp"

#include <gtest/gtest.h>

#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

using topo::DeviceId;

class Figure4Contracts : public testing::Test {
 protected:
  Figure4Contracts()
      : topology_(topo::build_figure3()),
        metadata_(topology_),
        generator_(metadata_) {}

  DeviceId id(const char* name) const { return *topology_.find_device(name); }

  std::vector<DeviceId> ids(std::initializer_list<const char*> names) const {
    std::vector<DeviceId> out;
    for (const char* name : names) out.push_back(id(name));
    std::sort(out.begin(), out.end());
    return out;
  }

  const Contract* find(const std::vector<Contract>& contracts,
                       const char* prefix) const {
    for (const Contract& c : contracts) {
      if (c.prefix == net::Prefix::parse(prefix)) return &c;
    }
    return nullptr;
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
  ContractGenerator generator_;
};

// Figure 4, left table: ToR1 contracts — default and every other prefix
// point at {A1, A2, A3, A4}.
TEST_F(Figure4Contracts, Tor1MatchesFigure4) {
  const auto contracts = generator_.for_device(id("ToR1"));
  // Default + Prefix_B, Prefix_C, Prefix_D (own Prefix_A excluded).
  ASSERT_EQ(contracts.size(), 4u);
  const auto leaves = ids({"A1", "A2", "A3", "A4"});

  const Contract* def = find(contracts, "0.0.0.0/0");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->kind, ContractKind::kDefault);
  EXPECT_EQ(def->expected_next_hops, leaves);

  EXPECT_EQ(find(contracts, "10.0.0.0/24"), nullptr);  // own prefix
  for (const char* prefix : {"10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}) {
    const Contract* c = find(contracts, prefix);
    ASSERT_NE(c, nullptr) << prefix;
    EXPECT_EQ(c->kind, ContractKind::kSpecific);
    EXPECT_EQ(c->expected_next_hops, leaves) << prefix;
    EXPECT_EQ(c->mode, MatchMode::kExactSet);
  }
}

// Figure 4, middle table: A1 contracts — default {D1}, Prefix_A {ToR1},
// Prefix_B {ToR2}, Prefix_C {D1}, Prefix_D {D1}.
TEST_F(Figure4Contracts, LeafA1MatchesFigure4) {
  const auto contracts = generator_.for_device(id("A1"));
  ASSERT_EQ(contracts.size(), 5u);
  EXPECT_EQ(find(contracts, "0.0.0.0/0")->expected_next_hops, ids({"D1"}));
  EXPECT_EQ(find(contracts, "10.0.0.0/24")->expected_next_hops,
            ids({"ToR1"}));
  EXPECT_EQ(find(contracts, "10.0.1.0/24")->expected_next_hops,
            ids({"ToR2"}));
  EXPECT_EQ(find(contracts, "10.0.2.0/24")->expected_next_hops, ids({"D1"}));
  EXPECT_EQ(find(contracts, "10.0.3.0/24")->expected_next_hops, ids({"D1"}));
}

// §2.4.2's example: A2 has a specific route for Prefix_C with next hop D2.
TEST_F(Figure4Contracts, LeafA2PointsAtD2ForPrefixC) {
  const auto contracts = generator_.for_device(id("A2"));
  EXPECT_EQ(find(contracts, "10.0.2.0/24")->expected_next_hops, ids({"D2"}));
}

// Figure 4, right table: D1 contracts — default {R1, R3}, Prefix_A/B {A1},
// Prefix_C/D {B1}.
TEST_F(Figure4Contracts, SpineD1MatchesFigure4) {
  const auto contracts = generator_.for_device(id("D1"));
  ASSERT_EQ(contracts.size(), 5u);
  EXPECT_EQ(find(contracts, "0.0.0.0/0")->expected_next_hops,
            ids({"R1", "R3"}));
  EXPECT_EQ(find(contracts, "10.0.0.0/24")->expected_next_hops, ids({"A1"}));
  EXPECT_EQ(find(contracts, "10.0.1.0/24")->expected_next_hops, ids({"A1"}));
  EXPECT_EQ(find(contracts, "10.0.2.0/24")->expected_next_hops, ids({"B1"}));
  EXPECT_EQ(find(contracts, "10.0.3.0/24")->expected_next_hops, ids({"B1"}));
}

TEST_F(Figure4Contracts, RegionalContractsAreCardinalityStyle) {
  const auto contracts = generator_.for_device(id("R1"));
  ASSERT_EQ(contracts.size(), 4u);  // one per prefix, no default
  for (const Contract& c : contracts) {
    EXPECT_EQ(c.kind, ContractKind::kSpecific);
    EXPECT_EQ(c.mode, MatchMode::kSubsetAtLeast);
    EXPECT_EQ(c.min_next_hops, 1u);
    EXPECT_EQ(c.expected_next_hops, ids({"D1", "D3"}));
  }
}

TEST_F(Figure4Contracts, RegionalContractsCanBeDisabled) {
  const ContractGenerator no_regional(
      metadata_, ContractGenOptions{.include_regional_spines = false});
  EXPECT_TRUE(no_regional.for_device(id("R1")).empty());
}

TEST_F(Figure4Contracts, GenerateAllCoversEveryDevice) {
  const auto all = generator_.generate_all();
  ASSERT_EQ(all.size(), topology_.device_count());
  for (const DeviceContracts& dc : all) {
    EXPECT_FALSE(dc.contracts.empty())
        << topology_.device(dc.device).name;
  }
}

TEST_F(Figure4Contracts, ContractsIgnoreLinkState) {
  // "We create contracts based on expected topology, and therefore will
  // ignore current state of the links when generating contracts."
  const auto before = generator_.for_device(id("ToR1"));
  topo::apply_figure3_failures(topology_);
  const auto after = generator_.for_device(id("ToR1"));
  EXPECT_EQ(before, after);
}

TEST(ContractGen, RegionScopedToOwnDatacenter) {
  const auto topology = topo::build_region(
      topo::ClosParams{.clusters = 2,
                       .tors_per_cluster = 2,
                       .leaves_per_cluster = 2,
                       .spines_per_plane = 1,
                       .regional_spines = 2},
      2);
  const topo::MetadataService metadata(topology);
  const ContractGenerator generator(metadata);
  // A DC0 ToR gets specific contracts only for DC0 prefixes (4 ToRs per DC,
  // minus its own prefix) plus the default contract.
  const auto tor = *topology.find_device("DC0-T0-0-0");
  const auto contracts = generator.for_device(tor);
  EXPECT_EQ(contracts.size(), 1u + 3u);
  // A regional spine serves both datacenters: contracts for all 8 prefixes.
  const auto regional = *topology.find_device("RH-0");
  EXPECT_EQ(generator.for_device(regional).size(), 8u);
}

// hops_satisfy takes a span; materialize literal hop sets for it.
bool satisfies(std::initializer_list<topo::DeviceId> hops, const Contract& c) {
  const std::vector<topo::DeviceId> actual(hops);
  return hops_satisfy(actual, c);
}

TEST(HopsSatisfy, ExactSet) {
  const Contract c{.kind = ContractKind::kSpecific,
                   .prefix = net::Prefix::parse("10.0.0.0/24"),
                   .expected_next_hops = {1, 2, 3},
                   .mode = MatchMode::kExactSet};
  EXPECT_TRUE(satisfies({1, 2, 3}, c));
  EXPECT_FALSE(satisfies({1, 2}, c));
  EXPECT_FALSE(satisfies({1, 2, 3, 4}, c));
  EXPECT_FALSE(satisfies({}, c));
}

TEST(HopsSatisfy, SubsetAtLeast) {
  const Contract c{.kind = ContractKind::kSpecific,
                   .prefix = net::Prefix::parse("10.0.0.0/24"),
                   .expected_next_hops = {1, 2, 3},
                   .mode = MatchMode::kSubsetAtLeast,
                   .min_next_hops = 2};
  EXPECT_TRUE(satisfies({1, 2}, c));
  EXPECT_TRUE(satisfies({1, 2, 3}, c));
  EXPECT_FALSE(satisfies({1}, c));          // below the bound
  EXPECT_FALSE(satisfies({1, 2, 4}, c));    // not a subset
  EXPECT_FALSE(satisfies({}, c));
}

}  // namespace
}  // namespace dcv::rcdc
