#include "rcdc/burndown.hpp"

#include <gtest/gtest.h>

namespace dcv::rcdc {
namespace {

BurndownConfig small_config() {
  BurndownConfig config;
  config.datacenter = topo::ClosParams{.clusters = 3,
                                       .tors_per_cluster = 3,
                                       .leaves_per_cluster = 3,
                                       .spines_per_plane = 1,
                                       .regional_spines = 4};
  config.days = 20;
  config.rcdc_deploy_day = 5;
  config.initial_faults = 25;
  config.fault_arrival_rate = 1.0;
  config.high_risk_capacity_per_day = 6;
  config.low_risk_capacity_per_day = 4;
  config.seed = 9;
  return config;
}

TEST(Burndown, ProducesOneEntryPerDay) {
  const auto series = simulate_burndown(small_config());
  ASSERT_EQ(series.size(), 20u);
  for (int day = 0; day < 20; ++day) {
    EXPECT_EQ(series[static_cast<std::size_t>(day)].day, day);
  }
}

TEST(Burndown, NoRemediationBeforeDeployDay) {
  const auto series = simulate_burndown(small_config());
  for (int day = 0; day < 5; ++day) {
    const auto& entry = series[static_cast<std::size_t>(day)];
    EXPECT_EQ(entry.remediated_today, 0u);
    EXPECT_EQ(entry.violations_detected, 0u);
  }
}

TEST(Burndown, RcdcDetectsViolationsOnDeployDay) {
  const auto series = simulate_burndown(small_config());
  EXPECT_GT(series[5].violations_detected, 0u);
  EXPECT_GT(series[5].remediated_today, 0u);
}

TEST(Burndown, ErrorsTrendDownAfterDeployment) {
  // The Figure 6 shape: totals at the end are well below the peak, and the
  // trend after deployment is downward.
  const auto series = simulate_burndown(small_config());
  const auto total = [](const BurndownDay& d) {
    return d.outstanding_high + d.outstanding_low;
  };
  std::size_t peak = 0;
  for (const auto& day : series) peak = std::max(peak, total(day));
  EXPECT_GT(peak, 0u);
  EXPECT_LT(total(series.back()), peak / 3);
  // Remediation outpaces arrivals: the day after deploy has fewer errors
  // than the deploy day.
  EXPECT_LT(total(series[8]), total(series[5]));
}

TEST(Burndown, HighRiskBurnsDownFirst) {
  // "the risk assessment helped the DevOps teams prioritize fixing high
  // risk errors quickly": remediation capacity is spent on high-risk
  // errors first, so the high-risk backlog is fully drained by the end,
  // and on any day where high-risk errors remain outstanding the day's
  // remediation ran at full high-risk capacity.
  const auto config = small_config();
  const auto series = simulate_burndown(config);
  EXPECT_EQ(series.back().outstanding_high, 0u);
  for (const auto& day : series) {
    if (day.day < config.rcdc_deploy_day) continue;
    if (day.outstanding_high > 0) {
      EXPECT_GE(day.remediated_today, config.high_risk_capacity_per_day)
          << "day " << day.day;
    }
  }
}

TEST(Burndown, FractionsAreNormalizedToPeak) {
  const auto series = simulate_burndown(small_config());
  for (const auto& day : series) {
    EXPECT_GE(day.high_fraction, 0.0);
    EXPECT_GE(day.low_fraction, 0.0);
    EXPECT_LE(day.high_fraction + day.low_fraction, 1.0 + 1e-9);
  }
}

TEST(Burndown, DeterministicForFixedSeed) {
  const auto a = simulate_burndown(small_config());
  const auto b = simulate_burndown(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outstanding_high, b[i].outstanding_high);
    EXPECT_EQ(a[i].outstanding_low, b[i].outstanding_low);
    EXPECT_EQ(a[i].violations_detected, b[i].violations_detected);
  }
}

}  // namespace
}  // namespace dcv::rcdc
