// Integration test reproducing §2.4.4 "Contracts in Action": the four link
// failures of Figure 3 produce exactly the contract violations the paper
// walks through.
#include <gtest/gtest.h>

#include <set>

#include "rcdc/contract_gen.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/trie_verifier.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class ContractsInAction : public testing::Test {
 protected:
  ContractsInAction()
      : topology_(topo::build_figure3()), metadata_(topology_) {}

  /// (device name, prefix) pairs with at least one violation.
  std::set<std::pair<std::string, std::string>> violating_pairs() {
    const routing::BgpSimulator sim(topology_);
    const SimulatorFibSource fibs(sim);
    const DatacenterValidator validator(metadata_, fibs,
                                        make_trie_verifier_factory());
    std::set<std::pair<std::string, std::string>> out;
    for (const Violation& v : validator.run().violations) {
      out.emplace(topology_.device(v.device).name,
                  v.contract.prefix.to_string());
    }
    return out;
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST_F(ContractsInAction, HealthyNetworkHasNoViolations) {
  EXPECT_TRUE(violating_pairs().empty());
}

TEST_F(ContractsInAction, Figure3FailuresMatchThePaperExactly) {
  topo::apply_figure3_failures(topology_);
  const auto violations = violating_pairs();

  const std::string prefix_a = "10.0.0.0/24";  // hosted at ToR1
  const std::string prefix_b = "10.0.1.0/24";  // hosted at ToR2
  const std::string def = "0.0.0.0/0";

  // "ToR1, A1, A2, D1, and D2 have a contract failure for Prefix_B."
  for (const char* device : {"ToR1", "A1", "A2", "D1", "D2"}) {
    EXPECT_TRUE(violations.contains({device, prefix_b})) << device;
  }
  // "ToR2, A3, A4, D3, and D4 have a similar failure for Prefix_A."
  for (const char* device : {"ToR2", "A3", "A4", "D3", "D4"}) {
    EXPECT_TRUE(violations.contains({device, prefix_a})) << device;
  }
  // "Finally, both ToR1 and ToR2 have a default contract failure."
  EXPECT_TRUE(violations.contains({"ToR1", def}));
  EXPECT_TRUE(violations.contains({"ToR2", def}));

  // "R1, R2, D3, D4, A3, and A4 have no contract failures for Prefix_B."
  for (const char* device : {"R1", "R2", "D3", "D4", "A3", "A4"}) {
    EXPECT_FALSE(violations.contains({device, prefix_b})) << device;
  }
  // And no other device has a default contract failure.
  for (const char* device : {"A1", "A2", "A3", "A4", "D1", "D2", "D3", "D4",
                             "ToR3", "ToR4"}) {
    EXPECT_FALSE(violations.contains({device, def})) << device;
  }
  // Cluster B's prefixes are unaffected end to end.
  for (const char* device : {"ToR3", "ToR4", "B1", "B2", "B3", "B4"}) {
    EXPECT_FALSE(violations.contains({device, "10.0.2.0/24"})) << device;
    EXPECT_FALSE(violations.contains({device, "10.0.3.0/24"})) << device;
  }
}

TEST_F(ContractsInAction, TorDefaultViolationShowsTwoOfFourHops) {
  topo::apply_figure3_failures(topology_);
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  const ContractGenerator generator(metadata_);
  TrieVerifier verifier;
  const auto tor1 = *topology_.find_device("ToR1");
  const auto contracts = generator.for_device(tor1);
  const auto violations = verifier.check(fibs.fetch(tor1), contracts, tor1);
  // Find the default-route violation: actual 2 hops vs expected 4.
  bool found = false;
  for (const Violation& v : violations) {
    if (v.kind == ViolationKind::kDefaultRouteMismatch) {
      EXPECT_EQ(v.actual_next_hops.size(), 2u);
      EXPECT_EQ(v.contract.expected_next_hops.size(), 4u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ContractsInAction, RepairRestoresCleanValidation) {
  topo::FaultInjector injector(topology_);
  const auto link =
      *topology_.find_link(*topology_.find_device("ToR1"),
                           *topology_.find_device("A3"));
  injector.link_down(link);
  EXPECT_FALSE(violating_pairs().empty());
  injector.repair(0);
  EXPECT_TRUE(violating_pairs().empty());
}

}  // namespace
}  // namespace dcv::rcdc
