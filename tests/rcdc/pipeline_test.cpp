#include "rcdc/pipeline.hpp"

#include <gtest/gtest.h>

#include "rcdc/flaky_fib_source.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

PipelineConfig fast_config() {
  return PipelineConfig{.puller_workers = 4,
                        .validator_workers = 4,
                        .fetch_latency_min = std::chrono::microseconds(200),
                        .fetch_latency_max = std::chrono::microseconds(800),
                        .time_scale = 0.01,
                        .seed = 5};
}

TEST(MonitoringPipeline, CleanCycleOnHealthyNetwork) {
  const auto topology = topo::build_clos(topo::ClosParams{});
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  const auto stats = pipeline.run_cycle();
  EXPECT_EQ(stats.devices, topology.device_count());
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.alerts_high + stats.alerts_low, 0u);
  EXPECT_GT(stats.contracts_checked, 0u);
  EXPECT_GT(stats.fetch_sim_total.count(), 0);
  EXPECT_GT(stats.fetch_scaled_total.count(), 0);
  EXPECT_GT(stats.wall.count(), 0);
}

TEST(MonitoringPipeline, AlertsFlowToSink) {
  auto topology = topo::build_figure3();
  topo::apply_figure3_failures(topology);
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  std::vector<std::pair<Violation, RiskLevel>> alerts;
  pipeline.set_alert_sink(
      [&](const Violation& v, const RiskAssessment& assessment) {
        alerts.emplace_back(v, assessment.level);
      });
  const auto stats = pipeline.run_cycle();
  EXPECT_GT(stats.violations, 0u);
  EXPECT_EQ(alerts.size(), stats.violations);
  EXPECT_EQ(stats.alerts_high + stats.alerts_low, stats.violations);
  // The ToR default contract failures are high risk (2 of 4 uplinks left
  // is still >1, but the Prefix_B unresolved routes at spines are
  // high-risk) — just assert both classes are computed consistently.
  std::size_t high = 0;
  for (const auto& [violation, level] : alerts) {
    if (level == RiskLevel::kHigh) ++high;
  }
  EXPECT_EQ(high, stats.alerts_high);
}

TEST(MonitoringPipeline, FetchLatencySimulatedInProductionRange) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  const auto stats = pipeline.run_cycle();
  // Mean simulated fetch latency must sit in the configured 200-800us
  // band (the paper's 200-800ms, scaled).
  const auto mean_ns = stats.fetch_sim_total.count() /
                       static_cast<std::int64_t>(stats.devices);
  EXPECT_GE(mean_ns, 200'000);
  EXPECT_LE(mean_ns, 800'000);
}

TEST(MonitoringPipeline, SingleWorkerConfigWorks) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  PipelineConfig config = fast_config();
  config.puller_workers = 1;
  config.validator_workers = 1;
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              config);
  EXPECT_EQ(pipeline.run_cycle().devices, topology.device_count());
}

TEST(MonitoringPipeline, BoundedQueueBackpressuresWithoutLoss) {
  // Capacity 1 forces every push to wait for a pop: the cycle must still
  // validate every device exactly once.
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  PipelineConfig config = fast_config();
  config.queue_capacity = 1;
  config.puller_workers = 8;
  config.validator_workers = 2;
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              config);
  const auto stats = pipeline.run_cycle();
  EXPECT_EQ(stats.devices, topology.device_count());
  EXPECT_EQ(stats.devices_failed, 0u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_GT(stats.contracts_checked, 0u);
}

TEST(MonitoringPipeline, StatsMeansMatchTotals) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  const auto stats = pipeline.run_cycle();
  ASSERT_GT(stats.devices, 0u);
  EXPECT_EQ(stats.fetch_sim_mean().count(),
            stats.fetch_sim_total.count() /
                static_cast<std::int64_t>(stats.devices));
  EXPECT_EQ(stats.fetch_scaled_mean().count(),
            stats.fetch_scaled_total.count() /
                static_cast<std::int64_t>(stats.devices));
  EXPECT_EQ(stats.validate_mean().count(),
            stats.validate_total.count() /
                static_cast<std::int64_t>(stats.devices));
  EXPECT_DOUBLE_EQ(stats.coverage(), 1.0);
}

// The bugfix this PR carries: `wall` is measured on the real (scaled)
// clock while the old fetch_total summed *pre-scale* simulated latencies —
// mixing the two inflated utilization ratios by 1/time_scale. Both totals
// are now explicit; assert their exact relationship. Each device's scaled
// sleep is duration_cast-truncated from simulated*time_scale, so the sum
// differs from fetch_sim_total*time_scale by < 1ns per fetched device.
TEST(MonitoringPipeline, ScaledAndSimulatedFetchTotalsRelate) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const auto config = fast_config();
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              config);
  const auto stats = pipeline.run_cycle();
  ASSERT_EQ(stats.devices_failed, 0u);

  const double expected_scaled =
      static_cast<double>(stats.fetch_sim_total.count()) * config.time_scale;
  const double actual_scaled =
      static_cast<double>(stats.fetch_scaled_total.count());
  EXPECT_LE(actual_scaled, expected_scaled);
  EXPECT_GE(actual_scaled,
            expected_scaled - static_cast<double>(stats.devices));

  // With time_scale < 1, the simulated total is strictly larger than the
  // scaled one, and only the scaled total can sensibly relate to wall.
  EXPECT_GT(stats.fetch_sim_total, stats.fetch_scaled_total);
  // The cycle cannot finish faster than the scaled fetch work spread
  // across the puller pool.
  EXPECT_GE(stats.wall.count() * static_cast<std::int64_t>(
                                     config.puller_workers),
            stats.fetch_scaled_total.count());
}

// Acceptance: at a 20% transient-failure rate with retries enabled, a full
// cycle over a 3-tier Clos completes with 100% device coverage and zero
// spurious violations vs. the fault-free baseline.
TEST(MonitoringPipeline, TwentyPercentFlakinessWithRetriesKeepsFullCoverage) {
  const auto topology = topo::build_clos(topo::ClosParams{});
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);

  const auto baseline = [&] {
    MonitoringPipeline pipeline(metadata, inner,
                                make_trie_verifier_factory(), fast_config());
    return pipeline.run_cycle();
  }();
  ASSERT_EQ(baseline.violations, 0u);

  const FlakyFibSource flaky(inner,
                             FlakyConfig{.transient_rate = 0.2, .seed = 31});
  ManualFetchClock clock;
  const ResilientFibSource hardened(
      flaky,
      ResilienceConfig{.retry = {.max_attempts = 6,
                                 .initial_backoff =
                                     std::chrono::milliseconds(50)},
                       .breaker = {.failure_threshold = 10,
                                   .cool_down = std::chrono::seconds(30)},
                       .seed = 3},
      &clock);
  MonitoringPipeline pipeline(metadata, hardened,
                              make_trie_verifier_factory(), fast_config());
  const auto stats = pipeline.run_cycle();
  EXPECT_EQ(stats.devices, baseline.devices);
  EXPECT_EQ(stats.devices_failed, 0u);
  EXPECT_DOUBLE_EQ(stats.coverage(), 1.0);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.violations, baseline.violations);  // zero spurious
  EXPECT_EQ(stats.violations_degraded, 0u);
}

// Acceptance: with retries disabled the cycle still completes, reporting
// the failed devices in PipelineStats rather than throwing.
TEST(MonitoringPipeline, FlakinessWithoutRetriesCompletesWithPartialCoverage) {
  const auto topology = topo::build_clos(topo::ClosParams{});
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyFibSource flaky(inner,
                             FlakyConfig{.transient_rate = 0.2, .seed = 31});
  MonitoringPipeline pipeline(metadata, flaky, make_trie_verifier_factory(),
                              fast_config());
  const auto stats = pipeline.run_cycle();
  EXPECT_EQ(stats.devices, topology.device_count());
  EXPECT_GT(stats.devices_failed, 0u);
  EXPECT_LT(stats.coverage(), 1.0);
  EXPECT_EQ(stats.retries, 0u);
  // Transient failures yield no table at all, so nothing spurious is
  // validated.
  EXPECT_EQ(stats.violations, 0u);
}

TEST(MonitoringPipeline, GarbageTablesProduceDegradedConfidenceAlerts) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyFibSource flaky(inner,
                             FlakyConfig{.truncate_rate = 1.0, .seed = 7});
  MonitoringPipeline pipeline(metadata, flaky, make_trie_verifier_factory(),
                              fast_config());
  std::size_t degraded_alerts = 0;
  pipeline.set_alert_sink(
      [&](const Violation&, const RiskAssessment& assessment) {
        if (assessment.degraded_confidence) ++degraded_alerts;
      });
  const auto stats = pipeline.run_cycle();
  // Every table was truncated garbage: violations exist and every alert is
  // flagged lower-confidence.
  EXPECT_GT(stats.violations, 0u);
  EXPECT_EQ(stats.violations_degraded, stats.violations);
  EXPECT_EQ(degraded_alerts, stats.violations);
  EXPECT_EQ(stats.devices_failed, 0u);
}

// Acceptance: a persistently dead device trips the breaker after the
// configured threshold, subsequent cycles skip it within the cool-down
// (counted as devices_failed), and a half-open probe restores it once the
// source recovers.
TEST(MonitoringPipeline, BreakerSkipsDeadDeviceAcrossCyclesThenRecovers) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  FlakyFibSource flaky(inner, FlakyConfig{.seed = 1});
  const topo::DeviceId dead = *topology.find_device("ToR1");
  flaky.mark_dead(dead);

  ManualFetchClock clock;
  const ResilientFibSource hardened(
      flaky,
      ResilienceConfig{.retry = {.max_attempts = 2,
                                 .initial_backoff =
                                     std::chrono::milliseconds(10)},
                       .breaker = {.failure_threshold = 2,
                                   .cool_down = std::chrono::hours(1)},
                       .serve_stale = false},
      &clock);
  MonitoringPipeline pipeline(metadata, hardened,
                              make_trie_verifier_factory(), fast_config());

  const auto first = pipeline.run_cycle();
  EXPECT_EQ(first.devices_failed, 1u);
  EXPECT_EQ(first.breaker_opens, 0u);

  const auto second = pipeline.run_cycle();  // reaches the threshold
  EXPECT_EQ(second.devices_failed, 1u);
  EXPECT_EQ(second.breaker_opens, 1u);
  EXPECT_EQ(hardened.breaker_state(dead), BreakerState::kOpen);

  // Within the cool-down the dead device is skipped, not re-pulled.
  const auto flaky_calls_before = flaky.records().size();
  const auto third = pipeline.run_cycle();
  EXPECT_EQ(third.devices_failed, 1u);
  EXPECT_EQ(third.retries, 0u);
  EXPECT_EQ(flaky.records().size(), flaky_calls_before);
  EXPECT_GE(hardened.stats().short_circuits, 1u);

  // The device recovers; after the cool-down a half-open probe restores it.
  flaky.revive(dead);
  clock.advance(std::chrono::hours(2));
  const auto fourth = pipeline.run_cycle();
  EXPECT_EQ(fourth.devices_failed, 0u);
  EXPECT_DOUBLE_EQ(fourth.coverage(), 1.0);
  EXPECT_EQ(hardened.breaker_state(dead), BreakerState::kClosed);
  EXPECT_GE(hardened.stats().half_open_probes, 1u);
}

TEST(MonitoringPipeline, StaleFallbackCountsDevicesStale) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  FlakyFibSource flaky(inner, FlakyConfig{.seed = 1});
  const topo::DeviceId victim = *topology.find_device("ToR1");

  ManualFetchClock clock;
  const ResilientFibSource hardened(
      flaky,
      ResilienceConfig{.retry = {.max_attempts = 2,
                                 .initial_backoff =
                                     std::chrono::milliseconds(10)},
                       .breaker = {.failure_threshold = 100,
                                   .cool_down = std::chrono::seconds(30)},
                       .serve_stale = true},
      &clock);
  MonitoringPipeline pipeline(metadata, hardened,
                              make_trie_verifier_factory(), fast_config());

  const auto warm = pipeline.run_cycle();  // populate every cache
  ASSERT_EQ(warm.devices_failed, 0u);

  flaky.mark_dead(victim);
  const auto degraded = pipeline.run_cycle();
  // The dead device's last good table is served stale: coverage holds, the
  // device is counted stale, and (the network being healthy when cached)
  // no violations appear.
  EXPECT_EQ(degraded.devices_failed, 0u);
  EXPECT_EQ(degraded.devices_stale, 1u);
  EXPECT_DOUBLE_EQ(degraded.coverage(), 1.0);
  EXPECT_EQ(degraded.violations, 0u);
}

TEST(MonitoringPipeline, RepeatedCyclesAreStable) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  const auto first = pipeline.run_cycle();
  const auto second = pipeline.run_cycle();
  EXPECT_EQ(first.devices, second.devices);
  EXPECT_EQ(first.violations, second.violations);
  // Incremental mode (the default): cycle 1 verifies everything, cycle 2
  // finds every fingerprint unchanged and replays cached verdicts without
  // checking a single contract.
  EXPECT_EQ(first.devices_revalidated, first.devices);
  EXPECT_EQ(first.devices_skipped, 0u);
  EXPECT_EQ(second.devices_revalidated, 0u);
  EXPECT_EQ(second.devices_skipped, second.devices);
  EXPECT_EQ(second.contracts_checked, 0u);
}

TEST(MonitoringPipeline, NonIncrementalModeRechecksEveryCycle) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  auto config = fast_config();
  config.incremental = false;
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              config);
  const auto first = pipeline.run_cycle();
  const auto second = pipeline.run_cycle();
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.contracts_checked, second.contracts_checked);
  EXPECT_GT(second.contracts_checked, 0u);
  EXPECT_EQ(second.devices_revalidated, second.devices);
  EXPECT_EQ(second.devices_skipped, 0u);
}

}  // namespace
}  // namespace dcv::rcdc
