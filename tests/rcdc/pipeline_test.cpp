#include "rcdc/pipeline.hpp"

#include <gtest/gtest.h>

#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

PipelineConfig fast_config() {
  return PipelineConfig{.puller_workers = 4,
                        .validator_workers = 4,
                        .fetch_latency_min = std::chrono::microseconds(200),
                        .fetch_latency_max = std::chrono::microseconds(800),
                        .time_scale = 0.01,
                        .seed = 5};
}

TEST(MonitoringPipeline, CleanCycleOnHealthyNetwork) {
  const auto topology = topo::build_clos(topo::ClosParams{});
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  const auto stats = pipeline.run_cycle();
  EXPECT_EQ(stats.devices, topology.device_count());
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.alerts_high + stats.alerts_low, 0u);
  EXPECT_GT(stats.contracts_checked, 0u);
  EXPECT_GT(stats.fetch_total.count(), 0);
  EXPECT_GT(stats.wall.count(), 0);
}

TEST(MonitoringPipeline, AlertsFlowToSink) {
  auto topology = topo::build_figure3();
  topo::apply_figure3_failures(topology);
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  std::vector<std::pair<Violation, RiskLevel>> alerts;
  pipeline.set_alert_sink(
      [&](const Violation& v, const RiskAssessment& assessment) {
        alerts.emplace_back(v, assessment.level);
      });
  const auto stats = pipeline.run_cycle();
  EXPECT_GT(stats.violations, 0u);
  EXPECT_EQ(alerts.size(), stats.violations);
  EXPECT_EQ(stats.alerts_high + stats.alerts_low, stats.violations);
  // The ToR default contract failures are high risk (2 of 4 uplinks left
  // is still >1, but the Prefix_B unresolved routes at spines are
  // high-risk) — just assert both classes are computed consistently.
  std::size_t high = 0;
  for (const auto& [violation, level] : alerts) {
    if (level == RiskLevel::kHigh) ++high;
  }
  EXPECT_EQ(high, stats.alerts_high);
}

TEST(MonitoringPipeline, FetchLatencySimulatedInProductionRange) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  const auto stats = pipeline.run_cycle();
  // Mean simulated fetch latency must sit in the configured 200-800us
  // band (the paper's 200-800ms, scaled).
  const auto mean_ns = stats.fetch_total.count() /
                       static_cast<std::int64_t>(stats.devices);
  EXPECT_GE(mean_ns, 200'000);
  EXPECT_LE(mean_ns, 800'000);
}

TEST(MonitoringPipeline, SingleWorkerConfigWorks) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  PipelineConfig config = fast_config();
  config.puller_workers = 1;
  config.validator_workers = 1;
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              config);
  EXPECT_EQ(pipeline.run_cycle().devices, topology.device_count());
}

TEST(MonitoringPipeline, RepeatedCyclesAreStable) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              fast_config());
  const auto first = pipeline.run_cycle();
  const auto second = pipeline.run_cycle();
  EXPECT_EQ(first.devices, second.devices);
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.contracts_checked, second.contracts_checked);
}

}  // namespace
}  // namespace dcv::rcdc
