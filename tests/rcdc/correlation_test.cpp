#include "rcdc/correlation.hpp"

#include <gtest/gtest.h>

#include "rcdc/fib_source.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

std::vector<Violation> validate(const topo::Topology& topology,
                                const topo::MetadataService& metadata) {
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata, fibs,
                                      make_trie_verifier_factory());
  return validator.run(2).violations;
}

TEST(Correlation, EmptyInputGivesNoGroups) {
  const auto topology = topo::build_figure3();
  EXPECT_TRUE(correlate({}, topology).empty());
}

TEST(Correlation, Figure3FailuresCollapseToTheFourLinks) {
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  topo::apply_figure3_failures(topology);
  const auto violations = validate(topology, metadata);
  ASSERT_GT(violations.size(), 8u);

  const auto groups = correlate(violations, topology);
  // Fewer causes than violations (endpoint violations collapse onto their
  // links; upstream devices that merely lost a specific route remain
  // per-device suspicions — attribution is local, like the triage it is
  // built on).
  EXPECT_LT(groups.size(), violations.size());

  // The four downed links each anchor a replace-cable group.
  std::size_t cable_groups = 0;
  std::size_t grouped_violations = 0;
  for (const RootCauseGroup& group : groups) {
    grouped_violations += group.violations.size();
    if (group.action == RemediationAction::kReplaceCable) {
      ++cable_groups;
      ASSERT_TRUE(group.link.has_value());
      EXPECT_EQ(topology.link(*group.link).link_state,
                topo::LinkState::kDown);
      EXPECT_NE(group.cause.find("operationally down"), std::string::npos);
    }
  }
  EXPECT_EQ(cable_groups, 4u);
  // Every violation lands in exactly one group.
  EXPECT_EQ(grouped_violations, violations.size());
}

TEST(Correlation, AdminShutGroupsAsUnshut) {
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  topo::FaultInjector faults(topology);
  faults.bgp_admin_shutdown(*topology.find_link(
      *topology.find_device("ToR1"), *topology.find_device("A1")));
  const auto groups = correlate(validate(topology, metadata), topology);
  ASSERT_FALSE(groups.empty());
  bool found = false;
  for (const RootCauseGroup& group : groups) {
    if (group.action == RemediationAction::kUnshutAndMonitor) {
      EXPECT_NE(group.cause.find("administratively shut"),
                std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Correlation, DeviceBugGroupsPerDevice) {
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  topo::FaultInjector faults(topology);
  const auto tor1 = *topology.find_device("ToR1");
  faults.device_fault(tor1, topo::DeviceFaultKind::kEcmpSingleNextHop);
  const routing::BgpSimulator sim(topology, &faults);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata, fibs,
                                      make_trie_verifier_factory());
  const auto violations = validator.run(2).violations;
  ASSERT_FALSE(violations.empty());

  const auto groups = correlate(violations, topology);
  // Dozens of per-prefix violations, one suspected-device cause.
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].action, RemediationAction::kEscalateToOperator);
  EXPECT_NE(groups[0].cause.find("ToR1"), std::string::npos);
  EXPECT_EQ(groups[0].violations.size(), violations.size());
}

TEST(Correlation, HighRiskGroupsSortFirst) {
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  topo::apply_figure3_failures(topology);
  const auto groups = correlate(validate(topology, metadata), topology);
  ASSERT_GT(groups.size(), 1u);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].risk == RiskLevel::kHigh) {
      EXPECT_EQ(groups[i - 1].risk, RiskLevel::kHigh) << i;
    }
  }
}

}  // namespace
}  // namespace dcv::rcdc
