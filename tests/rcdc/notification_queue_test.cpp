// Tests for the bounded MPMC NotificationQueue, in particular the shutdown
// contract: close() must release producers blocked on a full queue (their
// push() returns false) and consumers blocked on an empty one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "rcdc/notification_queue.hpp"

namespace dcv::rcdc {
namespace {

TEST(NotificationQueue, FifoOrderAndSize) {
  NotificationQueue<int> queue(8);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(NotificationQueue, CapacityIsClampedToAtLeastOne) {
  NotificationQueue<int> queue(0);
  EXPECT_TRUE(queue.push(7));  // would deadlock if capacity stayed 0
  EXPECT_EQ(queue.pop(), std::optional<int>(7));
}

TEST(NotificationQueue, PopDrainsRemainingItemsAfterClose) {
  NotificationQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));  // closed: rejected immediately
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(NotificationQueue, CloseReleasesProducersBlockedOnFullQueue) {
  NotificationQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));  // fill to capacity

  constexpr int kProducers = 4;
  std::atomic<int> started{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&queue, &started, &rejected, i] {
      started.fetch_add(1);
      if (!queue.push(i + 1)) rejected.fetch_add(1);
    });
  }
  // Let every producer reach (and block in) push() against the full queue.
  while (started.load() < kProducers) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  queue.close();
  for (auto& producer : producers) producer.join();  // must not deadlock
  EXPECT_EQ(rejected.load(), kProducers);

  // The item enqueued before close is still deliverable.
  EXPECT_EQ(queue.pop(), std::optional<int>(0));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(NotificationQueue, CloseReleasesConsumersBlockedOnEmptyQueue) {
  NotificationQueue<int> queue(4);
  std::atomic<int> woke_empty{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&queue, &woke_empty] {
      if (queue.pop() == std::nullopt) woke_empty.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(woke_empty.load(), 3);
}

TEST(NotificationQueue, BackpressuredProducerDeliversEverythingInOrder) {
  NotificationQueue<int> queue(2);
  constexpr int kItems = 200;
  std::thread producer([&queue] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.push(i));
  });
  for (int i = 0; i < kItems; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  producer.join();
  queue.close();
  EXPECT_EQ(queue.pop(), std::nullopt);
}

}  // namespace
}  // namespace dcv::rcdc
