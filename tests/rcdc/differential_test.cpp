// Differential property test: the trie engine and the linear-scan baseline
// must agree *exactly* on randomized inputs. The two implementations share
// no traversal code — the trie collects related rules from a prefix tree
// and early-exits on interval coverage, the linear engine scans the whole
// FIB — so agreement over thousands of seeded random FIB/contract pairs is
// strong evidence that the trie's candidate collection, counting-sort walk
// order, shadowing logic, and stop condition are all faithful.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "rcdc/linear_verifier.hpp"
#include "rcdc/trie_verifier.hpp"

namespace dcv::rcdc {
namespace {

using net::Ipv4Address;
using net::Prefix;

/// Canonical ordering so both engines' violation vectors can be compared as
/// sets regardless of emission order.
void canonicalize(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.contract.prefix, a.rule_prefix, a.kind,
                              a.actual_next_hops) <
                     std::tie(b.contract.prefix, b.rule_prefix, b.kind,
                              b.actual_next_hops);
            });
}

Prefix random_prefix(std::mt19937_64& rng) {
  // Lengths clustered in the datacenter-realistic band but covering the
  // extremes: /0 default, /8 aggregates, /32 host routes.
  static constexpr int kLengths[] = {0, 8, 16, 20, 22, 24, 24, 26, 28, 32};
  std::uniform_int_distribution<std::size_t> length_index(
      0, std::size(kLengths) - 1);
  std::uniform_int_distribution<std::uint32_t> bits(0, 0xFFFFFFFFu);
  // Small address pool => dense nesting/overlap between rules and contracts.
  const std::uint32_t base = 0x0A000000u | (bits(rng) & 0x0003FFFFu);
  return Prefix(Ipv4Address(base), kLengths[length_index(rng)]);
}

std::vector<topo::DeviceId> random_hops(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> count(0, 3);
  std::uniform_int_distribution<topo::DeviceId> hop(1, 6);
  std::vector<topo::DeviceId> hops;
  for (int i = count(rng); i > 0; --i) hops.push_back(hop(rng));
  std::sort(hops.begin(), hops.end());
  hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
  return hops;
}

routing::ForwardingTable random_fib(std::mt19937_64& rng) {
  routing::ForwardingTable fib;
  std::uniform_int_distribution<int> rule_count(0, 24);
  std::bernoulli_distribution with_default(0.8);
  std::bernoulli_distribution connected(0.1);
  if (with_default(rng)) {
    fib.add(routing::Rule{.prefix = Prefix::default_route(),
                          .next_hops = random_hops(rng)});
  }
  for (int i = rule_count(rng); i > 0; --i) {
    fib.add(routing::Rule{.prefix = random_prefix(rng),
                          .next_hops = random_hops(rng),
                          .connected = connected(rng)});
  }
  return fib;
}

std::vector<Contract> random_contracts(std::mt19937_64& rng,
                                       const routing::ForwardingTable& fib) {
  std::vector<Contract> contracts;
  std::bernoulli_distribution with_default(0.7);
  std::bernoulli_distribution from_fib(0.5);
  std::bernoulli_distribution subset_mode(0.2);
  std::bernoulli_distribution allow_default(0.3);
  std::uniform_int_distribution<int> count(1, 8);
  if (with_default(rng)) {
    auto hops = random_hops(rng);
    const std::size_t n = hops.size();
    contracts.push_back(Contract{.kind = ContractKind::kDefault,
                                 .prefix = Prefix::default_route(),
                                 .expected_next_hops = std::move(hops),
                                 .mode = MatchMode::kExactSet,
                                 .min_next_hops = n});
  }
  for (int i = count(rng); i > 0; --i) {
    // Half the contracts target prefixes the FIB actually holds (so exact
    // matches, shadowing, and nesting all get exercised), half are fresh
    // random ranges (unreachable/partially-covered cases).
    Prefix prefix = random_prefix(rng);
    if (from_fib(rng) && !fib.rules().empty()) {
      std::uniform_int_distribution<std::size_t> pick(0,
                                                      fib.rules().size() - 1);
      prefix = fib.rules()[pick(rng)].prefix;
    }
    if (prefix.is_default()) continue;  // default handled above
    auto hops = random_hops(rng);
    const bool subset = subset_mode(rng) && !hops.empty();
    contracts.push_back(Contract{
        .kind = ContractKind::kSpecific,
        .prefix = prefix,
        .expected_next_hops = std::move(hops),
        .mode = subset ? MatchMode::kSubsetAtLeast : MatchMode::kExactSet,
        .min_next_hops = 1,
        .allow_default_route = allow_default(rng)});
  }
  return contracts;
}

TEST(DifferentialVerification, TrieAgreesWithLinearOnRandomInputs) {
  std::mt19937_64 rng(0xD1FFu);
  TrieVerifier trie;      // one instance, reused across every iteration —
  LinearVerifier linear;  // exercises arena retention between "devices"
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const routing::ForwardingTable fib = random_fib(rng);
    const std::vector<Contract> contracts = random_contracts(rng, fib);
    const auto device = static_cast<topo::DeviceId>(iteration % 7);
    auto from_trie = trie.check(fib, contracts, device);
    auto from_linear = linear.check(fib, contracts, device);
    canonicalize(from_trie);
    canonicalize(from_linear);
    ASSERT_EQ(from_trie, from_linear)
        << "engines diverged at iteration " << iteration;
  }
}

TEST(DifferentialVerification, ReusedVerifierMatchesFreshInstances) {
  // Arena reuse must be invisible: a verifier that has processed many
  // unrelated FIBs answers exactly like a brand-new one.
  std::mt19937_64 rng(0xBEEFu);
  TrieVerifier reused;
  for (int iteration = 0; iteration < 300; ++iteration) {
    const routing::ForwardingTable fib = random_fib(rng);
    const std::vector<Contract> contracts = random_contracts(rng, fib);
    TrieVerifier fresh;
    auto from_reused = reused.check(fib, contracts, /*device=*/0);
    auto from_fresh = fresh.check(fib, contracts, /*device=*/0);
    ASSERT_EQ(from_reused, from_fresh)
        << "arena reuse changed results at iteration " << iteration;
  }
}

}  // namespace
}  // namespace dcv::rcdc
