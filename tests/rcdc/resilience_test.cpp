#include <chrono>
#include <map>

#include <gtest/gtest.h>

#include "rcdc/flaky_fib_source.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/faults.hpp"

namespace dcv::rcdc {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

routing::ForwardingTable simple_table() {
  routing::ForwardingTable table;
  table.add(routing::Rule{.prefix = net::Prefix::default_route(),
                          .next_hops = {1, 2}});
  return table;
}

/// Test double whose failures are scripted per device: fails the next N
/// attempts with a given kind, then succeeds. No randomness, no clock.
class ScriptedFibSource final : public FibSource {
 public:
  explicit ScriptedFibSource(routing::ForwardingTable table)
      : table_(std::move(table)) {}

  void fail_next(topo::DeviceId device, int count, FetchErrorKind kind) {
    remaining_[device] = count;
    kind_[device] = kind;
  }

  [[nodiscard]] int calls(topo::DeviceId device) const {
    const auto it = calls_.find(device);
    return it == calls_.end() ? 0 : it->second;
  }

  [[nodiscard]] FetchOutcome try_fetch(topo::DeviceId device) const override {
    ++calls_[device];
    auto it = remaining_.find(device);
    if (it != remaining_.end() && it->second != 0) {
      if (it->second > 0) --it->second;
      return FetchOutcome::failure(kind_.at(device));
    }
    return FetchOutcome::success(table_);
  }

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    FetchOutcome outcome = try_fetch(device);
    if (!outcome.ok()) throw FetchError(*outcome.error, "scripted failure");
    return std::move(*outcome.table);
  }

 private:
  routing::ForwardingTable table_;
  mutable std::map<topo::DeviceId, int> remaining_;  // -1 = fail forever
  mutable std::map<topo::DeviceId, int> calls_;
  std::map<topo::DeviceId, FetchErrorKind> kind_;
};

// ---------------------------------------------------------------- flaky --

TEST(FlakyFibSource, ZeroRatesNeverFail) {
  const auto topology = topo::build_figure3();
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyFibSource flaky(inner, FlakyConfig{.seed = 3});
  for (const topo::Device& d : topology.devices()) {
    const auto outcome = flaky.try_fetch(d.id);
    EXPECT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome.has_table());
    EXPECT_EQ(*outcome.table, sim.fib(d.id));
  }
  EXPECT_TRUE(flaky.records().empty());
}

TEST(FlakyFibSource, SameSeedSameFailureSchedule) {
  const auto topology = topo::build_figure3();
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyConfig config{.timeout_rate = 0.1,
                           .transient_rate = 0.3,
                           .truncate_rate = 0.1,
                           .seed = 17};
  const FlakyFibSource a(inner, config);
  const FlakyFibSource b(inner, config);
  for (int round = 0; round < 20; ++round) {
    for (const topo::Device& d : topology.devices()) {
      const auto oa = a.try_fetch(d.id);
      const auto ob = b.try_fetch(d.id);
      EXPECT_EQ(oa.error, ob.error);
      EXPECT_EQ(oa.has_table(), ob.has_table());
    }
  }
  const auto ra = a.records();
  const auto rb = b.records();
  ASSERT_EQ(ra.size(), rb.size());
  EXPECT_GT(ra.size(), 0u);
}

TEST(FlakyFibSource, TruncatedTablesAreSmallerAndTagged) {
  const auto topology = topo::build_figure3();
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyFibSource flaky(inner,
                             FlakyConfig{.truncate_rate = 1.0, .seed = 5});
  const topo::DeviceId device = *topology.find_device("ToR1");
  const auto outcome = flaky.try_fetch(device);
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(*outcome.error, FetchErrorKind::kTruncatedTable);
  ASSERT_TRUE(outcome.has_table());
  EXPECT_TRUE(outcome.degraded());
  const auto full = sim.fib(device);
  EXPECT_LT(outcome.table->size(), full.size());
  EXPECT_GE(outcome.table->size(), 1u);
}

TEST(FlakyFibSource, CorruptedTablesDifferAndTagged) {
  const auto topology = topo::build_figure3();
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyFibSource flaky(inner,
                             FlakyConfig{.corrupt_rate = 1.0, .seed = 5});
  const topo::DeviceId device = *topology.find_device("ToR1");
  const auto outcome = flaky.try_fetch(device);
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(*outcome.error, FetchErrorKind::kCorruptedEntry);
  ASSERT_TRUE(outcome.has_table());
  EXPECT_NE(*outcome.table, sim.fib(device));
}

TEST(FlakyFibSource, LegacyFetchThrowsOnInjectedFailure) {
  const auto topology = topo::build_figure3();
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyFibSource flaky(inner,
                             FlakyConfig{.transient_rate = 1.0, .seed = 1});
  EXPECT_THROW((void)flaky.fetch(0), FetchError);
}

TEST(FlakyFibSource, DeadDeviceAlwaysUnreachableUntilRevived) {
  const auto topology = topo::build_figure3();
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  FlakyFibSource flaky(inner, FlakyConfig{.seed = 1});
  flaky.mark_dead(3);
  for (int i = 0; i < 5; ++i) {
    const auto outcome = flaky.try_fetch(3);
    ASSERT_TRUE(outcome.error.has_value());
    EXPECT_EQ(*outcome.error, FetchErrorKind::kUnreachable);
    EXPECT_FALSE(outcome.has_table());
  }
  flaky.revive(3);
  EXPECT_TRUE(flaky.try_fetch(3).ok());
}

TEST(FlakyFibSource, RecordsComposeWithFaultInjectorGroundTruth) {
  // Network-layer faults (FaultInjector) and fetch-layer faults
  // (FlakyFibSource) are recorded separately; together they explain both
  // the contract violations and the coverage gaps a run observes.
  auto topology = topo::build_figure3();
  topo::FaultInjector injector(topology);
  injector.link_down(0);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  FlakyFibSource flaky(inner, FlakyConfig{.seed = 2});
  flaky.mark_dead(*topology.find_device("ToR2"));
  (void)flaky.try_fetch(*topology.find_device("ToR2"));
  ASSERT_EQ(injector.records().size(), 1u);
  ASSERT_EQ(flaky.records().size(), 1u);
  const std::string fetch_fault = flaky.records()[0].to_string(topology);
  EXPECT_NE(fetch_fault.find("fetch-unreachable"), std::string::npos);
  EXPECT_NE(fetch_fault.find("ToR2"), std::string::npos);
  EXPECT_NE(injector.records()[0].to_string(topology).find("link-down"),
            std::string::npos);
}

// ------------------------------------------------------------- resilient --

ResilienceConfig fast_resilience() {
  return ResilienceConfig{
      .retry = {.max_attempts = 3,
                .initial_backoff = milliseconds(100),
                .backoff_multiplier = 2.0,
                .max_backoff = seconds(2),
                .jitter = 0.2,
                .fetch_deadline = seconds(60)},
      .breaker = {.failure_threshold = 3, .cool_down = seconds(30)},
      .serve_stale = true,
      .seed = 9};
}

TEST(ResilientFibSource, RetriesUntilSuccess) {
  ScriptedFibSource inner(simple_table());
  inner.fail_next(0, 2, FetchErrorKind::kTransient);
  ManualFetchClock clock;
  const ResilientFibSource source(inner, fast_resilience(), &clock);
  const auto outcome = source.try_fetch(0);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_FALSE(outcome.stale);
  EXPECT_EQ(inner.calls(0), 3);
  EXPECT_EQ(source.stats().retries, 2u);
}

TEST(ResilientFibSource, BackoffIsExponentialWithBoundedJitter) {
  ScriptedFibSource inner(simple_table());
  inner.fail_next(0, 2, FetchErrorKind::kTransient);
  ManualFetchClock clock;
  const ResilientFibSource source(inner, fast_resilience(), &clock);
  const auto before = clock.now();
  ASSERT_TRUE(source.try_fetch(0).ok());
  const auto slept = clock.now() - before;
  // Two backoffs of nominally 100ms and 200ms, each jittered by ±20%.
  EXPECT_GE(slept, milliseconds(240));
  EXPECT_LE(slept, milliseconds(360));
}

TEST(ResilientFibSource, DeadlineStopsRetrying) {
  ScriptedFibSource inner(simple_table());
  inner.fail_next(0, -1, FetchErrorKind::kTimeout);
  auto config = fast_resilience();
  config.retry.max_attempts = 10;
  config.retry.fetch_deadline = milliseconds(150);
  config.serve_stale = false;
  ManualFetchClock clock;
  const ResilientFibSource source(inner, config, &clock);
  const auto outcome = source.try_fetch(0);
  EXPECT_FALSE(outcome.ok());
  // First attempt + one ~100ms backoff fit the budget; the ~200ms second
  // backoff would overrun it, so exactly two attempts run.
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(*outcome.error, FetchErrorKind::kTimeout);
}

TEST(ResilientFibSource, BreakerTripsAfterThresholdAndShortCircuits) {
  ScriptedFibSource inner(simple_table());
  inner.fail_next(0, -1, FetchErrorKind::kUnreachable);
  auto config = fast_resilience();
  config.retry.max_attempts = 2;
  config.serve_stale = false;
  ManualFetchClock clock;
  const ResilientFibSource source(inner, config, &clock);

  // Three exhausted fetches reach the threshold; the third trips the
  // breaker.
  for (int i = 0; i < 2; ++i) {
    const auto outcome = source.try_fetch(0);
    EXPECT_FALSE(outcome.ok());
    EXPECT_FALSE(outcome.breaker_tripped);
    EXPECT_EQ(source.breaker_state(0), BreakerState::kClosed);
  }
  const auto tripping = source.try_fetch(0);
  EXPECT_FALSE(tripping.ok());
  EXPECT_TRUE(tripping.breaker_tripped);
  EXPECT_EQ(source.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(source.stats().breaker_opens, 1u);

  // While open (cool-down not elapsed) the device is never contacted.
  const int calls_before = inner.calls(0);
  const auto skipped = source.try_fetch(0);
  EXPECT_FALSE(skipped.ok());
  EXPECT_TRUE(skipped.breaker_open);
  EXPECT_EQ(skipped.attempts, 0u);
  EXPECT_EQ(*skipped.error, FetchErrorKind::kUnreachable);
  EXPECT_EQ(inner.calls(0), calls_before);
  EXPECT_GE(source.stats().short_circuits, 1u);
}

TEST(ResilientFibSource, HalfOpenProbeRestoresRecoveredDevice) {
  ScriptedFibSource inner(simple_table());
  inner.fail_next(0, -1, FetchErrorKind::kUnreachable);
  auto config = fast_resilience();
  config.retry.max_attempts = 1;
  config.breaker.failure_threshold = 2;
  config.serve_stale = false;
  ManualFetchClock clock;
  const ResilientFibSource source(inner, config, &clock);

  (void)source.try_fetch(0);
  (void)source.try_fetch(0);
  ASSERT_EQ(source.breaker_state(0), BreakerState::kOpen);

  // Device recovers; after the cool-down one half-open probe succeeds and
  // closes the breaker.
  inner.fail_next(0, 0, FetchErrorKind::kUnreachable);
  clock.advance(config.breaker.cool_down + seconds(1));
  const auto probe = source.try_fetch(0);
  EXPECT_TRUE(probe.ok());
  EXPECT_EQ(probe.attempts, 1u);
  EXPECT_EQ(source.breaker_state(0), BreakerState::kClosed);
  EXPECT_EQ(source.stats().half_open_probes, 1u);
  EXPECT_TRUE(source.try_fetch(0).ok());
}

TEST(ResilientFibSource, FailedProbeReopensBreaker) {
  ScriptedFibSource inner(simple_table());
  inner.fail_next(0, -1, FetchErrorKind::kUnreachable);
  auto config = fast_resilience();
  config.retry.max_attempts = 1;
  config.breaker.failure_threshold = 2;
  config.serve_stale = false;
  ManualFetchClock clock;
  const ResilientFibSource source(inner, config, &clock);

  (void)source.try_fetch(0);
  (void)source.try_fetch(0);
  ASSERT_EQ(source.breaker_state(0), BreakerState::kOpen);
  clock.advance(config.breaker.cool_down + seconds(1));
  const auto probe = source.try_fetch(0);
  EXPECT_FALSE(probe.ok());
  EXPECT_EQ(probe.attempts, 1u);  // a probe gets one attempt, not a budget
  EXPECT_TRUE(probe.breaker_tripped);
  EXPECT_EQ(source.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(source.stats().breaker_opens, 2u);
}

TEST(ResilientFibSource, ServesStaleTableWithStalenessTag) {
  ScriptedFibSource inner(simple_table());
  ManualFetchClock clock;
  const ResilientFibSource source(inner, fast_resilience(), &clock);

  ASSERT_TRUE(source.try_fetch(0).ok());  // populate the cache
  clock.advance(seconds(90));
  inner.fail_next(0, -1, FetchErrorKind::kTransient);
  const auto outcome = source.try_fetch(0);
  EXPECT_FALSE(outcome.ok());
  ASSERT_TRUE(outcome.has_table());
  EXPECT_TRUE(outcome.stale);
  EXPECT_TRUE(outcome.degraded());
  EXPECT_GE(outcome.staleness, seconds(90));
  EXPECT_EQ(*outcome.table, simple_table());
  EXPECT_EQ(source.stats().stale_served, 1u);
}

TEST(ResilientFibSource, StaleCacheBeatsFreshGarbage) {
  const auto topology = topo::build_figure3();
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const topo::DeviceId device = *topology.find_device("ToR1");

  // First pull clean, then 100% truncation: the cached clean table must be
  // served (tagged stale) instead of the truncated garbage.
  FlakyConfig flaky_config{.truncate_rate = 1.0, .seed = 4};
  struct CleanThenFlaky final : FibSource {
    const FibSource* clean;
    const FibSource* flaky;
    mutable std::atomic<int> calls{0};
    [[nodiscard]] FetchOutcome try_fetch(topo::DeviceId d) const override {
      return calls++ == 0 ? clean->try_fetch(d) : flaky->try_fetch(d);
    }
    [[nodiscard]] routing::ForwardingTable fetch(
        topo::DeviceId d) const override {
      return clean->fetch(d);
    }
  };
  const FlakyFibSource flaky(inner, flaky_config);
  CleanThenFlaky switching;
  switching.clean = &inner;
  switching.flaky = &flaky;

  ManualFetchClock clock;
  const ResilientFibSource source(switching, fast_resilience(), &clock);
  ASSERT_TRUE(source.try_fetch(device).ok());
  const auto outcome = source.try_fetch(device);
  ASSERT_TRUE(outcome.has_table());
  EXPECT_TRUE(outcome.stale);
  EXPECT_EQ(*outcome.table, sim.fib(device));  // the clean cached table
}

TEST(ResilientFibSource, LegacyFetchReturnsTableOrThrows) {
  ScriptedFibSource inner(simple_table());
  auto config = fast_resilience();
  config.serve_stale = false;
  ManualFetchClock clock;
  const ResilientFibSource source(inner, config, &clock);
  EXPECT_EQ(source.fetch(0), simple_table());
  inner.fail_next(1, -1, FetchErrorKind::kUnreachable);
  EXPECT_THROW((void)source.fetch(1), FetchError);
}

// ----------------------------------------------- datacenter validator --

TEST(DatacenterValidator, CompletesWithPartialCoverageUnderFlakiness) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  FlakyFibSource flaky(inner,
                       FlakyConfig{.transient_rate = 0.3, .seed = 23});
  const DatacenterValidator validator(metadata, flaky,
                                      make_trie_verifier_factory());
  const auto summary = validator.run(/*threads=*/4);
  EXPECT_EQ(summary.devices_checked, topology.device_count());
  EXPECT_GT(summary.devices_failed, 0u);
  EXPECT_LT(summary.coverage(), 1.0);
  EXPECT_GT(summary.coverage(), 0.0);
  // Transient failures produce no garbage tables, so no spurious
  // violations appear on the healthy network.
  EXPECT_TRUE(summary.violations.empty());
}

TEST(DatacenterValidator, RetriesRestoreFullCoverage) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  const FlakyFibSource flaky(inner,
                             FlakyConfig{.transient_rate = 0.3, .seed = 23});
  ManualFetchClock clock;
  auto config = fast_resilience();
  config.retry.max_attempts = 6;
  const ResilientFibSource hardened(flaky, config, &clock);
  const DatacenterValidator validator(metadata, hardened,
                                      make_trie_verifier_factory());
  const auto summary = validator.run(/*threads=*/4);
  EXPECT_EQ(summary.devices_failed, 0u);
  EXPECT_DOUBLE_EQ(summary.coverage(), 1.0);
  EXPECT_GT(summary.retries, 0u);
  EXPECT_TRUE(summary.violations.empty());
}

}  // namespace
}  // namespace dcv::rcdc
