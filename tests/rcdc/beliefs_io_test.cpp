#include "rcdc/beliefs_io.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

TEST(BeliefsIo, ParsesAllKinds) {
  const auto topology = topo::build_figure3();
  const auto beliefs = parse_beliefs(
      "# datacenter beliefs\n"
      "reachable ToR1 10.0.2.0/24\n"
      "unreachable ToR1 99.0.0.0/24\n"
      "max-path-length ToR1 10.0.2.0/24 4\n"
      "min-ecmp-paths ToR1 10.0.2.0/24 4\n"
      "traverses ToR1 10.0.2.0/24 D1\n"
      "avoids ToR1 10.0.2.0/24 R1\n",
      topology);
  ASSERT_EQ(beliefs.size(), 6u);
  EXPECT_EQ(beliefs[0].kind, BeliefKind::kReachable);
  EXPECT_EQ(beliefs[0].source, *topology.find_device("ToR1"));
  EXPECT_EQ(beliefs[2].bound, 4u);
  EXPECT_EQ(beliefs[4].via, *topology.find_device("D1"));
  EXPECT_EQ(beliefs[5].kind, BeliefKind::kAvoids);
}

TEST(BeliefsIo, RoundTrip) {
  const auto topology = topo::build_figure3();
  const auto original = parse_beliefs(
      "reachable ToR1 10.0.2.0/24\n"
      "min-ecmp-paths ToR2 10.0.3.0/24 4\n"
      "avoids ToR3 10.0.0.0/24 R2\n",
      topology);
  const auto reparsed =
      parse_beliefs(write_beliefs(original, topology), topology);
  ASSERT_EQ(original.size(), reparsed.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].kind, reparsed[i].kind) << i;
    EXPECT_EQ(original[i].source, reparsed[i].source) << i;
    EXPECT_EQ(original[i].destination, reparsed[i].destination) << i;
    EXPECT_EQ(original[i].bound, reparsed[i].bound) << i;
    EXPECT_EQ(original[i].via, reparsed[i].via) << i;
  }
}

class BeliefsIoErrors : public testing::TestWithParam<const char*> {};

TEST_P(BeliefsIoErrors, Rejects) {
  const auto topology = topo::build_figure3();
  EXPECT_THROW(parse_beliefs(GetParam(), topology), dcv::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BeliefsIoErrors,
    testing::Values("wished ToR1 10.0.0.0/24\n",          // bad kind
                    "reachable Nope 10.0.0.0/24\n",       // bad device
                    "reachable ToR1\n",                   // missing prefix
                    "max-path-length ToR1 10.0.0.0/24\n", // missing bound
                    "max-path-length ToR1 10.0.0.0/24 x\n",
                    "traverses ToR1 10.0.0.0/24\n",       // missing via
                    "traverses ToR1 10.0.0.0/24 Nope\n",
                    "reachable ToR1 10.0.0.0/24 extra\n"));

TEST(BeliefsIo, EmptyAndComments) {
  const auto topology = topo::build_figure3();
  EXPECT_TRUE(parse_beliefs("", topology).empty());
  EXPECT_TRUE(parse_beliefs("# nothing\n\n", topology).empty());
}

}  // namespace
}  // namespace dcv::rcdc
