#include "rcdc/severity.hpp"

#include <gtest/gtest.h>

#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class RiskPolicyTest : public testing::Test {
 protected:
  RiskPolicyTest()
      : topology_(topo::build_figure3()), policy_(topology_, 40) {}

  Violation violation(const char* device, ViolationKind kind,
                      std::size_t expected_hops, std::size_t actual_hops) {
    Violation v;
    v.device = *topology_.find_device(device);
    v.kind = kind;
    for (std::size_t i = 0; i < expected_hops; ++i) {
      v.contract.expected_next_hops.push_back(
          static_cast<topo::DeviceId>(i));
    }
    for (std::size_t i = 0; i < actual_hops; ++i) {
      v.actual_next_hops.push_back(static_cast<topo::DeviceId>(i));
    }
    return v;
  }

  topo::Topology topology_;
  RiskPolicy policy_;
};

TEST_F(RiskPolicyTest, TorSingleNextHopDefaultIsHighRisk) {
  // The paper's example: "a top-of-the-rack switch that has only a single
  // next hop for default route represents a high-risk error."
  const auto assessment = policy_.assess(
      violation("ToR1", ViolationKind::kDefaultRouteMismatch, 4, 1));
  EXPECT_EQ(assessment.level, RiskLevel::kHigh);
  EXPECT_EQ(assessment.additional_faults_to_impact, 1u);
  EXPECT_EQ(assessment.servers_impacted, 40u);
}

TEST_F(RiskPolicyTest, TorPartialEcmpLossIsLowRisk) {
  const auto assessment = policy_.assess(
      violation("ToR1", ViolationKind::kDefaultRouteMismatch, 4, 3));
  EXPECT_EQ(assessment.level, RiskLevel::kLow);
  EXPECT_EQ(assessment.additional_faults_to_impact, 3u);
}

TEST_F(RiskPolicyTest, UnreachableRangeIsAlwaysHighRisk) {
  const auto assessment = policy_.assess(
      violation("ToR1", ViolationKind::kUnreachableRange, 4, 0));
  EXPECT_EQ(assessment.level, RiskLevel::kHigh);
}

TEST_F(RiskPolicyTest, SpineErrorsAreHighRisk) {
  // "if a significant number of spine devices ... have errors relating to
  // specific prefixes, then those errors represent a high-risk."
  const auto assessment = policy_.assess(
      violation("D1", ViolationKind::kWrongNextHops, 1, 3));
  EXPECT_EQ(assessment.level, RiskLevel::kHigh);
}

TEST_F(RiskPolicyTest, RegionalSpineErrorsAreHighRisk) {
  const auto assessment = policy_.assess(
      violation("R1", ViolationKind::kWrongNextHops, 2, 2));
  EXPECT_EQ(assessment.level, RiskLevel::kHigh);
}

TEST_F(RiskPolicyTest, LeafWithRemainingRedundancyIsLowRisk) {
  const auto assessment = policy_.assess(
      violation("A1", ViolationKind::kWrongNextHops, 4, 2));
  EXPECT_EQ(assessment.level, RiskLevel::kLow);
}

TEST_F(RiskPolicyTest, LeafServersScaleWithCluster) {
  const auto assessment = policy_.assess(
      violation("A1", ViolationKind::kWrongNextHops, 4, 2));
  // Cluster A hosts 2 ToRs of 40 servers each.
  EXPECT_EQ(assessment.servers_impacted, 80u);
}

TEST_F(RiskPolicyTest, SpineServersScaleWithDatacenter) {
  const auto assessment = policy_.assess(
      violation("D1", ViolationKind::kWrongNextHops, 1, 1));
  // 4 ToRs x 40 servers.
  EXPECT_EQ(assessment.servers_impacted, 160u);
}

TEST(RiskLevelText, ToString) {
  EXPECT_EQ(to_string(RiskLevel::kHigh), "high");
  EXPECT_EQ(to_string(RiskLevel::kLow), "low");
}

}  // namespace
}  // namespace dcv::rcdc
