#include "rcdc/triage.hpp"

#include <gtest/gtest.h>

#include "rcdc/contract_gen.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/trie_verifier.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"
#include "topology/faults.hpp"

namespace dcv::rcdc {
namespace {

class TriageTest : public testing::Test {
 protected:
  TriageTest() : topology_(topo::build_figure3()), metadata_(topology_) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  std::vector<Violation> validate(const char* device) {
    const routing::BgpSimulator sim(topology_, &faults_);
    const SimulatorFibSource fibs(sim);
    const ContractGenerator generator(metadata_);
    TrieVerifier verifier;
    return verifier.check(fibs.fetch(id(device)),
                          generator.for_device(id(device)), id(device));
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
  topo::FaultInjector faults_{topology_};
};

TEST_F(TriageTest, OperationallyDownLinkRoutesToCabling) {
  faults_.link_down(*topology_.find_link(id("ToR1"), id("A1")));
  const auto violations = validate("ToR1");
  ASSERT_FALSE(violations.empty());
  const TriageEngine triage(topology_);
  const TriageDecision decision = triage.triage(violations.front());
  EXPECT_EQ(decision.action, RemediationAction::kReplaceCable);
  ASSERT_TRUE(decision.link.has_value());
  EXPECT_EQ(*decision.link, *topology_.find_link(id("ToR1"), id("A1")));
  EXPECT_NE(decision.rationale.find("cabling"), std::string::npos);
}

TEST_F(TriageTest, AdminShutRoutesToUnshut) {
  faults_.bgp_admin_shutdown(*topology_.find_link(id("ToR1"), id("A2")));
  const auto violations = validate("ToR1");
  ASSERT_FALSE(violations.empty());
  const TriageEngine triage(topology_);
  EXPECT_EQ(triage.triage(violations.front()).action,
            RemediationAction::kUnshutAndMonitor);
}

TEST_F(TriageTest, DeviceSoftwareBugEscalates) {
  faults_.device_fault(id("ToR1"),
                       topo::DeviceFaultKind::kRibFibInconsistency);
  const auto violations = validate("ToR1");
  ASSERT_FALSE(violations.empty());
  const TriageEngine triage(topology_);
  // The links toward the missing hops are healthy: no link-level cause, so
  // the error escalates to operators.
  EXPECT_EQ(triage.triage(violations.front()).action,
            RemediationAction::kEscalateToOperator);
}

TEST_F(TriageTest, DecisionCarriesRisk) {
  faults_.device_fault(id("ToR1"),
                       topo::DeviceFaultKind::kRibFibInconsistency);
  const auto violations = validate("ToR1");
  ASSERT_FALSE(violations.empty());
  const TriageEngine triage(topology_);
  // Single-next-hop default route: high risk per §2.6.4.
  EXPECT_EQ(triage.triage(violations.front()).risk, RiskLevel::kHigh);
}

TEST(TriageText, ActionNames) {
  EXPECT_EQ(to_string(RemediationAction::kReplaceCable), "replace-cable");
  EXPECT_EQ(to_string(RemediationAction::kUnshutAndMonitor),
            "unshut-and-monitor");
  EXPECT_EQ(to_string(RemediationAction::kEscalateToOperator),
            "escalate-to-operator");
}

}  // namespace
}  // namespace dcv::rcdc
