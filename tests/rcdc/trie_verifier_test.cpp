#include "rcdc/trie_verifier.hpp"

#include <gtest/gtest.h>

namespace dcv::rcdc {
namespace {

routing::Rule rule(const char* prefix, std::vector<topo::DeviceId> hops) {
  return routing::Rule{.prefix = net::Prefix::parse(prefix),
                       .next_hops = std::move(hops)};
}

Contract specific(const char* prefix, std::vector<topo::DeviceId> hops) {
  return Contract{.kind = ContractKind::kSpecific,
                  .prefix = net::Prefix::parse(prefix),
                  .expected_next_hops = std::move(hops),
                  .mode = MatchMode::kExactSet};
}

Contract default_contract(std::vector<topo::DeviceId> hops) {
  return Contract{.kind = ContractKind::kDefault,
                  .prefix = net::Prefix::default_route(),
                  .expected_next_hops = std::move(hops),
                  .mode = MatchMode::kExactSet};
}

std::vector<Violation> check(const routing::ForwardingTable& fib,
                             const std::vector<Contract>& contracts) {
  TrieVerifier verifier;
  return verifier.check(fib, contracts, /*device=*/0);
}

TEST(TrieVerifier, CleanPolicyPasses) {
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.0/24", {1, 2}));
  const auto violations =
      check(fib, {default_contract({1, 2}), specific("10.0.1.0/24", {1, 2})});
  EXPECT_TRUE(violations.empty());
}

TEST(TrieVerifier, DefaultContractMismatch) {
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1}));
  const auto violations = check(fib, {default_contract({1, 2})});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kDefaultRouteMismatch);
  EXPECT_EQ(violations[0].actual_next_hops, std::vector<topo::DeviceId>{1});
}

TEST(TrieVerifier, MissingDefaultRoute) {
  routing::ForwardingTable fib;
  const auto violations = check(fib, {default_contract({1, 2})});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kMissingDefaultRoute);
}

TEST(TrieVerifier, SpecificContractSatisfiedByDefaultRoute) {
  // The contract range has no specific rule; packets fall through to the
  // default route. With matching hops the contract still holds — checking
  // is semantic, not syntactic.
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  EXPECT_TRUE(check(fib, {specific("10.0.1.0/24", {1, 2})}).empty());
}

TEST(TrieVerifier, SpecificContractViolatedThroughDefaultRoute) {
  // The Figure 3 situation: no specific route and the default route points
  // elsewhere -> the default rule is the violating rule.
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1}));
  const auto violations = check(fib, {specific("10.0.1.0/24", {1, 2})});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kWrongNextHops);
  EXPECT_EQ(violations[0].rule_prefix, net::Prefix::default_route());
}

TEST(TrieVerifier, WrongNextHopsOnExactRule) {
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.0/24", {1}));
  const auto violations = check(fib, {specific("10.0.1.0/24", {1, 2})});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule_prefix, net::Prefix::parse("10.0.1.0/24"));
  EXPECT_EQ(violations[0].actual_next_hops, std::vector<topo::DeviceId>{1});
}

TEST(TrieVerifier, NestedRuleInsideContractRange) {
  // A /28 inside the contract's /24 hijacks part of the range.
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.0/24", {1, 2}));
  fib.add(rule("10.0.1.16/28", {9}));
  const auto violations = check(fib, {specific("10.0.1.0/24", {1, 2})});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule_prefix, net::Prefix::parse("10.0.1.16/28"));
}

TEST(TrieVerifier, ShadowedRuleDoesNotViolate) {
  // Two /25s fully cover the /24, so the (wrong) /24 rule is unreachable
  // within the contract range and must not be flagged.
  routing::ForwardingTable fib;
  fib.add(rule("10.0.1.0/25", {1, 2}));
  fib.add(rule("10.0.1.128/25", {1, 2}));
  fib.add(rule("10.0.1.0/24", {9}));
  EXPECT_TRUE(check(fib, {specific("10.0.1.0/24", {1, 2})}).empty());
}

TEST(TrieVerifier, CoverageStopsAtEnclosingRule) {
  // Once the range is covered by the enclosing /16 rule, the shorter /8 and
  // default rules are never consulted — the §2.5.2 stop condition.
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {9}));
  fib.add(rule("10.0.0.0/8", {8}));
  fib.add(rule("10.0.0.0/16", {1, 2}));
  EXPECT_TRUE(check(fib, {specific("10.0.1.0/24", {1, 2})}).empty());
}

TEST(TrieVerifier, UnreachableRangeWithoutDefault) {
  routing::ForwardingTable fib;
  fib.add(rule("10.0.1.0/25", {1}));
  const auto violations = check(fib, {specific("10.0.1.0/24", {1})});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kUnreachableRange);
}

TEST(TrieVerifier, PartialCoverageReportsBothProblems) {
  // Half the range goes to the wrong hops, the other half drops.
  routing::ForwardingTable fib;
  fib.add(rule("10.0.1.0/25", {9}));
  const auto violations = check(fib, {specific("10.0.1.0/24", {1})});
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kWrongNextHops);
  EXPECT_EQ(violations[1].kind, ViolationKind::kUnreachableRange);
}

TEST(TrieVerifier, MultipleViolatingRulesAllReported) {
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.0/26", {7}));
  fib.add(rule("10.0.1.64/26", {8}));
  const auto violations = check(fib, {specific("10.0.1.0/24", {1, 2})});
  EXPECT_EQ(violations.size(), 2u);
}

TEST(TrieVerifier, SubsetModeAcceptsPartialEcmp) {
  routing::ForwardingTable fib;
  fib.add(rule("10.0.1.0/24", {2}));
  Contract c = specific("10.0.1.0/24", {1, 2, 3});
  c.mode = MatchMode::kSubsetAtLeast;
  c.min_next_hops = 1;
  EXPECT_TRUE(check(fib, {c}).empty());
  // But an off-contract hop still violates.
  routing::ForwardingTable bad;
  bad.add(rule("10.0.1.0/24", {2, 9}));
  EXPECT_EQ(check(bad, {c}).size(), 1u);
}

TEST(TrieVerifier, StrictContractRejectsDefaultRouteFallback) {
  // The §2.6.2 "Migrations" semantics: the default route has the *same*
  // next hops as the contract, but a strict specific contract still fails —
  // the specific route is missing and longer paths become possible under
  // further failures.
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  Contract strict = specific("10.0.1.0/24", {1, 2});
  strict.allow_default_route = false;
  const auto violations = check(fib, {strict});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kSpecificViaDefaultRoute);
  EXPECT_EQ(violations[0].rule_prefix, net::Prefix::default_route());

  // With the specific route present, the strict contract passes.
  fib.add(rule("10.0.1.0/24", {1, 2}));
  EXPECT_TRUE(check(fib, {strict}).empty());
}

TEST(TrieVerifier, ConnectedRulesAreExemptButCover) {
  routing::ForwardingTable fib;
  fib.add(routing::Rule{.prefix = net::Prefix::parse("10.0.1.0/24"),
                        .next_hops = {},
                        .connected = true});
  // A connected rule covers the range without being flagged.
  EXPECT_TRUE(check(fib, {specific("10.0.1.0/24", {1})}).empty());
}

TEST(TrieVerifier, ManyContractsAgainstOnePolicy) {
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2, 3, 4}));
  std::vector<Contract> contracts;
  for (int i = 0; i < 64; ++i) {
    contracts.push_back(specific(
        ("10.0." + std::to_string(i) + ".0/24").c_str(), {1, 2, 3, 4}));
    fib.add(rule(("10.0." + std::to_string(i) + ".0/24").c_str(),
                 {1, 2, 3, 4}));
  }
  EXPECT_TRUE(check(fib, contracts).empty());
}

}  // namespace
}  // namespace dcv::rcdc
