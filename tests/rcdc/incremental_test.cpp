#include "rcdc/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class IncrementalTest : public testing::Test {
 protected:
  IncrementalTest()
      : topology_(topo::build_clos(topo::ClosParams{.clusters = 3,
                                                    .tors_per_cluster = 3,
                                                    .leaves_per_cluster = 4,
                                                    .spines_per_plane = 1,
                                                    .regional_spines = 4})),
        metadata_(topology_) {}

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST(Fingerprint, SensitiveToContent) {
  routing::ForwardingTable a;
  a.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                      .next_hops = {1, 2}});
  routing::ForwardingTable b = a;
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  b.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                      .next_hops = {1}});
  EXPECT_NE(fingerprint(a), fingerprint(b));

  routing::ForwardingTable c;
  c.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                      .next_hops = {1, 2},
                      .connected = true});
  EXPECT_NE(fingerprint(a), fingerprint(c));

  EXPECT_NE(fingerprint(routing::ForwardingTable{}), 0u);
}

// The fingerprint is a *semantic* content hash: two equivalent tables whose
// rules or ECMP next-hop sets merely arrived in a different order must
// fingerprint identically (otherwise the incremental validator re-verifies
// unchanged devices), while any real content change must still be seen.
TEST(Fingerprint, InvariantUnderRuleAndHopPermutation) {
  const std::vector<routing::Rule> rules = {
      {.prefix = net::Prefix::parse("10.0.0.0/24"), .next_hops = {1, 2, 3}},
      {.prefix = net::Prefix::parse("10.0.1.0/24"), .next_hops = {4, 5}},
      {.prefix = net::Prefix::parse("10.0.0.0/16"), .next_hops = {6}},
      {.prefix = net::Prefix::parse("0.0.0.0/0"), .next_hops = {7, 8}},
      {.prefix = net::Prefix::parse("192.168.0.0/30"),
       .next_hops = {},
       .connected = true},
  };

  routing::ForwardingTable reference;
  for (const auto& rule : rules) reference.add(rule);
  const std::uint64_t expected = fingerprint(reference);

  std::mt19937_64 rng(2019);
  for (int trial = 0; trial < 32; ++trial) {
    auto shuffled = rules;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    routing::ForwardingTable permuted;
    for (auto& rule : shuffled) {
      std::shuffle(rule.next_hops.begin(), rule.next_hops.end(), rng);
      permuted.add(std::move(rule));
    }
    EXPECT_EQ(fingerprint(permuted), expected);
  }

  // Real changes still change the fingerprint: a hop swapped for another...
  routing::ForwardingTable changed_hop = reference;
  changed_hop.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                                .next_hops = {1, 2, 9}});
  EXPECT_NE(fingerprint(changed_hop), expected);
  // ...a hop dropped from the ECMP set...
  routing::ForwardingTable dropped_hop = reference;
  dropped_hop.add(routing::Rule{.prefix = net::Prefix::parse("10.0.1.0/24"),
                                .next_hops = {4}});
  EXPECT_NE(fingerprint(dropped_hop), expected);
  // ...and a hop moved between two rules' sets (totals preserved).
  routing::ForwardingTable moved_hop = reference;
  moved_hop.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                              .next_hops = {1, 2}});
  moved_hop.add(routing::Rule{.prefix = net::Prefix::parse("10.0.1.0/24"),
                              .next_hops = {3, 4, 5}});
  EXPECT_NE(fingerprint(moved_hop), expected);
}

/// Serves the inner source's tables rebuilt with the rule insertion order
/// and every ECMP next-hop set freshly permuted on each fetch — the
/// "equivalent table, different arrival order" shape of real pulls.
class PermutingFibSource final : public FibSource {
 public:
  PermutingFibSource(const FibSource& inner, std::uint64_t seed)
      : inner_(&inner), seed_(seed) {}

  [[nodiscard]] routing::ForwardingTable fetch(
      topo::DeviceId device) const override {
    const routing::ForwardingTable original = inner_->fetch(device);
    std::mt19937_64 rng(seed_ ^ (0x9E3779B97F4A7C15ull * (device + 1)));
    auto rules = original.rules();
    std::shuffle(rules.begin(), rules.end(), rng);
    routing::ForwardingTable permuted;
    for (auto& rule : rules) {
      std::shuffle(rule.next_hops.begin(), rule.next_hops.end(), rng);
      permuted.add(std::move(rule));
    }
    return permuted;
  }

 private:
  const FibSource* inner_;
  std::uint64_t seed_;
};

TEST_F(IncrementalTest, FirstCycleValidatesEverything) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  const auto result = validator.run_cycle(fibs, 2);
  EXPECT_EQ(result.devices_revalidated, result.devices_total);
  EXPECT_TRUE(result.violations.empty());
}

// Acceptance for the fingerprint bugfix: a second cycle that pulls
// permuted-but-equivalent tables (shuffled rule arrival order, shuffled
// ECMP next-hop sets) must not re-validate a single device.
TEST_F(IncrementalTest, PermutedEquivalentFibIsNotRevalidated) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  const auto first = validator.run_cycle(fibs, 2);
  ASSERT_EQ(first.devices_revalidated, first.devices_total);

  for (const std::uint64_t seed : {7ull, 8ull}) {
    const PermutingFibSource permuted(fibs, seed);
    const auto cycle = validator.run_cycle(permuted, 2);
    EXPECT_EQ(cycle.devices_revalidated, 0u);
    EXPECT_EQ(cycle.contracts_checked, 0u);
    EXPECT_EQ(cycle.violations, first.violations);
  }
}

TEST_F(IncrementalTest, UnchangedNetworkRevalidatesNothing) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  (void)validator.run_cycle(fibs, 2);
  const auto second = validator.run_cycle(fibs, 2);
  EXPECT_EQ(second.devices_revalidated, 0u);
  EXPECT_EQ(second.contracts_checked, 0u);
  EXPECT_TRUE(second.violations.empty());
}

TEST_F(IncrementalTest, FaultRevalidatesOnlyAffectedDevices) {
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  {
    const routing::BgpSimulator sim(topology_);
    const SimulatorFibSource fibs(sim);
    (void)validator.run_cycle(fibs, 2);
  }

  // One link down: routing changes ripple to a subset of devices only.
  topo::FaultInjector faults(topology_);
  faults.link_down(
      *topology_.find_link(topology_.tors_in_cluster(0)[0],
                           topology_.leaves_in_cluster(0)[0]));
  const routing::BgpSimulator sim(topology_, &faults);
  const SimulatorFibSource fibs(sim);
  const auto incremental = validator.run_cycle(fibs, 2);

  EXPECT_GT(incremental.devices_revalidated, 0u);
  EXPECT_LT(incremental.devices_revalidated, incremental.devices_total);
  EXPECT_FALSE(incremental.violations.empty());

  // The merged picture matches a from-scratch full validation.
  const DatacenterValidator full(metadata_, fibs,
                                 make_trie_verifier_factory());
  auto expected = full.run(2).violations;
  auto actual = incremental.violations;
  const auto order = [](const Violation& a, const Violation& b) {
    if (a.device != b.device) return a.device < b.device;
    if (a.contract.prefix != b.contract.prefix) {
      return a.contract.prefix < b.contract.prefix;
    }
    return a.rule_prefix < b.rule_prefix;
  };
  std::sort(expected.begin(), expected.end(), order);
  std::sort(actual.begin(), actual.end(), order);
  EXPECT_EQ(expected, actual);
}

TEST_F(IncrementalTest, RepairConvergesBackToClean) {
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  topo::FaultInjector faults(topology_);
  faults.random_link_failures(2);
  {
    const routing::BgpSimulator sim(topology_, &faults);
    const SimulatorFibSource fibs(sim);
    EXPECT_FALSE(validator.run_cycle(fibs, 2).violations.empty());
  }
  faults.reset();
  const routing::BgpSimulator sim(topology_, &faults);
  const SimulatorFibSource fibs(sim);
  const auto result = validator.run_cycle(fibs, 2);
  EXPECT_TRUE(result.violations.empty());
}

TEST_F(IncrementalTest, ResetForcesFullRevalidation) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  (void)validator.run_cycle(fibs, 2);
  validator.reset();
  EXPECT_EQ(validator.run_cycle(fibs, 2).devices_revalidated,
            topology_.device_count());
}

}  // namespace
}  // namespace dcv::rcdc
