#include "rcdc/incremental.hpp"

#include <gtest/gtest.h>

#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class IncrementalTest : public testing::Test {
 protected:
  IncrementalTest()
      : topology_(topo::build_clos(topo::ClosParams{.clusters = 3,
                                                    .tors_per_cluster = 3,
                                                    .leaves_per_cluster = 4,
                                                    .spines_per_plane = 1,
                                                    .regional_spines = 4})),
        metadata_(topology_) {}

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST(Fingerprint, SensitiveToContent) {
  routing::ForwardingTable a;
  a.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                      .next_hops = {1, 2}});
  routing::ForwardingTable b = a;
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  b.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                      .next_hops = {1}});
  EXPECT_NE(fingerprint(a), fingerprint(b));

  routing::ForwardingTable c;
  c.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                      .next_hops = {1, 2},
                      .connected = true});
  EXPECT_NE(fingerprint(a), fingerprint(c));

  EXPECT_NE(fingerprint(routing::ForwardingTable{}), 0u);
}

TEST_F(IncrementalTest, FirstCycleValidatesEverything) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  const auto result = validator.run_cycle(fibs, 2);
  EXPECT_EQ(result.devices_revalidated, result.devices_total);
  EXPECT_TRUE(result.violations.empty());
}

TEST_F(IncrementalTest, UnchangedNetworkRevalidatesNothing) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  (void)validator.run_cycle(fibs, 2);
  const auto second = validator.run_cycle(fibs, 2);
  EXPECT_EQ(second.devices_revalidated, 0u);
  EXPECT_EQ(second.contracts_checked, 0u);
  EXPECT_TRUE(second.violations.empty());
}

TEST_F(IncrementalTest, FaultRevalidatesOnlyAffectedDevices) {
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  {
    const routing::BgpSimulator sim(topology_);
    const SimulatorFibSource fibs(sim);
    (void)validator.run_cycle(fibs, 2);
  }

  // One link down: routing changes ripple to a subset of devices only.
  topo::FaultInjector faults(topology_);
  faults.link_down(
      *topology_.find_link(topology_.tors_in_cluster(0)[0],
                           topology_.leaves_in_cluster(0)[0]));
  const routing::BgpSimulator sim(topology_, &faults);
  const SimulatorFibSource fibs(sim);
  const auto incremental = validator.run_cycle(fibs, 2);

  EXPECT_GT(incremental.devices_revalidated, 0u);
  EXPECT_LT(incremental.devices_revalidated, incremental.devices_total);
  EXPECT_FALSE(incremental.violations.empty());

  // The merged picture matches a from-scratch full validation.
  const DatacenterValidator full(metadata_, fibs,
                                 make_trie_verifier_factory());
  auto expected = full.run(2).violations;
  auto actual = incremental.violations;
  const auto order = [](const Violation& a, const Violation& b) {
    if (a.device != b.device) return a.device < b.device;
    if (a.contract.prefix != b.contract.prefix) {
      return a.contract.prefix < b.contract.prefix;
    }
    return a.rule_prefix < b.rule_prefix;
  };
  std::sort(expected.begin(), expected.end(), order);
  std::sort(actual.begin(), actual.end(), order);
  EXPECT_EQ(expected, actual);
}

TEST_F(IncrementalTest, RepairConvergesBackToClean) {
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  topo::FaultInjector faults(topology_);
  faults.random_link_failures(2);
  {
    const routing::BgpSimulator sim(topology_, &faults);
    const SimulatorFibSource fibs(sim);
    EXPECT_FALSE(validator.run_cycle(fibs, 2).violations.empty());
  }
  faults.reset();
  const routing::BgpSimulator sim(topology_, &faults);
  const SimulatorFibSource fibs(sim);
  const auto result = validator.run_cycle(fibs, 2);
  EXPECT_TRUE(result.violations.empty());
}

TEST_F(IncrementalTest, ResetForcesFullRevalidation) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  IncrementalValidator validator(metadata_, make_trie_verifier_factory());
  (void)validator.run_cycle(fibs, 2);
  validator.reset();
  EXPECT_EQ(validator.run_cycle(fibs, 2).devices_revalidated,
            topology_.device_count());
}

}  // namespace
}  // namespace dcv::rcdc
