#include "rcdc/validator.hpp"

#include <gtest/gtest.h>

#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class ValidatorTest : public testing::Test {
 protected:
  ValidatorTest()
      : topology_(topo::build_clos(topo::ClosParams{
            .clusters = 3,
            .tors_per_cluster = 3,
            .leaves_per_cluster = 4,
            .spines_per_plane = 1,
            .regional_spines = 4})),
        metadata_(topology_) {}

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST_F(ValidatorTest, HealthyDatacenterIsClean) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata_, fibs,
                                      make_trie_verifier_factory());
  const auto summary = validator.run();
  EXPECT_EQ(summary.devices_checked, topology_.device_count());
  EXPECT_GT(summary.contracts_checked, 0u);
  EXPECT_TRUE(summary.violations.empty());
  EXPECT_GT(summary.elapsed.count(), 0);
}

TEST_F(ValidatorTest, ParallelRunsAgreeWithSequential) {
  topo::FaultInjector faults(topology_, /*seed=*/11);
  faults.random_link_failures(6);
  faults.random_device_faults(2, topo::DeviceRole::kTor,
                              topo::DeviceFaultKind::kRibFibInconsistency);
  const routing::BgpSimulator sim(topology_, &faults);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata_, fibs,
                                      make_trie_verifier_factory());
  const auto sequential = validator.run(1);
  const auto parallel = validator.run(8);
  EXPECT_FALSE(sequential.violations.empty());
  EXPECT_EQ(sequential.violations, parallel.violations);
  EXPECT_EQ(sequential.contracts_checked, parallel.contracts_checked);
}

TEST_F(ValidatorTest, SubsetOfDevices) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata_, fibs,
                                      make_trie_verifier_factory());
  const auto tors = topology_.devices_with_role(topo::DeviceRole::kTor);
  const auto summary = validator.run(tors, 2);
  EXPECT_EQ(summary.devices_checked, tors.size());
}

TEST_F(ValidatorTest, SmtFactoryWorksEndToEnd) {
  // Small topology to keep the Z3 engine fast.
  const auto small = topo::build_figure3();
  const topo::MetadataService metadata(small);
  const routing::BgpSimulator sim(small);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata, fibs,
                                      make_smt_verifier_factory());
  EXPECT_TRUE(validator.run(2).violations.empty());
}

TEST_F(ValidatorTest, EveryDeviceFaultKindIsDetected) {
  using topo::DeviceFaultKind;
  for (const DeviceFaultKind kind :
       {DeviceFaultKind::kRibFibInconsistency,
        DeviceFaultKind::kLayer2InterfaceBug,
        DeviceFaultKind::kEcmpSingleNextHop,
        DeviceFaultKind::kRejectDefaultRoute}) {
    topo::Topology topology = topo::build_clos(topo::ClosParams{});
    const topo::MetadataService metadata(topology);
    topo::FaultInjector faults(topology);
    // ToRs have 4-way ECMP toward their leaves, so every FIB-distorting
    // fault kind is visible there (a default leaf has a single uplink, on
    // which ECMP truncation is a no-op).
    faults.random_device_faults(1, topo::DeviceRole::kTor, kind);
    const routing::BgpSimulator sim(topology, &faults);
    const SimulatorFibSource fibs(sim);
    const DatacenterValidator validator(metadata, fibs,
                                        make_trie_verifier_factory());
    EXPECT_FALSE(validator.run(2).violations.empty())
        << topo::to_string(kind);
  }
}

TEST_F(ValidatorTest, SynthesizedSourceIsCleanByConstruction) {
  const routing::FibSynthesizer synthesizer(metadata_);
  const SynthesizedFibSource fibs(synthesizer);
  const DatacenterValidator validator(metadata_, fibs,
                                      make_trie_verifier_factory());
  EXPECT_TRUE(validator.run(4).violations.empty());
}

}  // namespace
}  // namespace dcv::rcdc
