// Tests of the global baseline, including the Claim 1 property (§2.4.5):
// local contracts hold  <=>  global all-pairs shortest-path reachability
// with maximal redundancy holds.
#include "rcdc/global_checker.hpp"

#include <gtest/gtest.h>

#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

TEST(GlobalChecker, HealthyFigure3AllPairsOk) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const GlobalChecker checker(metadata, fibs);
  const auto result = checker.check_all_pairs();
  // 4 prefixes x 3 other ToRs.
  EXPECT_EQ(result.pairs_checked, 12u);
  EXPECT_TRUE(result.all_ok()) << (result.failures.empty()
                                       ? ""
                                       : result.failures.front());
}

TEST(GlobalChecker, PathCountsMatchArchitecture) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const GlobalChecker checker(metadata, fibs);
  const auto result = checker.check_all_pairs();
  // Intra-cluster pairs have 4 paths (one per leaf); inter-cluster pairs 4
  // (ToR -> 4 leaves -> 1 spine each -> 1 leaf -> ToR). 12 pairs x 4.
  EXPECT_EQ(result.total_paths, 48u);
  EXPECT_EQ(result.max_paths_per_pair, 4u);
}

TEST(GlobalChecker, ExponentialPathCountsInWideFabric) {
  // With 2 spines per plane, inter-cluster pairs have m * s = 4 * 2 = 8
  // paths; the census shows the multiplicative fan-out the paper notes
  // ("fan-outs with degree 4-12 produce roughly 1000 different paths").
  const auto topology = topo::build_clos(topo::ClosParams{
      .clusters = 2,
      .tors_per_cluster = 1,
      .leaves_per_cluster = 4,
      .spines_per_plane = 2,
      .regional_spines = 4});
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const GlobalChecker checker(metadata, fibs);
  const auto result = checker.check_all_pairs();
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(result.max_paths_per_pair, 8u);
}

TEST(GlobalChecker, DetectsLongerPathsAfterFigure3Failures) {
  auto topology = topo::build_figure3();
  topo::apply_figure3_failures(topology);
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const GlobalChecker checker(metadata, fibs);
  const auto result = checker.check_all_pairs();
  EXPECT_FALSE(result.all_ok());
  // ToR1 <-> ToR2 still reachable (via the regional detour), but not on a
  // shortest path.
  EXPECT_EQ(result.pairs_reachable, result.pairs_checked);
  EXPECT_LT(result.pairs_shortest, result.pairs_checked);
  EXPECT_FALSE(result.failures.empty());
}

TEST(GlobalChecker, DetectsBlackHoles) {
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  // Cut ToR2 off entirely.
  topology.shut_all_sessions_of(*topology.find_device("ToR2"));
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const GlobalChecker checker(metadata, fibs);
  const auto result = checker.check_all_pairs();
  EXPECT_LT(result.pairs_reachable, result.pairs_checked);
}

/// Claim 1 (§2.4.5) across random fault scenarios: if local contracts are
/// clean, global all-pairs shortest-path reachability with maximal
/// redundancy holds. The converse is deliberately not asserted — a local
/// violation (e.g. a lost spine-regional uplink breaking a spine's default
/// contract) need not disturb intra-datacenter shortest paths; local
/// contracts are strictly stronger, which is precisely their value for
/// catching latent risk (§2.6).
class Claim1Property : public testing::TestWithParam<int> {};

TEST_P(Claim1Property, LocalCleanImpliesGlobalOk) {
  topo::Topology topology = topo::build_clos(topo::ClosParams{
      .clusters = 3,
      .tors_per_cluster = 2,
      .leaves_per_cluster = 3,
      .spines_per_plane = 2,
      .regional_spines = 4});
  const topo::MetadataService metadata(topology);
  topo::FaultInjector faults(topology, static_cast<std::uint64_t>(
                                           GetParam()));
  // Seeds alternate between healthy and faulty networks.
  if (GetParam() % 2 == 1) {
    faults.random_link_failures(static_cast<std::size_t>(GetParam() % 5) +
                                1);
  }
  const routing::BgpSimulator sim(topology, &faults);
  const SimulatorFibSource fibs(sim);

  // Local validation — ToR/leaf/spine contracts only, as in Claim 1.
  const DatacenterValidator validator(
      metadata, fibs, make_trie_verifier_factory(),
      ContractGenOptions{.include_regional_spines = false});
  const bool local_clean = validator.run(4).violations.empty();

  const GlobalChecker checker(metadata, fibs);
  const bool global_ok = checker.check_all_pairs().all_ok();

  if (local_clean) {
    EXPECT_TRUE(global_ok);  // Claim 1
  }
  if (GetParam() % 2 == 0) {
    EXPECT_TRUE(local_clean);   // healthy seeds must be clean
    EXPECT_TRUE(global_ok);
  } else {
    EXPECT_FALSE(local_clean);  // every injected link failure breaks some
                                // local contract (latent-risk detection)
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Claim1Property,
                         testing::Range(0, 14));

}  // namespace
}  // namespace dcv::rcdc
