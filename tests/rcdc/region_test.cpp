// Region-scale integration: two datacenters sharing a regional-spine layer,
// with the private-ASN reuse the paper's stripping rule exists for (§2.1).
// Validates contract generation, local validation, the global baseline,
// and cross-datacenter flows all hold together on the larger structure.
#include <gtest/gtest.h>

#include "e2e/trace.hpp"
#include "rcdc/contract_gen.hpp"
#include "rcdc/fib_source.hpp"
#include "rcdc/global_checker.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class RegionTest : public testing::Test {
 protected:
  RegionTest()
      : topology_(topo::build_region(
            topo::ClosParams{.clusters = 2,
                             .tors_per_cluster = 3,
                             .leaves_per_cluster = 3,
                             .spines_per_plane = 2,
                             .regional_spines = 4,
                             .regional_links_per_spine = 2},
            /*datacenters=*/2)),
        metadata_(topology_) {}

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST_F(RegionTest, HealthyRegionValidatesClean) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata_, fibs,
                                      make_trie_verifier_factory());
  const auto summary = validator.run(2);
  EXPECT_TRUE(summary.violations.empty());
  EXPECT_EQ(summary.devices_checked, topology_.device_count());
}

TEST_F(RegionTest, GlobalBaselineChecksEachDatacenterInternally) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  const GlobalChecker checker(metadata_, fibs);
  const auto result = checker.check_all_pairs();
  // 12 prefixes, each checked from the 5 other same-DC ToRs.
  EXPECT_EQ(result.pairs_checked, 12u * 5u);
  EXPECT_TRUE(result.all_ok());
}

TEST_F(RegionTest, CrossDatacenterFlowsAreDelivered) {
  const routing::BgpSimulator sim(topology_);
  const SimulatorFibSource fibs(sim);
  const auto source = *topology_.find_device("DC0-T0-0-0");
  const auto dst_tor = *topology_.find_device("DC1-T0-2-0");
  const auto dst_prefix = topology_.device(dst_tor).hosted_prefixes.front();
  const auto result = e2e::trace_flow(
      metadata_, fibs, source,
      net::PacketHeader{.src_ip = net::Ipv4Address::parse("10.0.0.5"),
                        .src_port = 40000,
                        .dst_ip = dst_prefix.first(),
                        .dst_port = 443,
                        .protocol = 6});
  EXPECT_EQ(result.outcome, e2e::TraceResult::Outcome::kDelivered);
  // ToR -> leaf -> spine -> regional -> spine -> leaf -> ToR: 7 devices.
  EXPECT_EQ(result.hops.size(), 7u);
  EXPECT_EQ(topology_.device(result.hops[3].device).role,
            topo::DeviceRole::kRegionalSpine);
}

TEST_F(RegionTest, FaultInOneDatacenterStaysLocal) {
  topo::FaultInjector faults(topology_);
  // Break a ToR uplink in DC0.
  const auto tor = *topology_.find_device("DC0-T0-0-0");
  const auto leaf = *topology_.find_device("DC0-T1-0-0");
  faults.link_down(*topology_.find_link(tor, leaf));
  const routing::BgpSimulator sim(topology_, &faults);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(metadata_, fibs,
                                      make_trie_verifier_factory());
  const auto summary = validator.run(2);
  EXPECT_FALSE(summary.violations.empty());
  for (const Violation& v : summary.violations) {
    // Only DC0 devices (and regionals, which serve both) may be affected.
    const auto dc = topology_.device(v.device).datacenter;
    EXPECT_TRUE(dc == 0 || dc == topo::kNoDatacenter)
        << topology_.device(v.device).name;
  }
}

TEST_F(RegionTest, RegionalContractsCoverBothDatacenters) {
  const ContractGenerator generator(metadata_);
  const auto regional = *topology_.find_device("RH-0");
  const auto contracts = generator.for_device(regional);
  // One cardinality contract per hosted prefix across the whole region.
  EXPECT_EQ(contracts.size(), metadata_.all_prefixes().size());
  for (const Contract& contract : contracts) {
    EXPECT_EQ(contract.mode, MatchMode::kSubsetAtLeast);
  }
}

TEST_F(RegionTest, TorContractsAreScopedToTheirDatacenter) {
  const ContractGenerator generator(metadata_);
  const auto tor = *topology_.find_device("DC1-T0-2-0");
  for (const Contract& contract : generator.for_device(tor)) {
    if (contract.kind == ContractKind::kDefault) continue;
    const auto fact = metadata_.locate(contract.prefix);
    ASSERT_TRUE(fact.has_value());
    EXPECT_EQ(topology_.device(fact->tor).datacenter, 1u)
        << contract.prefix.to_string();
  }
}

}  // namespace
}  // namespace dcv::rcdc
