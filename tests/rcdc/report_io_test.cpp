#include "rcdc/report_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rcdc/fib_source.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

ValidationSummary figure3_failure_summary(const topo::Topology& topology,
                                          const topo::MetadataService& meta) {
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  const DatacenterValidator validator(meta, fibs,
                                      make_trie_verifier_factory());
  return validator.run(2);
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ReportJson, CleanSummary) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const auto summary = figure3_failure_summary(topology, metadata);
  const std::string json = write_report_json(summary, topology);
  EXPECT_NE(json.find("\"devices_checked\": 20"), std::string::npos);
  EXPECT_NE(json.find("\"violation_count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": []"), std::string::npos);
}

TEST(ReportJson, ViolationsCarryAllFields) {
  auto topology = topo::build_figure3();
  topo::apply_figure3_failures(topology);
  const topo::MetadataService metadata(topology);
  const auto summary = figure3_failure_summary(topology, metadata);
  ASSERT_FALSE(summary.violations.empty());

  const std::string json = write_report_json(summary, topology);
  for (const char* field :
       {"\"device\":", "\"kind\":", "\"contract_kind\":", "\"prefix\":",
        "\"rule_prefix\":", "\"expected_next_hops\":",
        "\"actual_next_hops\":", "\"risk\":", "\"servers_impacted\":",
        "\"action\":", "\"rationale\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"ToR1\""), std::string::npos);
  EXPECT_NE(json.find("default-route-mismatch"), std::string::npos);
  // Triage correlates the down link to a cabling fault.
  EXPECT_NE(json.find("replace-cable"), std::string::npos);
}

TEST(ReportJson, OptionsControlEnrichment) {
  auto topology = topo::build_figure3();
  topo::apply_figure3_failures(topology);
  const topo::MetadataService metadata(topology);
  const auto summary = figure3_failure_summary(topology, metadata);
  const std::string json = write_report_json(
      summary, topology,
      ReportOptions{.include_risk = false, .include_triage = false});
  EXPECT_EQ(json.find("\"risk\":"), std::string::npos);
  EXPECT_EQ(json.find("\"action\":"), std::string::npos);
}

TEST(ReportJson, CompactModeHasNoNewlines) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const auto summary = figure3_failure_summary(topology, metadata);
  const std::string json = write_report_json(
      summary, topology,
      ReportOptions{.include_risk = true, .include_triage = true,
                    .pretty = false});
  // One trailing newline at most.
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 0);
}

TEST(ReportJson, BalancedBracesAndQuotes) {
  auto topology = topo::build_figure3();
  topo::apply_figure3_failures(topology);
  const topo::MetadataService metadata(topology);
  const auto summary = figure3_failure_summary(topology, metadata);
  const std::string json = write_report_json(summary, topology);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Quotes come in pairs (no escaped quotes in device names here).
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

}  // namespace
}  // namespace dcv::rcdc
