// Contract-plan cache semantics: one immutable plan per topology epoch,
// shared by pointer; expected-topology mutations (and only those) rebuild
// it, and a plan already handed out never changes underneath its holder.
#include <gtest/gtest.h>

#include <algorithm>

#include "rcdc/contract_gen.hpp"
#include "rcdc/incremental.hpp"
#include "rcdc/validator.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

TEST(ContractPlanCache, SameEpochReturnsSamePlan) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const ContractGenerator generator(metadata);
  const ContractPlanPtr first = generator.plan();
  const ContractPlanPtr second = generator.plan();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, second);  // pointer identity: built once, shared
  EXPECT_EQ(first->epoch(), metadata.epoch());
}

TEST(ContractPlanCache, StateChangesDoNotInvalidate) {
  // Contracts derive from the expected topology only (§2.4): link or BGP
  // state flips must not bump the epoch, so the cached plan survives fault
  // injection untouched.
  auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const ContractGenerator generator(metadata);
  const ContractPlanPtr before = generator.plan();
  const std::uint64_t epoch_before = topology.epoch();
  topology.set_link_state(0, topo::LinkState::kDown);
  topology.set_bgp_state(1, topo::BgpSessionState::kDown);
  topology.shut_all_sessions_of(0);
  EXPECT_EQ(topology.epoch(), epoch_before);
  EXPECT_EQ(generator.plan(), before);
  topology.clear_faults();
  EXPECT_EQ(generator.plan(), before);
}

TEST(ContractPlanCache, EpochBumpRebuildsAndOldPlanStaysIntact) {
  auto topology = topo::build_figure3();
  const topo::MetadataService* metadata = nullptr;
  topo::MetadataService first_metadata(topology);
  metadata = &first_metadata;
  const ContractGenerator generator(*metadata);

  const ContractPlanPtr old_plan = generator.plan();
  const std::uint64_t old_epoch = old_plan->epoch();
  const std::size_t old_total = old_plan->total_contracts();
  const auto tor = *topology.find_device("ToR1");
  const std::size_t old_tor_contracts =
      old_plan->contracts_for(tor).size();

  // An expected-topology mutation: a new hosted prefix adds one specific
  // contract to (at least) every other ToR and every leaf/spine.
  topology.add_hosted_prefix(*topology.find_device("ToR2"),
                             net::Prefix::parse("10.99.0.0/24"));
  EXPECT_GT(topology.epoch(), old_epoch);
  // Metadata snapshots prefix facts at construction; rebuild it the way a
  // control plane would after reconfiguration.
  topo::MetadataService new_metadata(topology);
  const ContractGenerator new_generator(new_metadata);

  const ContractPlanPtr new_plan = new_generator.plan();
  EXPECT_NE(new_plan, old_plan);
  EXPECT_EQ(new_plan->epoch(), topology.epoch());
  EXPECT_GT(new_plan->total_contracts(), old_total);
  EXPECT_GT(new_plan->contracts_for(tor).size(), old_tor_contracts);

  // The old plan is immutable: a holder mid-cycle keeps seeing exactly the
  // contracts it captured, regardless of the rebuild.
  EXPECT_EQ(old_plan->epoch(), old_epoch);
  EXPECT_EQ(old_plan->total_contracts(), old_total);
  EXPECT_EQ(old_plan->contracts_for(tor).size(), old_tor_contracts);
}

TEST(ContractPlanCache, PlanMatchesForDeviceAndIsTrieWalkOrdered) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const ContractGenerator generator(metadata);
  const ContractPlanPtr plan = generator.plan();

  std::size_t total = 0;
  for (const topo::Device& device : topology.devices()) {
    const auto span = plan->contracts_for(device.id);
    auto unordered = generator.for_device(device.id);
    ASSERT_EQ(span.size(), unordered.size()) << device.name;
    total += span.size();

    // Same contract multiset as the per-device generator...
    std::vector<Contract> from_plan(span.begin(), span.end());
    const auto key = [](const Contract& a, const Contract& b) {
      if (a.kind != b.kind) return a.kind < b.kind;
      return a.prefix < b.prefix;
    };
    std::sort(from_plan.begin(), from_plan.end(), key);
    std::sort(unordered.begin(), unordered.end(), key);
    EXPECT_EQ(from_plan, unordered) << device.name;

    // ...but stored defaults-first, then ascending by prefix.
    bool seen_specific = false;
    const net::Prefix* previous = nullptr;
    for (const Contract& contract : span) {
      if (contract.kind == ContractKind::kDefault) {
        EXPECT_FALSE(seen_specific)
            << device.name << ": default after specific";
        continue;
      }
      if (seen_specific) {
        ASSERT_NE(previous, nullptr);
        EXPECT_LE(*previous, contract.prefix) << device.name;
      }
      seen_specific = true;
      previous = &contract.prefix;
    }
  }
  EXPECT_EQ(plan->total_contracts(), total);
  // Out-of-range ids answer with an empty span, never UB.
  EXPECT_TRUE(plan->contracts_for(static_cast<topo::DeviceId>(
                                      topology.device_count() + 7))
                  .empty());
}

TEST(ContractPlanCache, IncrementalValidatorRevalidatesAllAfterEpochBump) {
  auto topology = topo::build_figure3();
  topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);

  IncrementalValidator incremental(metadata, make_trie_verifier_factory());
  const auto first = incremental.run_cycle(fibs, 2);
  EXPECT_EQ(first.devices_revalidated, first.devices_total);
  const auto second = incremental.run_cycle(fibs, 2);
  EXPECT_EQ(second.devices_revalidated, 0u);

  // Expected-topology change: every cached verdict may now be wrong, so
  // the whole fleet revalidates even though no FIB content changed.
  topology.set_asn(*topology.find_device("ToR1"), topo::Asn{65099});
  const auto third = incremental.run_cycle(fibs, 2);
  EXPECT_EQ(third.devices_revalidated, third.devices_total);
  EXPECT_EQ(third.violations, second.violations);
}

}  // namespace
}  // namespace dcv::rcdc
