#include "rcdc/smt_verifier.hpp"

#include <gtest/gtest.h>

namespace dcv::rcdc {
namespace {

routing::Rule rule(const char* prefix, std::vector<topo::DeviceId> hops) {
  return routing::Rule{.prefix = net::Prefix::parse(prefix),
                       .next_hops = std::move(hops)};
}

Contract specific(const char* prefix, std::vector<topo::DeviceId> hops) {
  return Contract{.kind = ContractKind::kSpecific,
                  .prefix = net::Prefix::parse(prefix),
                  .expected_next_hops = std::move(hops),
                  .mode = MatchMode::kExactSet};
}

Contract default_contract(std::vector<topo::DeviceId> hops) {
  return Contract{.kind = ContractKind::kDefault,
                  .prefix = net::Prefix::default_route(),
                  .expected_next_hops = std::move(hops),
                  .mode = MatchMode::kExactSet};
}

TEST(SmtVerifier, CleanPolicyPasses) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.0/24", {1, 2}));
  const std::vector<Contract> contracts = {default_contract({1, 2}),
                                           specific("10.0.1.0/24", {1, 2})};
  EXPECT_TRUE(verifier.check(fib, contracts, 0).empty());
}

TEST(SmtVerifier, FindsWrongNextHops) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.0/24", {1}));
  const std::vector<Contract> contracts = {specific("10.0.1.0/24", {1, 2})};
  const auto violations = verifier.check(fib, contracts, 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kWrongNextHops);
  EXPECT_EQ(violations[0].rule_prefix, net::Prefix::parse("10.0.1.0/24"));
}

TEST(SmtVerifier, ShadowedRuleNotFlagged) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("10.0.1.0/25", {1, 2}));
  fib.add(rule("10.0.1.128/25", {1, 2}));
  fib.add(rule("10.0.1.0/24", {9}));  // unreachable within the range
  const std::vector<Contract> contracts = {specific("10.0.1.0/24", {1, 2})};
  EXPECT_TRUE(verifier.check(fib, contracts, 0).empty());
}

TEST(SmtVerifier, DetectsDrop) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("10.0.1.0/25", {1}));
  const std::vector<Contract> contracts = {specific("10.0.1.0/24", {1})};
  const auto violations = verifier.check(fib, contracts, 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kUnreachableRange);
}

TEST(SmtVerifier, MonolithicCleanContractIsUnsat) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.0/24", {3, 4}));
  EXPECT_EQ(verifier.check_contract_monolithic(
                fib, specific("10.0.1.0/24", {3, 4}), 0),
            std::nullopt);
  // The range falls through to the default route with matching hops.
  EXPECT_EQ(verifier.check_contract_monolithic(
                fib, specific("10.0.2.0/24", {1, 2}), 0),
            std::nullopt);
}

TEST(SmtVerifier, MonolithicFindsViolatingRuleFromWitness) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1, 2}));
  fib.add(rule("10.0.1.16/28", {9}));
  const auto violation = verifier.check_contract_monolithic(
      fib, specific("10.0.1.0/24", {1, 2}), 0);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, ViolationKind::kWrongNextHops);
  EXPECT_EQ(violation->rule_prefix, net::Prefix::parse("10.0.1.16/28"));
}

TEST(SmtVerifier, MonolithicDetectsDrop) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;  // empty: everything drops
  const auto violation = verifier.check_contract_monolithic(
      fib, specific("10.0.1.0/24", {1}), 0);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, ViolationKind::kUnreachableRange);
}

TEST(SmtVerifier, MonolithicSubsetMode) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("10.0.1.0/24", {2}));
  Contract c = specific("10.0.1.0/24", {1, 2, 3});
  c.mode = MatchMode::kSubsetAtLeast;
  c.min_next_hops = 1;
  EXPECT_EQ(verifier.check_contract_monolithic(fib, c, 0), std::nullopt);

  c.min_next_hops = 2;
  EXPECT_TRUE(verifier.check_contract_monolithic(fib, c, 0).has_value());

  routing::ForwardingTable bad;
  bad.add(rule("10.0.1.0/24", {2, 9}));  // 9 is off-contract
  c.min_next_hops = 1;
  EXPECT_TRUE(verifier.check_contract_monolithic(bad, c, 0).has_value());
}

TEST(SmtVerifier, MonolithicDefaultContractSpecialCase) {
  SmtVerifier verifier;
  routing::ForwardingTable fib;
  fib.add(rule("0.0.0.0/0", {1}));
  EXPECT_TRUE(verifier
                  .check_contract_monolithic(fib, default_contract({1, 2}), 0)
                  .has_value());
  EXPECT_EQ(
      verifier.check_contract_monolithic(fib, default_contract({1}), 0),
      std::nullopt);
}

}  // namespace
}  // namespace dcv::rcdc
