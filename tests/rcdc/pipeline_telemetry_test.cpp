// Telemetry-plane tests for the monitoring pipeline: the causal span tree
// recorded per cycle, the health() snapshot, and the /readyz probe built by
// make_pipeline_probe. Suite name stays `MonitoringPipeline` so the CI
// thread-sanitizer job's filter picks these up.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/span.hpp"
#include "rcdc/flaky_fib_source.hpp"
#include "rcdc/pipeline.hpp"
#include "rcdc/resilient_fib_source.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

PipelineConfig traced_config(obs::TraceRing* ring) {
  return PipelineConfig{.puller_workers = 4,
                        .validator_workers = 4,
                        .fetch_latency_min = std::chrono::microseconds(200),
                        .fetch_latency_max = std::chrono::microseconds(800),
                        .time_scale = 0.01,
                        .seed = 5,
                        .trace = ring};
}

std::map<std::uint64_t, obs::TraceEvent> events_by_id(
    const obs::TraceRing& ring) {
  std::map<std::uint64_t, obs::TraceEvent> index;
  for (const auto& event : ring.events()) index.emplace(event.id, event);
  return index;
}

TEST(MonitoringPipeline, CycleRecordsAParentLinkedSpanTree) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  obs::TraceRing ring(4096);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              traced_config(&ring));
  const auto stats = pipeline.run_cycle();

  const auto index = events_by_id(ring);
  std::map<std::string, std::size_t> names;
  for (const auto& [id, event] : index) ++names[event.name];

  // One cycle root with one contracts child; per-device fetch and
  // validate → {verify, report} trees on the workers.
  EXPECT_EQ(names["cycle"], 1u);
  EXPECT_EQ(names["contracts"], 1u);
  EXPECT_EQ(names["fetch"], stats.devices);
  EXPECT_EQ(names["validate"], stats.devices);
  EXPECT_EQ(names["verify"], stats.devices);
  EXPECT_EQ(names["report"], stats.devices);

  std::uint64_t cycle_span = 0;
  std::uint64_t cycle_correlation = 0;
  for (const auto& [id, event] : index) {
    if (event.name == "cycle") {
      cycle_span = id;
      cycle_correlation = event.cycle;
    }
  }
  ASSERT_NE(cycle_span, 0u);
  ASSERT_NE(cycle_correlation, 0u);

  for (const auto& [id, event] : index) {
    // Every span of the cycle carries the same correlation id ...
    EXPECT_EQ(event.cycle, cycle_correlation) << event.name;
    // ... and parent links are intact within their thread: contracts hangs
    // off the cycle root, verify/report hang off a validate span.
    if (event.name == "contracts") {
      EXPECT_EQ(event.parent, cycle_span);
    } else if (event.name == "verify" || event.name == "report") {
      const auto parent = index.find(event.parent);
      ASSERT_NE(parent, index.end()) << event.name;
      EXPECT_EQ(parent->second.name, "validate");
    } else if (event.name == "fetch" || event.name == "validate") {
      // Worker-thread roots: parented by nothing on their own thread.
      EXPECT_EQ(event.parent, 0u) << event.name;
    }
  }

  // The cycle root must span its children in time.
  const auto& root = index.at(cycle_span);
  for (const auto& [id, event] : index) {
    EXPECT_GE(event.start.count(), root.start.count()) << event.name;
    EXPECT_LE((event.start + event.duration).count(),
              (root.start + root.duration).count() + 1'000'000)
        << event.name;
  }
}

TEST(MonitoringPipeline, CyclesGetDistinctCorrelationIds) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  obs::TraceRing ring(4096);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              traced_config(&ring));
  (void)pipeline.run_cycle();
  (void)pipeline.run_cycle();

  std::set<std::uint64_t> cycle_ids;
  for (const auto& event : ring.events()) {
    if (event.name == "cycle") cycle_ids.insert(event.cycle);
    EXPECT_NE(event.cycle, 0u);
  }
  EXPECT_EQ(cycle_ids.size(), 2u);
}

TEST(MonitoringPipeline, ChromeTraceOfACycleIsParentLinked) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  obs::TraceRing ring(4096);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              traced_config(&ring));
  (void)pipeline.run_cycle();

  const std::string trace = obs::write_chrome_trace(ring);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  for (const char* stage : {"cycle", "contracts", "fetch", "validate",
                            "verify", "report"}) {
    EXPECT_NE(trace.find("\"name\":\"" + std::string(stage) + "\""),
              std::string::npos)
        << stage;
  }
  // Spot-check one causal link survives the export: a verify event carries
  // its validate parent's span id.
  const auto index = events_by_id(ring);
  for (const auto& [id, event] : index) {
    if (event.name != "verify") continue;
    EXPECT_NE(trace.find("\"span_id\":" + std::to_string(id)),
              std::string::npos);
    EXPECT_NE(trace.find("\"parent_id\":" + std::to_string(event.parent)),
              std::string::npos);
    break;
  }
}

TEST(MonitoringPipeline, HealthSnapshotTracksCycles) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              traced_config(nullptr));

  PipelineHealth before = pipeline.health();
  EXPECT_EQ(before.cycles_completed, 0u);
  EXPECT_FALSE(before.cycle_in_progress);
  EXPECT_LT(before.since_last_cycle.count(), 0);
  EXPECT_EQ(before.queue_capacity, 256u);

  const auto stats = pipeline.run_cycle();
  PipelineHealth after = pipeline.health();
  EXPECT_EQ(after.cycles_completed, 1u);
  EXPECT_FALSE(after.cycle_in_progress);
  EXPECT_DOUBLE_EQ(after.coverage, stats.coverage());
  EXPECT_EQ(after.queue_depth, 0u);
  EXPECT_GE(after.since_last_cycle.count(), 0);
}

TEST(MonitoringPipeline, ProbeNotReadyBeforeFirstCycle) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              traced_config(nullptr));
  const auto probe = make_pipeline_probe(pipeline);

  obs::HealthSnapshot snapshot = probe();
  EXPECT_TRUE(snapshot.alive);
  EXPECT_FALSE(snapshot.ready);
  EXPECT_NE(snapshot.detail.find("no monitoring cycle"), std::string::npos);

  (void)pipeline.run_cycle();
  snapshot = probe();
  EXPECT_TRUE(snapshot.ready) << snapshot.detail;
}

TEST(MonitoringPipeline, ProbeFlipsOnLowCoverage) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  // Half the fleet unreachable: coverage lands far below the 0.9 default.
  const FlakyFibSource flaky(
      fibs, FlakyConfig{.unreachable_rate = 0.5, .seed = 3});
  MonitoringPipeline pipeline(metadata, flaky, make_trie_verifier_factory(),
                              traced_config(nullptr));
  const auto stats = pipeline.run_cycle();
  ASSERT_LT(stats.coverage(), 0.9);

  const auto probe = make_pipeline_probe(pipeline);
  const obs::HealthSnapshot snapshot = probe();
  EXPECT_TRUE(snapshot.alive);
  EXPECT_FALSE(snapshot.ready);
  EXPECT_NE(snapshot.detail.find("coverage"), std::string::npos);

  // Relaxed rules accept the same cycle.
  ReadinessRules lenient;
  lenient.min_coverage = 0.0;
  const obs::HealthSnapshot relaxed =
      make_pipeline_probe(pipeline, lenient)();
  EXPECT_TRUE(relaxed.ready) << relaxed.detail;
}

TEST(MonitoringPipeline, ProbeFlipsOnBreakerOpens) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource inner(sim);
  FlakyFibSource flaky(inner, FlakyConfig{.seed = 1});
  flaky.mark_dead(*topology.find_device("ToR1"));

  ManualFetchClock clock;
  const ResilientFibSource hardened(
      flaky,
      ResilienceConfig{.retry = {.max_attempts = 2,
                                 .initial_backoff =
                                     std::chrono::milliseconds(10)},
                       .breaker = {.failure_threshold = 2,
                                   .cool_down = std::chrono::hours(1)},
                       .serve_stale = false},
      &clock);
  MonitoringPipeline pipeline(metadata, hardened,
                              make_trie_verifier_factory(),
                              traced_config(nullptr));
  // One dead device out of a dozen keeps coverage above 0.9, so the
  // readiness verdict isolates the breaker rule.
  ReadinessRules rules;
  rules.min_coverage = 0.5;

  (void)pipeline.run_cycle();  // failure 1 of 2: breaker still closed
  EXPECT_TRUE(make_pipeline_probe(pipeline, rules)().ready);

  const auto stats = pipeline.run_cycle();  // threshold reached: opens
  ASSERT_EQ(stats.breaker_opens, 1u);
  const obs::HealthSnapshot snapshot =
      make_pipeline_probe(pipeline, rules)();
  EXPECT_FALSE(snapshot.ready);
  EXPECT_NE(snapshot.detail.find("circuit breakers"), std::string::npos);

  ReadinessRules tolerant = rules;
  tolerant.max_breaker_opens = 1;
  EXPECT_TRUE(make_pipeline_probe(pipeline, tolerant)().ready);
}

TEST(MonitoringPipeline, ProbeFlipsOnStaleCycle) {
  const auto topology = topo::build_figure3();
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              traced_config(nullptr));
  (void)pipeline.run_cycle();

  ReadinessRules strict;
  strict.max_cycle_age = std::chrono::nanoseconds(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const obs::HealthSnapshot stale = make_pipeline_probe(pipeline, strict)();
  EXPECT_FALSE(stale.ready);
  EXPECT_NE(stale.detail.find("stale"), std::string::npos);

  // Age rule disabled (the default): the same state is ready.
  EXPECT_TRUE(make_pipeline_probe(pipeline)().ready);
}

TEST(MonitoringPipeline, ProbeReadableWhileCycleRuns) {
  const auto topology = topo::build_clos(topo::ClosParams{});
  const topo::MetadataService metadata(topology);
  const routing::BgpSimulator sim(topology);
  const SimulatorFibSource fibs(sim);
  obs::TraceRing ring(4096);
  MonitoringPipeline pipeline(metadata, fibs, make_trie_verifier_factory(),
                              traced_config(&ring));
  const auto probe = make_pipeline_probe(pipeline);

  std::thread runner([&pipeline] {
    (void)pipeline.run_cycle();
    (void)pipeline.run_cycle();
  });
  for (int i = 0; i < 100; ++i) {
    const obs::HealthSnapshot snapshot = probe();
    EXPECT_TRUE(snapshot.alive);
    const PipelineHealth health = pipeline.health();
    EXPECT_LE(health.queue_depth, health.queue_capacity);
  }
  runner.join();
  EXPECT_EQ(pipeline.health().cycles_completed, 2u);
}

}  // namespace
}  // namespace dcv::rcdc
