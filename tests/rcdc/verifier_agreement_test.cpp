// Property suite: the trie engine (§2.5.2) and the Z3 engine (§2.5.1)
// implement identical semantics. Random policies and contracts are thrown
// at both; their violation lists must agree, and the monolithic
// single-query encoding must agree on the verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "rcdc/linear_verifier.hpp"
#include "rcdc/smt_verifier.hpp"
#include "rcdc/trie_verifier.hpp"

namespace dcv::rcdc {
namespace {

struct Shape {
  std::uint64_t seed;
  int rules;
  int contracts;
};

class VerifierAgreement : public testing::TestWithParam<Shape> {};

std::vector<Violation> sorted(std::vector<Violation> violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.contract.prefix != b.contract.prefix) {
                return a.contract.prefix < b.contract.prefix;
              }
              if (a.rule_prefix != b.rule_prefix) {
                return a.rule_prefix < b.rule_prefix;
              }
              return a.kind < b.kind;
            });
  return violations;
}

TEST_P(VerifierAgreement, TrieAndSmtAgreeOnRandomInputs) {
  const Shape shape = GetParam();
  std::mt19937_64 rng(shape.seed);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> rule_len(8, 30);
  std::uniform_int_distribution<int> contract_len(12, 26);
  std::uniform_int_distribution<int> hop_count(0, 3);
  std::uniform_int_distribution<topo::DeviceId> hop(1, 5);
  std::uniform_int_distribution<int> coin(0, 1);

  // Random policy over a narrow space (10.0.0.0/12) so overlaps are common.
  routing::ForwardingTable fib;
  if (coin(rng) == 0) {
    fib.add(routing::Rule{.prefix = net::Prefix::default_route(),
                          .next_hops = {1, 2}});
  }
  for (int i = 0; i < shape.rules; ++i) {
    std::vector<topo::DeviceId> hops;
    for (int h = hop_count(rng); h > 0; --h) hops.push_back(hop(rng));
    fib.add(routing::Rule{
        .prefix = net::Prefix(
            net::Ipv4Address((addr(rng) & 0x000FFFFFu) | 0x0A000000u),
            rule_len(rng)),
        .next_hops = std::move(hops)});
  }

  std::vector<Contract> contracts;
  for (int i = 0; i < shape.contracts; ++i) {
    std::vector<topo::DeviceId> hops;
    for (int h = hop_count(rng); h > 0; --h) hops.push_back(hop(rng));
    routing::canonicalize(hops);
    const bool subset_mode = coin(rng) == 0 && !hops.empty();
    contracts.push_back(Contract{
        .kind = ContractKind::kSpecific,
        .prefix = net::Prefix(
            net::Ipv4Address((addr(rng) & 0x000FFFFFu) | 0x0A000000u),
            contract_len(rng)),
        .expected_next_hops = hops,
        .mode = subset_mode ? MatchMode::kSubsetAtLeast
                            : MatchMode::kExactSet,
        .min_next_hops = 1,
        // Exercise both semantics: strict contracts reject default-route
        // fallback even with matching hops.
        .allow_default_route = coin(rng) == 0});
  }

  TrieVerifier trie;
  SmtVerifier smt;
  LinearVerifier linear;
  const auto trie_result = sorted(trie.check(fib, contracts, 0));
  const auto smt_result = sorted(smt.check(fib, contracts, 0));
  const auto linear_result = sorted(linear.check(fib, contracts, 0));
  ASSERT_EQ(trie_result.size(), smt_result.size());
  for (std::size_t i = 0; i < trie_result.size(); ++i) {
    EXPECT_EQ(trie_result[i], smt_result[i]) << i;
  }
  ASSERT_EQ(trie_result.size(), linear_result.size());
  for (std::size_t i = 0; i < trie_result.size(); ++i) {
    EXPECT_EQ(trie_result[i], linear_result[i]) << i;
  }

  // The monolithic encoding agrees on the per-contract verdict.
  for (const Contract& contract : contracts) {
    const bool violated_by_list =
        std::any_of(trie_result.begin(), trie_result.end(),
                    [&](const Violation& v) { return v.contract == contract; });
    const auto monolithic =
        smt.check_contract_monolithic(fib, contract, 0);
    EXPECT_EQ(monolithic.has_value(), violated_by_list)
        << contract.prefix.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, VerifierAgreement,
    testing::Values(Shape{1, 5, 6}, Shape{2, 10, 8}, Shape{3, 20, 10},
                    Shape{4, 40, 12}, Shape{5, 3, 20}, Shape{6, 60, 6},
                    Shape{7, 15, 15}, Shape{8, 25, 10}, Shape{9, 50, 8},
                    Shape{10, 8, 30}, Shape{11, 30, 20}, Shape{12, 70, 5}));

}  // namespace
}  // namespace dcv::rcdc
