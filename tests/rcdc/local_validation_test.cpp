#include "rcdc/local_validation.hpp"

#include <gtest/gtest.h>

#include "rcdc/contract_gen.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::rcdc {
namespace {

class DeltaFramework : public testing::Test {
 protected:
  DeltaFramework()
      : topology_(topo::build_figure3()),
        metadata_(topology_),
        framework_(metadata_) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
  LocalValidationFramework framework_;
};

TEST_F(DeltaFramework, RanksMatchArchitecturalDistance) {
  const auto prefix_a = net::Prefix::parse("10.0.0.0/24");  // at ToR1
  EXPECT_EQ(framework_.delta(prefix_a, id("ToR1")), 0);
  EXPECT_EQ(framework_.delta(prefix_a, id("A1")), 1);   // leaf in cluster
  EXPECT_EQ(framework_.delta(prefix_a, id("ToR2")), 2);  // sibling ToR
  EXPECT_EQ(framework_.delta(prefix_a, id("D1")), 2);   // spine
  EXPECT_EQ(framework_.delta(prefix_a, id("B1")), 3);   // remote leaf
  EXPECT_EQ(framework_.delta(prefix_a, id("R1")), 3);   // regional
  EXPECT_EQ(framework_.delta(prefix_a, id("ToR3")), 4);  // remote ToR
}

TEST_F(DeltaFramework, UnknownPrefixHasNoRank) {
  EXPECT_EQ(framework_.delta(net::Prefix::parse("99.0.0.0/24"), id("ToR1")),
            std::nullopt);
}

TEST_F(DeltaFramework, CardinalityBoundsMatchFanout) {
  const auto prefix_a = net::Prefix::parse("10.0.0.0/24");
  EXPECT_EQ(framework_.cardinality_bound(prefix_a, id("ToR1")), 0u);  // dest
  EXPECT_EQ(framework_.cardinality_bound(prefix_a, id("ToR3")), 4u);
  EXPECT_EQ(framework_.cardinality_bound(prefix_a, id("A1")), 1u);
  EXPECT_EQ(framework_.cardinality_bound(prefix_a, id("B2")), 1u);
  EXPECT_EQ(framework_.cardinality_bound(prefix_a, id("D1")), 1u);
  EXPECT_EQ(framework_.cardinality_bound(prefix_a, id("R1")), 1u);
}

TEST_F(DeltaFramework, GeneratedContractsSatisfyTheFramework) {
  // The inductive proof obligation behind Claim 1: every generated
  // contract's next hops strictly decrease delta and meet the bound.
  const ContractGenerator generator(metadata_);
  for (const topo::Device& device : topology_.devices()) {
    const auto contracts = generator.for_device(device.id);
    const auto issues = framework_.check_contracts(device.id, contracts);
    EXPECT_TRUE(issues.empty())
        << device.name << ": "
        << (issues.empty() ? "" : issues.front().message);
  }
}

TEST_F(DeltaFramework, GeneratedContractsSatisfyFrameworkOnWideClos) {
  const auto topology = topo::build_clos(topo::ClosParams{
      .clusters = 4,
      .tors_per_cluster = 3,
      .leaves_per_cluster = 4,
      .spines_per_plane = 2,
      .regional_spines = 6,
      .regional_links_per_spine = 3});
  const topo::MetadataService metadata(topology);
  const LocalValidationFramework framework(metadata);
  const ContractGenerator generator(metadata);
  for (const topo::Device& device : topology.devices()) {
    EXPECT_TRUE(framework
                    .check_contracts(device.id,
                                     generator.for_device(device.id))
                    .empty())
        << device.name;
  }
}

TEST_F(DeltaFramework, HealthyFibsSatisfyTheFramework) {
  const routing::BgpSimulator sim(topology_);
  for (const topo::Device& device : topology_.devices()) {
    const auto issues =
        framework_.check_fib(device.id, sim.fib(device.id));
    EXPECT_TRUE(issues.empty()) << device.name;
  }
}

TEST_F(DeltaFramework, CardinalityViolationDetectedOnFib) {
  // Degrade ToR1's fan-out; the framework flags the bound violation.
  topo::apply_figure3_failures(topology_);
  const routing::BgpSimulator sim(topology_);
  const auto issues =
      framework_.check_fib(id("ToR1"), sim.fib(id("ToR1")));
  EXPECT_FALSE(issues.empty());
}

TEST_F(DeltaFramework, RankViolationDetected) {
  // A hand-built FIB that forwards Prefix_A *up* from a spine to a
  // regional spine: rank 2 -> 3 must be rejected.
  routing::ForwardingTable fib;
  fib.add(routing::Rule{.prefix = net::Prefix::parse("10.0.0.0/24"),
                        .next_hops = {id("R1")}});
  const auto issues = framework_.check_fib(id("D1"), fib);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("rank does not decrease"),
            std::string::npos);
}

TEST_F(DeltaFramework, MissingDecisionDetected) {
  const routing::ForwardingTable empty;
  const auto issues = framework_.check_fib(id("D1"), empty);
  EXPECT_EQ(issues.size(), metadata_.all_prefixes().size());
}

}  // namespace
}  // namespace dcv::rcdc
