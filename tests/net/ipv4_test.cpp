#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/error.hpp"

namespace dcv::net {
namespace {

TEST(Ipv4Address, DefaultIsZero) {
  EXPECT_EQ(Ipv4Address{}.value(), 0u);
  EXPECT_EQ(Ipv4Address{}.to_string(), "0.0.0.0");
}

TEST(Ipv4Address, FromOctetsPacksMostSignificantFirst) {
  const auto a = Ipv4Address::from_octets(10, 20, 30, 40);
  EXPECT_EQ(a.value(), 0x0A141E28u);
}

TEST(Ipv4Address, OctetAccessor) {
  const auto a = Ipv4Address::from_octets(1, 2, 3, 4);
  EXPECT_EQ(a.octet(0), 1);
  EXPECT_EQ(a.octet(1), 2);
  EXPECT_EQ(a.octet(2), 3);
  EXPECT_EQ(a.octet(3), 4);
}

TEST(Ipv4Address, BitAccessorCountsFromMostSignificant) {
  const auto a = Ipv4Address(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_FALSE(a.bit(30));
  EXPECT_TRUE(a.bit(31));
}

TEST(Ipv4Address, RoundTripParseFormat) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "10.3.129.224",
                           "104.208.32.17", "192.168.1.1"}) {
    EXPECT_EQ(Ipv4Address::parse(text).to_string(), text);
  }
}

TEST(Ipv4Address, OrderingMatchesNumericValue) {
  EXPECT_LT(Ipv4Address::parse("10.0.0.0"), Ipv4Address::parse("10.0.0.1"));
  EXPECT_LT(Ipv4Address::parse("9.255.255.255"),
            Ipv4Address::parse("10.0.0.0"));
  EXPECT_EQ(Ipv4Address::parse("1.2.3.4"),
            Ipv4Address::from_octets(1, 2, 3, 4));
}

TEST(Ipv4Address, StreamOutput) {
  std::ostringstream os;
  os << Ipv4Address::from_octets(172, 16, 0, 1);
  EXPECT_EQ(os.str(), "172.16.0.1");
}

class Ipv4ParseErrorTest : public testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseErrorTest, Rejects) {
  EXPECT_THROW(Ipv4Address::parse(GetParam()), ParseError);
}

INSTANTIATE_TEST_SUITE_P(Malformed, Ipv4ParseErrorTest,
                         testing::Values("", "1", "1.2", "1.2.3", "1.2.3.4.5",
                                         "256.1.1.1", "1.256.1.1",
                                         "1.2.3.256", "a.b.c.d", "1..2.3",
                                         "1.2.3.4 ", " 1.2.3.4", "1,2,3,4",
                                         "-1.2.3.4"));

}  // namespace
}  // namespace dcv::net
