// Robustness sweep over every text parser in the repository: random byte
// soup and random token soup must either parse or throw dcv::Error —
// never crash, hang, or corrupt state. These parsers sit on operational
// input paths (device output, config files), where garbage is routine.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "net/error.hpp"
#include "routing/table_io.hpp"
#include "secguru/acl_parser.hpp"
#include "secguru/contracts_io.hpp"
#include "secguru/device_config.hpp"
#include "secguru/nsg.hpp"
#include "topology/topology_io.hpp"

namespace dcv {
namespace {

/// Random printable soup with newlines.
std::string byte_soup(std::mt19937_64& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789./-_ \t\n#!,=";
  std::uniform_int_distribution<std::size_t> pick(0,
                                                  sizeof kAlphabet - 2);
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out += kAlphabet[pick(rng)];
  return out;
}

/// Soup built from the parsers' own keywords — exercises deeper paths.
std::string token_soup(std::mt19937_64& rng, std::size_t tokens) {
  static constexpr const char* kTokens[] = {
      "permit", "deny",    "allow",   "remark",  "ip",       "tcp",
      "udp",    "any",     "host",    "eq",      "range",    "device",
      "link",   "prefix",  "tor",     "leaf",    "spine",    "regional",
      "via",    "B", "E",  "C",       "VRF",     "hostname", "interface",
      "router", "bgp",     "neighbor", "remote-as", "shutdown",
      "10.0.0.0/8", "1.2.3.4", "443", "cluster=1", "dc=2", "0.0.0.0/0",
      "#", "!", "\n", "\n", "\n"};
  std::uniform_int_distribution<std::size_t> pick(0,
                                                  std::size(kTokens) - 1);
  std::string out;
  for (std::size_t i = 0; i < tokens; ++i) {
    out += kTokens[pick(rng)];
    out += ' ';
  }
  return out;
}

template <typename Parser>
void hammer(Parser&& parser, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string input = trial % 2 == 0
                                  ? byte_soup(rng, 40 + trial)
                                  : token_soup(rng, 5 + trial % 40);
    try {
      parser(input);
    } catch (const dcv::Error&) {
      // Expected for malformed input.
    }
    // Anything else (std::bad_alloc, segfault, std::out_of_range...) fails
    // the test by escaping or crashing.
  }
}

TEST(ParserRobustness, AclParser) {
  hammer([](const std::string& s) { (void)secguru::parse_acl(s); }, 1);
}

TEST(ParserRobustness, NsgParser) {
  hammer([](const std::string& s) { (void)secguru::parse_nsg(s); }, 2);
}

TEST(ParserRobustness, ContractsParser) {
  hammer([](const std::string& s) { (void)secguru::parse_contracts(s); },
         3);
}

TEST(ParserRobustness, DeviceConfigParser) {
  hammer(
      [](const std::string& s) { (void)secguru::parse_device_config(s); },
      4);
}

TEST(ParserRobustness, TopologyParser) {
  hammer([](const std::string& s) { (void)topo::parse_topology(s); }, 5);
}

TEST(ParserRobustness, RoutingTableParser) {
  hammer(
      [](const std::string& s) { (void)routing::parse_routing_table(s); },
      6);
}

TEST(ParserRobustness, PrefixAndAddressParsers) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string input = byte_soup(rng, 1 + trial % 24);
    try {
      (void)net::Prefix::parse(input);
    } catch (const dcv::Error&) {
    }
    try {
      (void)net::Ipv4Address::parse(input);
    } catch (const dcv::Error&) {
    }
    try {
      (void)net::ProtocolSpec::parse(input);
    } catch (const dcv::Error&) {
    }
  }
}

}  // namespace
}  // namespace dcv
