#include "net/interval.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dcv::net {
namespace {

AddressInterval iv(std::uint32_t lo, std::uint32_t hi) {
  return AddressInterval(Ipv4Address(lo), Ipv4Address(hi));
}

TEST(AddressInterval, FromPrefix) {
  const auto i = AddressInterval::from_prefix(Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(i.lo.to_string(), "10.0.0.0");
  EXPECT_EQ(i.hi.to_string(), "10.0.0.255");
  EXPECT_EQ(i.size(), 256u);
}

TEST(AddressInterval, ContainsAndOverlaps) {
  EXPECT_TRUE(iv(10, 20).contains(iv(10, 20)));
  EXPECT_TRUE(iv(10, 20).contains(iv(12, 18)));
  EXPECT_FALSE(iv(10, 20).contains(iv(12, 21)));
  EXPECT_TRUE(iv(10, 20).overlaps(iv(20, 30)));
  EXPECT_FALSE(iv(10, 20).overlaps(iv(21, 30)));
  EXPECT_TRUE(iv(10, 20).contains(Ipv4Address(15)));
  EXPECT_FALSE(iv(10, 20).contains(Ipv4Address(21)));
}

TEST(AddressInterval, FullSpaceSize) {
  EXPECT_EQ(iv(0, 0xFFFFFFFFu).size(), std::uint64_t{1} << 32);
}

TEST(IntervalSet, EmptyCoversNothing) {
  const IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.covers(iv(0, 0)));
  EXPECT_EQ(set.size(), 0u);
}

TEST(IntervalSet, SingleInterval) {
  IntervalSet set;
  set.add(iv(10, 20));
  EXPECT_TRUE(set.covers(iv(10, 20)));
  EXPECT_TRUE(set.covers(iv(12, 15)));
  EXPECT_FALSE(set.covers(iv(9, 20)));
  EXPECT_FALSE(set.covers(iv(10, 21)));
  EXPECT_EQ(set.size(), 11u);
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet set;
  set.add(iv(10, 20));
  set.add(iv(15, 30));
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_TRUE(set.covers(iv(10, 30)));
}

TEST(IntervalSet, MergesAdjacent) {
  IntervalSet set;
  set.add(iv(10, 20));
  set.add(iv(21, 30));
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_TRUE(set.covers(iv(10, 30)));
}

TEST(IntervalSet, KeepsGapsOpen) {
  IntervalSet set;
  set.add(iv(10, 20));
  set.add(iv(22, 30));
  EXPECT_EQ(set.intervals().size(), 2u);
  EXPECT_FALSE(set.covers(iv(10, 30)));
  EXPECT_FALSE(set.contains(Ipv4Address(21)));
  EXPECT_TRUE(set.contains(Ipv4Address(22)));
}

TEST(IntervalSet, CoverageAcrossMergedPieces) {
  IntervalSet set;
  // Two /25s tile a /24.
  set.add(Prefix::parse("10.0.0.0/25"));
  EXPECT_FALSE(set.covers(Prefix::parse("10.0.0.0/24")));
  set.add(Prefix::parse("10.0.0.128/25"));
  EXPECT_TRUE(set.covers(Prefix::parse("10.0.0.0/24")));
}

TEST(IntervalSet, HandlesAddressSpaceBoundaries) {
  IntervalSet set;
  set.add(iv(0xFFFFFF00u, 0xFFFFFFFFu));
  set.add(iv(0, 255));
  EXPECT_EQ(set.intervals().size(), 2u);
  EXPECT_TRUE(set.contains(Ipv4Address(0xFFFFFFFFu)));
  EXPECT_TRUE(set.contains(Ipv4Address(0)));
}

TEST(IntervalSet, InvalidIntervalIgnored) {
  IntervalSet set;
  set.add(iv(20, 10));
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, OneAddMergesMultipleExisting) {
  IntervalSet set;
  set.add(iv(0, 10));
  set.add(iv(20, 30));
  set.add(iv(40, 50));
  set.add(iv(5, 45));  // bridges all three
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_TRUE(set.covers(iv(0, 50)));
}

/// Property: the set behaves like a bitmap of the covered addresses.
TEST(IntervalSetProperty, MatchesNaiveBitmap) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint32_t> pick(0, 255);
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet set;
    std::vector<bool> bitmap(256, false);
    for (int i = 0; i < 12; ++i) {
      std::uint32_t a = pick(rng), b = pick(rng);
      if (a > b) std::swap(a, b);
      set.add(iv(a, b));
      for (std::uint32_t x = a; x <= b; ++x) bitmap[x] = true;
    }
    std::uint64_t expected_size = 0;
    for (const bool bit : bitmap) expected_size += bit ? 1 : 0;
    EXPECT_EQ(set.size(), expected_size);
    for (std::uint32_t x = 0; x < 256; ++x) {
      EXPECT_EQ(set.contains(Ipv4Address(x)), bitmap[x]) << x;
    }
    for (int i = 0; i < 20; ++i) {
      std::uint32_t a = pick(rng), b = pick(rng);
      if (a > b) std::swap(a, b);
      bool all = true;
      for (std::uint32_t x = a; x <= b; ++x) all = all && bitmap[x];
      EXPECT_EQ(set.covers(iv(a, b)), all) << a << ".." << b;
    }
  }
}

}  // namespace
}  // namespace dcv::net
