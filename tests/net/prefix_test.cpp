#include "net/prefix.hpp"

#include <gtest/gtest.h>

#include <random>

#include "net/error.hpp"

namespace dcv::net {
namespace {

TEST(Prefix, DefaultIsDefaultRoute) {
  EXPECT_TRUE(Prefix{}.is_default());
  EXPECT_EQ(Prefix{}.to_string(), "0.0.0.0/0");
  EXPECT_EQ(Prefix::default_route(), Prefix{});
}

TEST(Prefix, HostBitsAreMaskedOff) {
  const Prefix p(Ipv4Address::parse("10.20.30.40"), 24);
  EXPECT_EQ(p.network().to_string(), "10.20.30.0");
  EXPECT_EQ(p, Prefix::parse("10.20.30.0/24"));
}

TEST(Prefix, ParseBareAddressAsHostRoute) {
  const Prefix p = Prefix::parse("1.2.3.4");
  EXPECT_EQ(p.length(), 32);
  EXPECT_EQ(p.size(), 1u);
}

TEST(Prefix, FirstAndLast) {
  const Prefix p = Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(p.first().to_string(), "10.0.0.0");
  EXPECT_EQ(p.last().to_string(), "10.255.255.255");
  EXPECT_EQ(Prefix::parse("10.3.129.224/28").last().to_string(),
            "10.3.129.239");
}

TEST(Prefix, MaskAndSize) {
  EXPECT_EQ(Prefix::parse("1.0.0.0/24").mask().to_string(), "255.255.255.0");
  EXPECT_EQ(Prefix::parse("1.0.0.0/12").mask().to_string(), "255.240.0.0");
  EXPECT_EQ(Prefix::parse("0.0.0.0/0").size(), std::uint64_t{1} << 32);
  EXPECT_EQ(Prefix::parse("1.0.0.0/24").size(), 256u);
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::parse("172.16.0.0/12");
  EXPECT_TRUE(p.contains(Ipv4Address::parse("172.16.0.0")));
  EXPECT_TRUE(p.contains(Ipv4Address::parse("172.31.255.255")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse("172.32.0.0")));
  EXPECT_FALSE(p.contains(Ipv4Address::parse("172.15.255.255")));
}

TEST(Prefix, ContainsPrefixIsSubsetRelation) {
  const Prefix outer = Prefix::parse("10.0.0.0/8");
  const Prefix inner = Prefix::parse("10.20.0.0/16");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Prefix::parse("11.0.0.0/16")));
}

TEST(Prefix, OverlapsIffNested) {
  const Prefix a = Prefix::parse("10.0.0.0/8");
  const Prefix b = Prefix::parse("10.1.0.0/16");
  const Prefix c = Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(Prefix::default_route().overlaps(c));
}

TEST(Prefix, LengthOutOfRangeThrows) {
  EXPECT_THROW(Prefix(Ipv4Address{}, 33), InvalidArgument);
  EXPECT_THROW(Prefix(Ipv4Address{}, -1), InvalidArgument);
  EXPECT_THROW(Prefix::parse("1.2.3.4/33"), ParseError);
  EXPECT_THROW(Prefix::parse("1.2.3.4/"), ParseError);
  EXPECT_THROW(Prefix::parse("1.2.3.4/x"), ParseError);
}

TEST(Prefix, OrderingIsByNetworkThenLength) {
  EXPECT_LT(Prefix::parse("9.0.0.0/8"), Prefix::parse("10.0.0.0/8"));
  EXPECT_LT(Prefix::parse("10.0.0.0/8"), Prefix::parse("10.0.0.0/16"));
}

TEST(Prefix, HashDistinguishesLengths) {
  const std::hash<Prefix> h;
  EXPECT_NE(h(Prefix::parse("10.0.0.0/8")), h(Prefix::parse("10.0.0.0/16")));
}

TEST(PrefixDifference, DisjointReturnsOuter) {
  const auto out = prefix_difference(Prefix::parse("10.0.0.0/8"),
                                     Prefix::parse("11.0.0.0/8"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Prefix::parse("10.0.0.0/8"));
}

TEST(PrefixDifference, InnerCoversOuterReturnsEmpty) {
  EXPECT_TRUE(prefix_difference(Prefix::parse("10.1.0.0/16"),
                                Prefix::parse("10.0.0.0/8"))
                  .empty());
  EXPECT_TRUE(prefix_difference(Prefix::parse("10.0.0.0/8"),
                                Prefix::parse("10.0.0.0/8"))
                  .empty());
}

TEST(PrefixDifference, SplitsIntoSiblings) {
  const auto out = prefix_difference(Prefix::parse("10.0.0.0/8"),
                                     Prefix::parse("10.64.0.0/10"));
  // 10.0.0.0/8 minus 10.64.0.0/10 = 10.128.0.0/9 and 10.0.0.0/10.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Prefix::parse("10.128.0.0/9"));
  EXPECT_EQ(out[1], Prefix::parse("10.0.0.0/10"));
}

/// Property: the difference pieces are disjoint from inner, nested in
/// outer, and together with inner exactly tile outer.
class PrefixDifferenceProperty
    : public testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(PrefixDifferenceProperty, TilesOuter) {
  const Prefix outer = Prefix::parse(GetParam().first);
  const Prefix inner = Prefix::parse(GetParam().second);
  const auto pieces = prefix_difference(outer, inner);
  std::uint64_t total = inner.contains(outer) ? 0 : inner.size();
  for (const Prefix& piece : pieces) {
    EXPECT_TRUE(outer.contains(piece)) << piece.to_string();
    EXPECT_FALSE(piece.overlaps(inner)) << piece.to_string();
    for (const Prefix& other : pieces) {
      if (&other != &piece) {
        EXPECT_FALSE(piece.overlaps(other));
      }
    }
    total += piece.size();
  }
  if (outer.contains(inner)) {
    EXPECT_EQ(total, outer.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefixDifferenceProperty,
    testing::Values(std::pair{"10.0.0.0/8", "10.0.0.0/16"},
                    std::pair{"10.0.0.0/8", "10.255.255.0/24"},
                    std::pair{"0.0.0.0/0", "10.37.0.0/16"},
                    std::pair{"10.0.0.0/8", "10.129.3.7/32"},
                    std::pair{"192.168.0.0/16", "192.168.128.0/17"}));

/// Property over random prefixes: contains() agrees with the interval view.
TEST(PrefixProperty, ContainsAgreesWithRange) {
  std::mt19937_64 rng(123);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(0, 32);
  for (int i = 0; i < 2000; ++i) {
    const Prefix p(Ipv4Address(addr(rng)), len(rng));
    const Ipv4Address probe(addr(rng));
    const bool in_range = p.first() <= probe && probe <= p.last();
    EXPECT_EQ(p.contains(probe), in_range) << p.to_string();
  }
}

}  // namespace
}  // namespace dcv::net
