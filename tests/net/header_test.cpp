#include "net/header.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace dcv::net {
namespace {

TEST(PortRange, AnyIsFullRange) {
  EXPECT_TRUE(PortRange::any().is_any());
  EXPECT_EQ(PortRange::any().lo, 0);
  EXPECT_EQ(PortRange::any().hi, 0xFFFF);
  EXPECT_EQ(PortRange::any().to_string(), "any");
}

TEST(PortRange, ExactlyAndContains) {
  const auto p = PortRange::exactly(443);
  EXPECT_TRUE(p.contains(443));
  EXPECT_FALSE(p.contains(442));
  EXPECT_EQ(p.to_string(), "443");
  EXPECT_EQ(PortRange(10, 20).to_string(), "10-20");
}

TEST(PortRange, SubsetAndOverlap) {
  EXPECT_TRUE(PortRange(0, 100).contains(PortRange(10, 20)));
  EXPECT_FALSE(PortRange(10, 20).contains(PortRange(0, 100)));
  EXPECT_TRUE(PortRange(10, 20).overlaps(PortRange(20, 30)));
  EXPECT_FALSE(PortRange(10, 20).overlaps(PortRange(21, 30)));
}

TEST(ProtocolSpec, WildcardMatchesEverything) {
  const auto any = ProtocolSpec::any();
  EXPECT_TRUE(any.is_any());
  for (int p = 0; p < 256; ++p) {
    EXPECT_TRUE(any.matches(static_cast<std::uint8_t>(p)));
  }
}

TEST(ProtocolSpec, ConcreteMatchesOnlyItself) {
  const auto tcp = ProtocolSpec::tcp();
  EXPECT_TRUE(tcp.matches(6));
  EXPECT_FALSE(tcp.matches(17));
  EXPECT_FALSE(tcp.is_any());
}

TEST(ProtocolSpec, ParseKeywordsAndNumbers) {
  EXPECT_EQ(ProtocolSpec::parse("ip"), ProtocolSpec::any());
  EXPECT_EQ(ProtocolSpec::parse("tcp"), ProtocolSpec::tcp());
  EXPECT_EQ(ProtocolSpec::parse("udp"), ProtocolSpec::udp());
  EXPECT_EQ(ProtocolSpec::parse("icmp"), ProtocolSpec::icmp());
  EXPECT_EQ(ProtocolSpec::parse("53"), ProtocolSpec(std::uint8_t{53}));
  EXPECT_THROW(ProtocolSpec::parse("bogus"), ParseError);
  EXPECT_THROW(ProtocolSpec::parse("300"), ParseError);
}

TEST(ProtocolSpec, ToStringRoundTrip) {
  for (const char* text : {"ip", "tcp", "udp", "icmp", "53"}) {
    EXPECT_EQ(ProtocolSpec::parse(text).to_string(), text);
  }
}

TEST(PacketHeader, ToStringIsReadable) {
  const PacketHeader h{.src_ip = Ipv4Address::parse("1.2.3.4"),
                       .src_port = 1234,
                       .dst_ip = Ipv4Address::parse("5.6.7.8"),
                       .dst_port = 443,
                       .protocol = 6};
  EXPECT_EQ(h.to_string(), "tcp 1.2.3.4:1234 -> 5.6.7.8:443");
}

TEST(PacketHeader, Equality) {
  PacketHeader a{.src_ip = Ipv4Address(1)};
  PacketHeader b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 80;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dcv::net
