#include "smt/encoding.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dcv::smt {
namespace {

/// Checks that a predicate over a single symbolic address admits exactly
/// the expected concrete values, by solving for membership and
/// non-membership.
bool satisfiable(z3::context& ctx, const z3::expr& formula) {
  z3::solver solver(ctx);
  solver.add(formula);
  return solver.check() == z3::sat;
}

TEST(Encoding, IpInPrefixMatchesConcreteMembership) {
  z3::context ctx;
  const z3::expr x = ctx.bv_const("x", 32);
  const auto prefix = net::Prefix::parse("10.20.20.0/24");
  // The paper's example: 10.20.20.0 <= x <= 10.20.20.255.
  EXPECT_TRUE(satisfiable(
      ctx, ip_in_prefix(x, prefix) &&
               x == ip_value(ctx, net::Ipv4Address::parse("10.20.20.7"))));
  EXPECT_FALSE(satisfiable(
      ctx, ip_in_prefix(x, prefix) &&
               x == ip_value(ctx, net::Ipv4Address::parse("10.20.21.0"))));
}

TEST(Encoding, DefaultPrefixIsTautology) {
  z3::context ctx;
  const z3::expr x = ctx.bv_const("x", 32);
  EXPECT_FALSE(
      satisfiable(ctx, !ip_in_prefix(x, net::Prefix::default_route())));
}

TEST(Encoding, PortRange) {
  z3::context ctx;
  const z3::expr p = ctx.bv_const("p", 16);
  const net::PortRange range(100, 200);
  EXPECT_TRUE(satisfiable(ctx, port_in_range(p, range) &&
                                   p == ctx.bv_val(150, 16)));
  EXPECT_FALSE(satisfiable(ctx, port_in_range(p, range) &&
                                    p == ctx.bv_val(99, 16)));
  EXPECT_FALSE(satisfiable(ctx, port_in_range(p, range) &&
                                    p == ctx.bv_val(201, 16)));
  // Any is a tautology.
  EXPECT_FALSE(satisfiable(ctx, !port_in_range(p, net::PortRange::any())));
  // Exact port.
  EXPECT_FALSE(satisfiable(
      ctx, port_in_range(p, net::PortRange::exactly(443)) &&
               p != ctx.bv_val(443, 16)));
}

TEST(Encoding, ProtocolMatch) {
  z3::context ctx;
  const z3::expr proto = ctx.bv_const("proto", 8);
  EXPECT_FALSE(satisfiable(
      ctx, !protocol_matches(proto, net::ProtocolSpec::any())));
  EXPECT_TRUE(satisfiable(ctx,
                          protocol_matches(proto, net::ProtocolSpec::tcp()) &&
                              proto == ctx.bv_val(6, 8)));
  EXPECT_FALSE(satisfiable(
      ctx, protocol_matches(proto, net::ProtocolSpec::tcp()) &&
               proto == ctx.bv_val(17, 8)));
}

TEST(Encoding, EvalPacketReadsModel) {
  z3::context ctx;
  const auto packet = SymbolicPacket::create(ctx);
  z3::solver solver(ctx);
  solver.add(packet.src_ip ==
             ip_value(ctx, net::Ipv4Address::parse("1.2.3.4")));
  solver.add(packet.dst_ip ==
             ip_value(ctx, net::Ipv4Address::parse("5.6.7.8")));
  solver.add(packet.src_port == ctx.bv_val(1000, 16));
  solver.add(packet.dst_port == ctx.bv_val(443, 16));
  solver.add(packet.protocol == ctx.bv_val(6, 8));
  ASSERT_EQ(solver.check(), z3::sat);
  const net::PacketHeader header = eval_packet(solver.get_model(), packet);
  EXPECT_EQ(header.src_ip.to_string(), "1.2.3.4");
  EXPECT_EQ(header.dst_ip.to_string(), "5.6.7.8");
  EXPECT_EQ(header.src_port, 1000);
  EXPECT_EQ(header.dst_port, 443);
  EXPECT_EQ(header.protocol, 6);
}

TEST(Encoding, TaggedPacketsAreDistinct) {
  z3::context ctx;
  const auto a = SymbolicPacket::create(ctx, "_a");
  const auto b = SymbolicPacket::create(ctx, "_b");
  // Distinct variables: can differ.
  EXPECT_TRUE(satisfiable(ctx, a.src_ip != b.src_ip));
}

/// Property: prefix membership encoding agrees with concrete contains() on
/// random prefixes and addresses.
TEST(EncodingProperty, PrefixEncodingAgreesWithConcrete) {
  z3::context ctx;
  const z3::expr x = ctx.bv_const("x", 32);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(0, 32);
  for (int i = 0; i < 60; ++i) {
    const net::Prefix p(net::Ipv4Address(addr(rng)), len(rng));
    const net::Ipv4Address probe(addr(rng));
    const bool symbolic = satisfiable(
        ctx, ip_in_prefix(x, p) && x == ip_value(ctx, probe));
    EXPECT_EQ(symbolic, p.contains(probe))
        << p.to_string() << " " << probe.to_string();
  }
}

}  // namespace
}  // namespace dcv::smt
