// Causal-span tests: process-unique ids, parent links via the thread-local
// span stack, cycle correlation across threads, ring health metrics, and
// the Chrome trace-event exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using namespace dcv::obs;

const TraceEvent* find_event(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  const auto it = std::find_if(
      events.begin(), events.end(),
      [&](const TraceEvent& e) { return e.name == name; });
  return it == events.end() ? nullptr : &*it;
}

TEST(SpanLinkage, IdsAreUniqueAndNonZero) {
  TraceRing ring(16);
  std::uint64_t first = 0;
  {
    Span a("a", nullptr, &ring);
    first = a.id();
    EXPECT_NE(first, 0u);
  }
  Span b("b", nullptr, &ring);
  EXPECT_NE(b.id(), 0u);
  EXPECT_NE(b.id(), first);
}

TEST(SpanLinkage, TopLevelSpanHasNoParent) {
  Span root("root", nullptr, nullptr);
  EXPECT_EQ(root.parent(), 0u);
}

TEST(SpanLinkage, NestedSpansFormAChainOnOneThread) {
  TraceRing ring(16);
  {
    Span outer("outer", nullptr, &ring);
    EXPECT_EQ(current_span_id(), outer.id());
    {
      Span mid("mid", nullptr, &ring);
      EXPECT_EQ(mid.parent(), outer.id());
      Span inner("inner", nullptr, &ring);
      EXPECT_EQ(inner.parent(), mid.id());
    }
    // Both children closed: a new sibling links to outer, not to them.
    Span sibling("sibling", nullptr, &ring);
    EXPECT_EQ(sibling.parent(), outer.id());
  }
  EXPECT_EQ(current_span_id(), 0u);
}

TEST(SpanLinkage, ExplicitStopPopsTheStack) {
  Span outer("outer", nullptr, nullptr);
  Span first("first", nullptr, nullptr);
  first.stop();
  first.stop();  // idempotent
  Span second("second", nullptr, nullptr);
  EXPECT_EQ(second.parent(), outer.id());
}

TEST(SpanLinkage, RingKeepsIdParentAndName) {
  TraceRing ring(16);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    Span outer("outer", nullptr, &ring);
    outer_id = outer.id();
    Span inner("inner", nullptr, &ring);
    inner_id = inner.id();
  }
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);  // inner closes first
  const TraceEvent* inner = find_event(events, "inner");
  const TraceEvent* outer = find_event(events, "outer");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->id, inner_id);
  EXPECT_EQ(inner->parent, outer_id);
  EXPECT_EQ(outer->id, outer_id);
  EXPECT_EQ(outer->parent, 0u);
}

TEST(CycleCorrelation, ScopeSetsAndRestoresTheThreadCycle) {
  EXPECT_EQ(current_cycle_id(), 0u);
  {
    const CycleScope outer(7);
    EXPECT_EQ(current_cycle_id(), 7u);
    {
      const CycleScope inner(9);
      EXPECT_EQ(current_cycle_id(), 9u);
    }
    EXPECT_EQ(current_cycle_id(), 7u);
  }
  EXPECT_EQ(current_cycle_id(), 0u);
}

TEST(CycleCorrelation, SpansAcrossThreadsShareTheCycleId) {
  TraceRing ring(64);
  constexpr std::uint64_t kCycle = 42;
  {
    const CycleScope scope(kCycle);
    Span root("root", nullptr, &ring);
    std::vector<std::thread> workers;
    for (int i = 0; i < 3; ++i) {
      workers.emplace_back([&ring] {
        const CycleScope worker_scope(kCycle);
        Span work("work", nullptr, &ring);
      });
    }
    for (auto& worker : workers) worker.join();
  }
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.cycle, kCycle) << event.name;
  }
  // Parent links never cross threads: each worker span is a thread root.
  for (const TraceEvent& event : events) {
    if (event.name == "work") {
      EXPECT_EQ(event.parent, 0u);
    }
  }
}

TEST(CycleCorrelation, ThreadIndicesAreDistinctAcrossLiveThreads) {
  const std::uint32_t own = thread_index();
  EXPECT_EQ(own, thread_index());  // stable for the thread
  std::uint32_t other = own;
  std::thread([&other] { other = thread_index(); }).join();
  EXPECT_NE(other, own);
}

TEST(TraceRingMetrics, AttachRegistersCapacityDropsAndSize) {
  MetricsRegistry registry;
  TraceRing ring(4);
  ring.attach_metrics(registry);

  const std::string prom = write_prometheus(registry);
  EXPECT_NE(prom.find("dcv_obs_trace_ring_capacity 4"), std::string::npos);
  EXPECT_NE(prom.find("dcv_obs_trace_dropped_total 0"), std::string::npos);

  for (int i = 0; i < 6; ++i) {
    Span span("s", nullptr, &ring);
  }
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.size(), 4u);

  const std::string after = write_prometheus(registry);
  EXPECT_NE(after.find("dcv_obs_trace_dropped_total 2"), std::string::npos);
  EXPECT_NE(after.find("dcv_obs_trace_ring_size 4"), std::string::npos);
}

TEST(ChromeTrace, EmitsWellFormedParentLinkedEvents) {
  TraceRing ring(16);
  {
    const CycleScope scope(5);
    Span outer("outer", nullptr, &ring);
    Span inner("inner", nullptr, &ring);
  }
  const std::string trace = write_chrome_trace(ring);

  // Structural envelope (a JSON library is deliberately not a dependency;
  // tests_e2e already validates the exposition with Python in CI).
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"cycle\":5"), std::string::npos);

  // The inner event's parent_id arg is the outer event's span_id.
  const auto events = ring.events();
  const TraceEvent* outer = find_event(events, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(
      trace.find("\"parent_id\":" + std::to_string(outer->id)),
      std::string::npos);
}

TEST(ChromeTrace, BalancedBracesAndQuotes) {
  TraceRing ring(8);
  {
    Span a("span \"quoted\\name\"", nullptr, &ring);
  }
  const std::string trace = write_chrome_trace(ring);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : trace) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// TSan-exercised (the CI thread-sanitizer job runs ObsConcurrency.*):
// spans recorded from many threads while both exporters walk the ring.
TEST(ObsConcurrency, SpanRecordingWhileExporting) {
  MetricsRegistry registry;
  TraceRing ring(128);
  ring.attach_metrics(registry);
  Histogram& latency =
      registry.histogram("test_span_ns", "concurrent span latencies");

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ring, &latency, t] {
      const CycleScope scope(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer("outer", &latency, &ring);
        Span inner("inner", &latency, &ring);
      }
    });
  }
  // Export continuously while the workers hammer the ring.
  for (int i = 0; i < 50; ++i) {
    const std::string chrome = write_chrome_trace(ring);
    EXPECT_FALSE(chrome.empty());
    const std::string json = write_trace_json(ring);
    EXPECT_FALSE(json.empty());
    const std::string prom = write_prometheus(registry);
    EXPECT_FALSE(prom.empty());
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(ring.recorded(),
            static_cast<std::uint64_t>(2 * kThreads * kSpansPerThread));
  EXPECT_EQ(ring.dropped(), ring.recorded() - ring.capacity());
  EXPECT_EQ(latency.count(),
            static_cast<std::uint64_t>(2 * kThreads * kSpansPerThread));
}

}  // namespace
