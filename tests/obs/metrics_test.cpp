// Unit tests for the dcv::obs subsystem: log-bucketed histograms,
// counters/gauges, the registry, the exporters, and the tracing helpers.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "net/error.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dcv::obs {
namespace {

// --------------------------------------------------------------------------
// Histogram bucket geometry

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v);
  }
}

TEST(Histogram, BucketUppersAreStrictlyIncreasing) {
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    EXPECT_LT(Histogram::bucket_upper(i - 1), Histogram::bucket_upper(i))
        << "at index " << i;
  }
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kBucketCount - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, BucketIndexRoundTripsThroughUppers) {
  // Every bucket's inclusive upper bound must map back to that bucket, and
  // the value one past it to the next one.
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t upper = Histogram::bucket_upper(i);
    EXPECT_EQ(Histogram::bucket_index(upper), i);
    EXPECT_EQ(Histogram::bucket_index(upper + 1), i + 1);
  }
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBucketCount - 1);
}

TEST(Histogram, ValuesFallWithinTheirBucketBounds) {
  std::vector<std::uint64_t> samples;
  for (int shift = 0; shift < 63; ++shift) {
    const std::uint64_t p = std::uint64_t{1} << shift;
    samples.insert(samples.end(), {p - 1, p, p + 1, p + p / 3});
  }
  samples.insert(samples.end(),
                 {0, 7, 8, 9, 100, 1000, 123456789,
                  std::numeric_limits<std::uint64_t>::max()});
  for (const std::uint64_t v : samples) {
    const std::size_t i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBucketCount) << "value " << v;
    EXPECT_LE(v, Histogram::bucket_upper(i)) << "value " << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::bucket_upper(i - 1)) << "value " << v;
    }
  }
}

TEST(Histogram, BucketWidthBoundsRelativeError) {
  // Four sub-buckets per octave: a bucket's width is at most a quarter of
  // its lower bound, which is what caps the quantile interpolation error.
  for (std::size_t i = 8; i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t lower = Histogram::bucket_upper(i - 1) + 1;
    const std::uint64_t width = Histogram::bucket_upper(i) - lower + 1;
    EXPECT_LE(4 * width, lower) << "at index " << i;
  }
}

// --------------------------------------------------------------------------
// Histogram recording and statistics

TEST(Histogram, ObserveTracksCountSumMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.observe(3);
  h.observe(5);
  h.observe(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 108u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 36.0);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(3)), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(100)), 1u);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  const Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, QuantileOfSingleExactValueIsThatValue) {
  Histogram h;
  h.observe(5);  // exact bucket: no interpolation slack
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileInterpolatesUniformSamples) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  // Buckets are at most 1/4 wide relative to their lower bound, so the
  // interpolated percentile lands within the true value's bucket.
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 64.0);
  EXPECT_GE(p90, 80.0);
  EXPECT_LE(p90, 96.0);
  EXPECT_GE(p99, 90.0);
  EXPECT_LE(p99, 100.0);  // capped at the observed max
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
}

TEST(Histogram, QuantileIsCappedAtObservedMax) {
  Histogram h;
  h.observe(1000);  // bucket upper is 1023, but nothing above 1000 was seen
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, MergeCombinesEverything) {
  Histogram a;
  Histogram b;
  Histogram reference;
  for (const std::uint64_t v : {1u, 2u, 3u, 1000u}) {
    a.observe(v);
    reference.observe(v);
  }
  for (const std::uint64_t v : {5u, 500u}) {
    b.observe(v);
    reference.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), reference.count());
  EXPECT_EQ(a.sum(), reference.sum());
  EXPECT_EQ(a.max(), reference.max());
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(a.bucket_count(i), reference.bucket_count(i)) << "bucket " << i;
  }
  // b is untouched.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.sum(), 505u);
}

// Suite name is part of the CI thread-sanitizer filter; keep in sync with
// .github/workflows/ci.yml.
TEST(ObsConcurrency, HistogramObserveFromManyThreads) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      const auto value = static_cast<std::uint64_t>(t + 1) * 10;
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(value);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // sum over t of (t+1)*10*kPerThread = 10 * kPerThread * (1+...+8)
  EXPECT_EQ(h.sum(), 10 * kPerThread * 36);
  EXPECT_EQ(h.max(), 80u);
  for (int t = 0; t < kThreads; ++t) {
    const auto value = static_cast<std::uint64_t>(t + 1) * 10;
    EXPECT_EQ(h.bucket_count(Histogram::bucket_index(value)), kPerThread);
  }
}

TEST(ObsConcurrency, CounterIncFromManyThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

// --------------------------------------------------------------------------
// Counter / Gauge

TEST(Counter, IncrementsByOneAndByN) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAddIncludingNegative) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

// --------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, ReRegistrationReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("dcv_test_total", "help");
  Counter& b = registry.counter("dcv_test_total", "other help ignored");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Histogram& a = registry.histogram("dcv_test_ns", "help",
                                    {{"stage", "fetch"}, {"mode", "sim"}});
  Histogram& b = registry.histogram("dcv_test_ns", "help",
                                    {{"mode", "sim"}, {"stage", "fetch"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, DifferentLabelValuesAreDistinctSeries) {
  MetricsRegistry registry;
  Counter& fresh =
      registry.counter("dcv_devices_total", "help", {{"result", "fresh"}});
  Counter& stale =
      registry.counter("dcv_devices_total", "help", {{"result", "stale"}});
  EXPECT_NE(&fresh, &stale);
  fresh.inc(3);
  EXPECT_EQ(stale.value(), 0u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("dcv_test_total", "help");
  EXPECT_THROW(registry.gauge("dcv_test_total", "help"), InvalidArgument);
  EXPECT_THROW(registry.histogram("dcv_test_total", "help"), InvalidArgument);
  // A differently-labeled series of the same family and type is fine.
  registry.counter("dcv_test_total", "help", {{"k", "v"}});
}

TEST(MetricsRegistry, CollectPreservesRegistrationOrderAndMetadata) {
  MetricsRegistry registry;
  registry.counter("dcv_c", "count help");
  registry.gauge("dcv_g", "gauge help");
  registry.histogram("dcv_h", "hist help", {{"b", "2"}, {"a", "1"}});
  const auto metrics = registry.collect();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].name, "dcv_c");
  EXPECT_EQ(metrics[0].type, MetricType::kCounter);
  EXPECT_EQ(metrics[0].help, "count help");
  EXPECT_EQ(metrics[1].name, "dcv_g");
  EXPECT_EQ(metrics[1].type, MetricType::kGauge);
  EXPECT_EQ(metrics[2].name, "dcv_h");
  EXPECT_EQ(metrics[2].type, MetricType::kHistogram);
  // Labels come back sorted regardless of registration order.
  const Labels expected{{"a", "1"}, {"b", "2"}};
  EXPECT_EQ(metrics[2].labels, expected);
}

// --------------------------------------------------------------------------
// Exporters

TEST(PrometheusExport, CounterGaugeAndHistogramLines) {
  MetricsRegistry registry;
  registry.counter("dcv_requests_total", "Requests served").inc(3);
  registry.gauge("dcv_coverage", "Fraction validated").set(0.5);
  Histogram& h =
      registry.histogram("dcv_latency_ns", "Latency", {{"stage", "x"}});
  h.observe(5);
  h.observe(5);
  h.observe(100);

  const std::string out = write_prometheus(registry);
  EXPECT_NE(out.find("# HELP dcv_requests_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE dcv_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("dcv_requests_total 3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE dcv_coverage gauge\n"), std::string::npos);
  EXPECT_NE(out.find("dcv_coverage 0.5\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE dcv_latency_ns histogram\n"), std::string::npos);
  // Buckets are cumulative: two 5s then the 100 (bucket upper 111).
  EXPECT_NE(out.find("dcv_latency_ns_bucket{stage=\"x\",le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("dcv_latency_ns_bucket{stage=\"x\",le=\"111\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("dcv_latency_ns_bucket{stage=\"x\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("dcv_latency_ns_sum{stage=\"x\"} 110\n"),
            std::string::npos);
  EXPECT_NE(out.find("dcv_latency_ns_count{stage=\"x\"} 3\n"),
            std::string::npos);
}

TEST(PrometheusExport, LabeledSeriesShareOneFamilyHeader) {
  MetricsRegistry registry;
  registry.counter("dcv_devices_total", "help", {{"result", "fresh"}}).inc(7);
  registry.counter("dcv_other_total", "other").inc();  // interleaves
  registry.counter("dcv_devices_total", "help", {{"result", "stale"}}).inc(2);

  const std::string out = write_prometheus(registry);
  // One contiguous block per family even though registration interleaved.
  std::size_t helps = 0;
  for (std::size_t pos = out.find("# HELP dcv_devices_total");
       pos != std::string::npos;
       pos = out.find("# HELP dcv_devices_total", pos + 1)) {
    ++helps;
  }
  EXPECT_EQ(helps, 1u);
  EXPECT_NE(out.find("dcv_devices_total{result=\"fresh\"} 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("dcv_devices_total{result=\"stale\"} 2\n"),
            std::string::npos);
  const auto fresh = out.find("dcv_devices_total{result=\"fresh\"}");
  const auto stale = out.find("dcv_devices_total{result=\"stale\"}");
  const auto other = out.find("dcv_other_total 1");
  EXPECT_LT(fresh, stale);
  EXPECT_LT(stale, other);  // family block emitted before the later family
}

TEST(PrometheusExport, EscapesHelpAndLabelValues) {
  MetricsRegistry registry;
  registry
      .counter("dcv_esc_total", "line1\nline2 \"quoted\" back\\slash",
               {{"path", "a\\b\"c\nd"}})
      .inc();
  const std::string out = write_prometheus(registry);
  EXPECT_NE(out.find("# HELP dcv_esc_total line1\\nline2 \\\"quoted\\\" "
                     "back\\\\slash\n"),
            std::string::npos);
  EXPECT_NE(out.find("dcv_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(JsonExport, EmitsAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("dcv_requests_total", "Requests").inc(3);
  registry.gauge("dcv_coverage", "Coverage").set(1.0);
  Histogram& h = registry.histogram("dcv_latency_ns", "Latency",
                                    {{"stage", "validate"}});
  h.observe(5);
  h.observe(100);

  const std::string out = write_json(registry);
  EXPECT_EQ(out.substr(0, 12), "{\"metrics\":[");
  EXPECT_EQ(out.substr(out.size() - 2), "]}");
  EXPECT_NE(out.find("\"name\":\"dcv_requests_total\",\"type\":\"counter\""),
            std::string::npos);
  EXPECT_NE(out.find("\"value\":3"), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"dcv_coverage\",\"type\":\"gauge\""),
            std::string::npos);
  EXPECT_NE(out.find("\"labels\":{\"stage\":\"validate\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"count\":2,\"sum\":105,\"max\":100"),
            std::string::npos);
  EXPECT_NE(out.find("\"p50\":"), std::string::npos);
  EXPECT_NE(out.find("\"buckets\":[{\"le\":5,\"count\":1}"),
            std::string::npos);
}

// --------------------------------------------------------------------------
// ScopedTimer / Span / TraceRing

TEST(ScopedTimer, RecordsElapsedOnScopeExit) {
  Histogram h;
  {
    const ScopedTimer timer(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 1'000'000u);  // at least the 1ms slept
}

TEST(ScopedTimer, StopIsIdempotentAndReturnsElapsed) {
  Histogram h;
  ScopedTimer timer(&h);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto elapsed = timer.stop();
  EXPECT_GE(elapsed, std::chrono::milliseconds(1));
  timer.stop();  // second stop must not double-record
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimer, CancelDropsTheMeasurement) {
  Histogram h;
  {
    ScopedTimer timer(&h);
    timer.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedTimer, NullHistogramIsANoOp) {
  ScopedTimer timer(nullptr);
  EXPECT_GE(timer.stop().count(), 0);
}

TEST(TraceRing, KeepsNewestEventsOldestFirst) {
  TraceRing ring(4);
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    ring.record("event" + std::to_string(i), now + std::chrono::microseconds(i),
                std::chrono::nanoseconds(100 + i));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].name, "event" + std::to_string(6 + i));
    EXPECT_EQ(events[i].duration, std::chrono::nanoseconds(106 + i));
  }
  EXPECT_LE(events[0].start, events[1].start);
}

TEST(Span, RecordsIntoHistogramAndRing) {
  Histogram h;
  TraceRing ring(8);
  {
    const Span span("validate", &h, &ring);
  }
  EXPECT_EQ(h.count(), 1u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "validate");
  EXPECT_GE(events[0].duration.count(), 0);
}

TEST(Span, NullSinksAreSafe) {
  const Span span("noop", nullptr, nullptr);  // must not crash on destruct
}

TEST(TraceExport, JsonContainsSpansAndDropCount) {
  TraceRing ring(2);
  const auto now = std::chrono::steady_clock::now();
  ring.record("fetch", now, std::chrono::nanoseconds(42));
  ring.record("validate \"x\"", now, std::chrono::nanoseconds(7));
  ring.record("export", now, std::chrono::nanoseconds(9));  // evicts "fetch"
  const std::string out = write_trace_json(ring);
  EXPECT_NE(out.find("\"dropped\":1"), std::string::npos);
  EXPECT_EQ(out.find("\"name\":\"fetch\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"validate \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"duration_ns\":9"), std::string::npos);
  EXPECT_NE(out.find("\"start_ns\":"), std::string::npos);
}

}  // namespace
}  // namespace dcv::obs
