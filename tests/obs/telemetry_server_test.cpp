// TelemetryServer tests: live scrapes during concurrent registry mutation,
// readiness flips, graceful shutdown with in-flight connections, and the
// port-in-use error path. All requests go through a real TCP socket — the
// server under test is the production listener, not a mock.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <system_error>
#include <thread>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry_server.hpp"

namespace {

using namespace dcv::obs;

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

/// Minimal blocking HTTP/1.1 GET against 127.0.0.1:port.
HttpResponse http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  HttpResponse response;
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    response.status = std::stoi(raw.substr(9, 3));
  }
  const auto split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    response.headers = raw.substr(0, split);
    response.body = raw.substr(split + 4);
  }
  return response;
}

TEST(TelemetryServer, BindsAnEphemeralPortAndCountsRequests) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, nullptr,
                         [] { return HealthSnapshot{}; });
  EXPECT_NE(server.port(), 0u);
  EXPECT_EQ(server.requests_served(), 0u);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  EXPECT_EQ(http_get(server.port(), "/readyz").status, 200);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(TelemetryServer, ServesMetricsInBothFormats) {
  MetricsRegistry registry;
  registry.counter("test_scrapes_total", "scrapes").inc(3);
  TelemetryServer server(&registry, nullptr,
                         [] { return HealthSnapshot{}; });

  const HttpResponse prom = http_get(server.port(), "/metrics");
  EXPECT_EQ(prom.status, 200);
  EXPECT_NE(prom.headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(prom.body.find("test_scrapes_total 3"), std::string::npos);

  const HttpResponse json = http_get(server.port(), "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.headers.find("application/json"), std::string::npos);
  EXPECT_NE(json.body.find("\"test_scrapes_total\""), std::string::npos);
}

TEST(TelemetryServer, ScrapeDuringConcurrentMutationIsConsistent) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test_mutations_total", "mutations");
  TelemetryServer server(&registry, nullptr,
                         [] { return HealthSnapshot{}; });

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load()) counter.inc();
  });
  for (int i = 0; i < 20; ++i) {
    const HttpResponse response = http_get(server.port(), "/metrics");
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("test_mutations_total"),
              std::string::npos);
  }
  stop.store(true);
  mutator.join();
}

TEST(TelemetryServer, ReadyzFollowsTheProbe) {
  MetricsRegistry registry;
  std::atomic<bool> ready{true};
  TelemetryServer server(&registry, nullptr, [&ready] {
    HealthSnapshot snapshot;
    snapshot.ready = ready.load();
    snapshot.detail = ready.load() ? "all good" : "coverage too low";
    return snapshot;
  });

  HttpResponse response = http_get(server.port(), "/readyz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("all good"), std::string::npos);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);

  ready.store(false);
  response = http_get(server.port(), "/readyz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("coverage too low"), std::string::npos);
  // Liveness is independent of readiness.
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);

  ready.store(true);
  EXPECT_EQ(http_get(server.port(), "/readyz").status, 200);
}

TEST(TelemetryServer, HealthzReportsDeadProcess) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, nullptr, [] {
    HealthSnapshot snapshot;
    snapshot.alive = false;
    return snapshot;
  });
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 503);
}

TEST(TelemetryServer, TracezServesTheRing) {
  MetricsRegistry registry;
  TraceRing ring(16);
  {
    Span span("scrape-me", nullptr, &ring);
  }
  TelemetryServer server(&registry, &ring,
                         [] { return HealthSnapshot{}; });
  const HttpResponse response = http_get(server.port(), "/tracez");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("scrape-me"), std::string::npos);
}

TEST(TelemetryServer, MissingSinksAnswer404) {
  TelemetryServer server(nullptr, nullptr,
                         [] { return HealthSnapshot{}; });
  EXPECT_EQ(http_get(server.port(), "/metrics").status, 404);
  EXPECT_EQ(http_get(server.port(), "/tracez").status, 404);
  EXPECT_EQ(http_get(server.port(), "/no-such-endpoint").status, 404);
}

TEST(TelemetryServer, QueryStringsAreIgnored) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, nullptr,
                         [] { return HealthSnapshot{}; });
  EXPECT_EQ(http_get(server.port(), "/metrics?format=prometheus").status,
            200);
}

TEST(TelemetryServer, PortInUseThrowsSystemError) {
  MetricsRegistry registry;
  TelemetryServer first(&registry, nullptr,
                        [] { return HealthSnapshot{}; });
  EXPECT_THROW(
      {
        TelemetryServer second(
            &registry, nullptr, [] { return HealthSnapshot{}; },
            TelemetryServerConfig{.port = first.port()});
      },
      std::system_error);
  // The survivor keeps serving.
  EXPECT_EQ(http_get(first.port(), "/healthz").status, 200);
}

TEST(TelemetryServer, StopIsGracefulAndIdempotent) {
  MetricsRegistry registry;
  TelemetryServer server(&registry, nullptr,
                         [] { return HealthSnapshot{}; });
  const std::uint16_t port = server.port();
  EXPECT_EQ(http_get(port, "/healthz").status, 200);

  // A connection opened (but not yet written to) while stop() runs must
  // not hang the shutdown: the listener either serves or abandons it.
  const int idle = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  (void)::connect(idle, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));

  server.stop();
  server.stop();  // idempotent

  // The port is released: a fresh server can bind it immediately.
  TelemetryServer successor(
      &registry, nullptr, [] { return HealthSnapshot{}; },
      TelemetryServerConfig{.port = port});
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  ::close(idle);
}

// TSan-exercised (the CI thread-sanitizer job runs ObsConcurrency.*):
// scrapes racing registry mutation and server shutdown.
TEST(ObsConcurrency, ScrapesRaceMutationAndShutdown) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test_race_total", "race");
  TraceRing ring(64);
  ring.attach_metrics(registry);
  auto server = std::make_unique<TelemetryServer>(
      &registry, &ring, [] { return HealthSnapshot{}; });
  const std::uint16_t port = server->port();

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load()) {
      counter.inc();
      Span span("race", nullptr, &ring);
    }
  });
  std::thread scraper([&] {
    for (int i = 0; i < 10; ++i) {
      (void)http_get(port, "/metrics");
      (void)http_get(port, "/tracez");
    }
  });
  scraper.join();
  server->stop();
  stop.store(true);
  mutator.join();
}

}  // namespace
