// HttpServer edge cases: malformed request lines, oversized POST bodies
// against per-route caps, slow-loris peers vs the IO deadline, connection
// churn mid-response, queue-full 429 admission control, and handler
// concurrency. Every request rides a real TCP socket against the
// production event loop; deadline tests shrink the server's configured
// io_timeout instead of sleeping wall-clock seconds.
#include "obs/http_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace dcv::obs;

/// A raw client socket; close() on destruction.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send(const std::string& bytes) const {
    EXPECT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until the server closes the connection.
  [[nodiscard]] std::string read_all() const {
    std::string raw;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd_, buffer, sizeof(buffer), 0)) > 0) {
      raw.append(buffer, static_cast<std::size_t>(n));
    }
    return raw;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

int status_of(const std::string& raw) {
  if (raw.rfind("HTTP/1.1 ", 0) != 0 || raw.size() < 12) return 0;
  return std::stoi(raw.substr(9, 3));
}

std::string body_of(const std::string& raw) {
  const auto split = raw.find("\r\n\r\n");
  return split == std::string::npos ? "" : raw.substr(split + 4);
}

std::string request_and_read(std::uint16_t port, const std::string& wire) {
  Client client(port);
  client.send(wire);
  return client.read_all();
}

std::string get(std::uint16_t port, const std::string& target) {
  return request_and_read(
      port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string post(std::uint16_t port, const std::string& target,
                 const std::string& body) {
  return request_and_read(port, "POST " + target +
                                    " HTTP/1.1\r\nHost: t\r\n"
                                    "Content-Length: " +
                                    std::to_string(body.size()) + "\r\n\r\n" +
                                    body);
}

/// A started server echoing POST /echo bodies and answering GET /ping.
class EchoServer {
 public:
  explicit EchoServer(HttpServerConfig config = {}) : server_(config) {
    server_.add_route("GET", "/ping", [](const HttpRequest&) {
      return HttpResponse{.body = "pong\n"};
    });
    server_.add_route(
        "POST", "/echo",
        [](const HttpRequest& request) {
          return HttpResponse{.body = request.body};
        },
        /*max_body_bytes=*/64 * 1024);
    server_.start();
  }
  HttpServer& operator*() { return server_; }
  HttpServer* operator->() { return &server_; }

 private:
  HttpServer server_;
};

TEST(HttpServer, RoutesAndEchoesLargePostBodies) {
  EchoServer server;
  EXPECT_EQ(body_of(get(server->port(), "/ping")), "pong\n");
  // Far beyond the 4096-byte config default: the per-route cap governs.
  const std::string large(32 * 1024, 'x');
  const std::string raw = post(server->port(), "/echo", large);
  EXPECT_EQ(status_of(raw), 200);
  EXPECT_EQ(body_of(raw), large);
}

TEST(HttpServer, OversizedBodyIsRefusedWith413) {
  EchoServer server;
  // Beyond even the lifted /echo cap. The Content-Length header alone
  // triggers the refusal — the server never reads the body.
  Client client(server->port());
  client.send(
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_EQ(status_of(client.read_all()), 413);

  // Routes without an override enforce the config default (4096 covers
  // the whole request, so a 5000-byte body cannot fit).
  EXPECT_EQ(status_of(post(server->port(), "/ping",
                           std::string(5000, 'y'))),
            413);
}

TEST(HttpServer, MalformedRequestLinesAnswer400) {
  EchoServer server;
  EXPECT_EQ(status_of(request_and_read(server->port(), "NONSENSE\r\n\r\n")),
            400);
  EXPECT_EQ(status_of(request_and_read(server->port(),
                                       "GET /ping\r\n\r\n")),
            400);  // missing version
  EXPECT_EQ(status_of(request_and_read(
                server->port(),
                "GET /ping HTTP/1.1\r\nContent-Length: banana\r\n\r\n")),
            400);
}

TEST(HttpServer, TransferEncodingIsNotImplemented) {
  EchoServer server;
  EXPECT_EQ(status_of(request_and_read(
                server->port(),
                "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")),
            501);
}

TEST(HttpServer, UnknownRouteIs404UntilAFallbackIsSet) {
  HttpServer server(HttpServerConfig{});
  server.add_route("GET", "/known", [](const HttpRequest&) {
    return HttpResponse{};
  });
  server.start();
  EXPECT_EQ(status_of(get(server.port(), "/nope")), 404);
  // Wrong method on a known path is also unrouted.
  EXPECT_EQ(status_of(post(server.port(), "/known", "x")), 404);
}

TEST(HttpServer, QueryParamsReachHandlers) {
  HttpServer server(HttpServerConfig{});
  server.add_route("GET", "/q", [](const HttpRequest& request) {
    return HttpResponse{.body = std::string(request.query_param("name")) +
                                "|" +
                                std::string(request.query_param("missing"))};
  });
  server.start();
  EXPECT_EQ(body_of(get(server.port(), "/q?name=value&other=1")), "value|");
}

TEST(HttpServer, SlowLorisHitsTheIoDeadline) {
  HttpServerConfig config;
  config.io_timeout = std::chrono::milliseconds(100);
  EchoServer server(config);

  // A partial request line, then silence: the deadline must answer 408
  // instead of pinning the connection slot forever.
  Client client(server->port());
  client.send("GET /pi");
  const auto start = std::chrono::steady_clock::now();
  const std::string raw = client.read_all();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status_of(raw), 408);
  EXPECT_LT(waited, std::chrono::seconds(5));

  // An incomplete body counts as no-progress, too.
  Client partial(server->port());
  partial.send("POST /echo HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  EXPECT_EQ(status_of(partial.read_all()), 408);

  // The server is unharmed.
  EXPECT_EQ(status_of(get(server->port(), "/ping")), 200);
}

TEST(HttpServer, ConnectionChurnMidResponseIsHarmless) {
  EchoServer server;
  // Clients that vanish right after sending (or mid-read) must not wedge
  // the event loop or leak connection slots.
  for (int i = 0; i < 20; ++i) {
    Client client(server->port());
    client.send("GET /ping HTTP/1.1\r\n\r\n");
    client.close();  // gone before reading the response
  }
  for (int i = 0; i < 5; ++i) {
    Client client(server->port());
    client.close();  // gone before sending anything
  }
  EXPECT_EQ(status_of(get(server->port(), "/ping")), 200);
  EXPECT_LE(server->open_connections(), 1u);  // no leaked slots
}

TEST(HttpServer, QueueFullAnswers429WithRetryAfter) {
  HttpServerConfig config;
  config.worker_threads = 1;
  config.max_queued_requests = 1;
  config.retry_after_seconds = 7;
  HttpServer server(config);

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  server.add_route("GET", "/block", [&](const HttpRequest&) {
    ++entered;
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return release; });
    return HttpResponse{.body = "done\n"};
  });
  server.start();

  // First request occupies the only worker (wait for the handler to
  // actually start, so the queue is empty again); the second then fills
  // the one-slot queue.
  std::vector<std::thread> blocked;
  std::atomic<int> ok{0};
  blocked.emplace_back([&] {
    if (status_of(get(server.port(), "/block")) == 200) ++ok;
  });
  while (entered.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  blocked.emplace_back([&] {
    if (status_of(get(server.port(), "/block")) == 200) ++ok;
  });
  while (server.queued_requests() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_DOUBLE_EQ(server.queue_saturation(), 1.0);

  // Beyond the bound: rejected from the event loop, with the hint.
  const std::string raw = get(server.port(), "/block");
  EXPECT_EQ(status_of(raw), 429);
  EXPECT_NE(raw.find("Retry-After: 7\r\n"), std::string::npos);
  EXPECT_GE(server.requests_rejected(), 1u);

  {
    const std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  for (auto& thread : blocked) thread.join();
  EXPECT_EQ(ok.load(), 2);
  EXPECT_DOUBLE_EQ(server.queue_saturation(), 0.0);
}

TEST(HttpServer, ConcurrentRequestsAllComplete) {
  HttpServerConfig config;
  config.worker_threads = 4;
  HttpServer server(config);
  server.add_route("GET", "/work", [](const HttpRequest& request) {
    return HttpResponse{.body = std::string(request.query_param("id"))};
  });
  server.start();

  constexpr int kClients = 16;
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const std::string raw =
          get(server.port(), "/work?id=" + std::to_string(i));
      if (status_of(raw) == 200 && body_of(raw) == std::to_string(i)) {
        ++correct;
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(correct.load(), kClients);
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kClients));
}

TEST(HttpServer, ThrowingHandlersAnswer500) {
  HttpServer server(HttpServerConfig{});
  server.add_route("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  server.start();
  const std::string raw = get(server.port(), "/boom");
  EXPECT_EQ(status_of(raw), 500);
  EXPECT_NE(body_of(raw).find("handler exploded"), std::string::npos);
  // The worker survives the exception.
  EXPECT_EQ(status_of(get(server.port(), "/boom")), 500);
}

TEST(HttpServer, PerRequestMetricsAreExported) {
  MetricsRegistry registry;
  HttpServerConfig config;
  config.metrics = &registry;
  EchoServer server(config);
  EXPECT_EQ(status_of(get(server->port(), "/ping")), 200);
  EXPECT_EQ(status_of(get(server->port(), "/ping")), 200);
  EXPECT_EQ(status_of(get(server->port(), "/missing")), 404);

  const std::string exposition = write_prometheus(registry);
  EXPECT_NE(exposition.find(
                "dcv_http_requests_total{code=\"200\",path=\"/ping\"} 2"),
            std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("code=\"404\",path=\"(unrouted)\""),
            std::string::npos);
  EXPECT_NE(exposition.find("dcv_http_request_ns"), std::string::npos);
  EXPECT_NE(exposition.find("dcv_http_open_connections"), std::string::npos);
  EXPECT_NE(exposition.find("dcv_http_queued_requests"), std::string::npos);
}

TEST(HttpServer, SerializationMatchesTheLegacyScrapeFormat) {
  // The byte-level compatibility contract with the pre-concurrency
  // TelemetryServer: status line, Content-Type, Content-Length,
  // Connection: close, body — nothing else, in that order.
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = "x 1\n";
  EXPECT_EQ(serialize_http_response(response),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: 4\r\n"
            "Connection: close\r\n\r\n"
            "x 1\n");

  HttpResponse retry;
  retry.status = 429;
  retry.body = "busy\n";
  retry.extra_headers.emplace_back("Retry-After", "1");
  EXPECT_EQ(serialize_http_response(retry),
            "HTTP/1.1 429 Too Many Requests\r\n"
            "Content-Type: text/plain; charset=utf-8\r\n"
            "Content-Length: 5\r\n"
            "Retry-After: 1\r\n"
            "Connection: close\r\n\r\n"
            "busy\n");
}

TEST(HttpServer, StopWithBlockedHandlerStillJoins) {
  HttpServerConfig config;
  config.io_timeout = std::chrono::milliseconds(200);
  auto server = std::make_unique<HttpServer>(config);
  std::atomic<bool> entered{false};
  server->add_route("GET", "/slow", [&](const HttpRequest&) {
    entered = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return HttpResponse{.body = "late\n"};
  });
  server->start();

  Client client(server->port());
  client.send("GET /slow HTTP/1.1\r\n\r\n");
  while (!entered) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // stop() must bound its wait by the grace period even though a handler
  // is mid-flight, and must not crash delivering the late completion.
  server->stop();
  server.reset();
}

}  // namespace
