// Registry snapshot (de)serialization: the dcv-metrics-v1 blob a worker
// ships inside a Result frame must reconstruct the registry exactly, and
// merging blobs must be indistinguishable from merging the live registries
// in-process. Malformed blobs (truncated, bit-flipped, hostile counts) must
// be rejected without crashing and without partial garbage for the
// well-formed prefix cases the format can detect up front.
#include "obs/metrics_serde.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace dcv::obs {
namespace {

/// Populates a registry with a representative mix of series.
void fill_registry_a(MetricsRegistry& registry) {
  registry.counter("requests_total", "requests", {{"code", "200"}}).inc(7);
  registry.counter("requests_total", "requests", {{"code", "500"}}).inc(2);
  registry.counter("bare_counter", "no labels").inc(1);
  registry.gauge("queue_depth", "depth").set(12.5);
  registry.gauge("coverage", "fraction", {{"cycle", "1"}}).set(0.97);
  auto& h = registry.histogram("latency_ns", "latency", {{"op", "fetch"}});
  for (const std::uint64_t sample : {0u, 1u, 7u, 8u, 100u, 5000u, 123456u}) {
    h.observe(sample);
  }
}

void fill_registry_b(MetricsRegistry& registry) {
  // Overlapping series (merge must accumulate) plus new ones.
  registry.counter("requests_total", "requests", {{"code", "200"}}).inc(5);
  registry.gauge("queue_depth", "depth").set(3.0);
  registry.histogram("latency_ns", "latency", {{"op", "fetch"}})
      .observe(999999);
  registry.counter("b_only_total", "b only").inc(42);
  registry.histogram("latency_ns", "latency", {{"op", "check"}}).observe(17);
}

/// Collects a registry into comparable (name, labels, type, rendering)
/// tuples. Histograms compare bucket-exactly.
struct SeriesSnapshot {
  std::string name;
  Labels labels;
  MetricType type;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  friend bool operator==(const SeriesSnapshot&,
                         const SeriesSnapshot&) = default;
};

std::vector<SeriesSnapshot> snapshot(const MetricsRegistry& registry) {
  std::vector<SeriesSnapshot> out;
  for (const auto& metric : registry.collect()) {
    SeriesSnapshot s;
    s.name = metric.name;
    s.labels = metric.labels;
    s.type = metric.type;
    switch (metric.type) {
      case MetricType::kCounter:
        s.counter = metric.counter->value();
        break;
      case MetricType::kGauge:
        s.gauge = metric.gauge->value();
        break;
      case MetricType::kHistogram:
        s.buckets.resize(Histogram::kBucketCount);
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          s.buckets[i] = metric.histogram->bucket_count(i);
        }
        s.count = metric.histogram->count();
        s.sum = metric.histogram->sum();
        s.max = metric.histogram->max();
        break;
    }
    out.push_back(std::move(s));
  }
  // collect() preserves registration order, which can differ between the
  // original and a deserialized copy's merge order only if series differ —
  // sort so comparison is order-independent.
  std::sort(out.begin(), out.end(),
            [](const SeriesSnapshot& a, const SeriesSnapshot& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return out;
}

TEST(MetricsSerdeTest, RoundTripReconstructsEverySeries) {
  MetricsRegistry original;
  fill_registry_a(original);
  const auto blob = serialize_registry(original);
  ASSERT_FALSE(blob.empty());

  MetricsRegistry copy;
  ASSERT_TRUE(deserialize_registry(blob, copy));
  EXPECT_EQ(snapshot(copy), snapshot(original));

  // Quantiles derive from the (exactly reconstructed) buckets, so the
  // copy answers them identically.
  const auto& h_in =
      original.histogram("latency_ns", "", {{"op", "fetch"}});
  const auto& h_out = copy.histogram("latency_ns", "", {{"op", "fetch"}});
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(h_out.quantile(q), h_in.quantile(q));
  }
}

TEST(MetricsSerdeTest, EmptyRegistryRoundTrips) {
  MetricsRegistry empty;
  const auto blob = serialize_registry(empty);
  MetricsRegistry copy;
  ASSERT_TRUE(deserialize_registry(blob, copy));
  EXPECT_TRUE(copy.collect().empty());
}

TEST(MetricsSerdeTest, SerializedMergeEqualsInProcessMerge) {
  // The satellite property: deserialize(serialize(r)).merge() ≡ merge(r).
  MetricsRegistry a;
  MetricsRegistry b;
  fill_registry_a(a);
  fill_registry_b(b);

  MetricsRegistry in_process;
  in_process.merge(a);
  in_process.merge(b);

  MetricsRegistry via_wire;
  ASSERT_TRUE(merge_serialized(via_wire, serialize_registry(a)));
  ASSERT_TRUE(merge_serialized(via_wire, serialize_registry(b)));

  EXPECT_EQ(snapshot(via_wire), snapshot(in_process));

  // Spot-check the merge semantics themselves: counters accumulated,
  // gauge adopted B's later value, histogram holds both sides' samples.
  EXPECT_EQ(via_wire.counter("requests_total", "", {{"code", "200"}}).value(),
            12u);
  EXPECT_EQ(via_wire.gauge("queue_depth", "").value(), 3.0);
  EXPECT_EQ(
      via_wire.histogram("latency_ns", "", {{"op", "fetch"}}).count(), 8u);
}

TEST(MetricsSerdeTest, ExtraLabelsRelabelEverySeries) {
  MetricsRegistry worker;
  worker.counter("shards_total", "shards").inc(3);
  worker.gauge("busy", "busy", {{"phase", "fetch"}}).set(1.0);

  MetricsRegistry coordinator;
  ASSERT_TRUE(merge_serialized(coordinator, serialize_registry(worker),
                               {{"worker", "w1"}}));

  // The relabeled series exist; the unlabeled originals do not.
  bool found_counter = false;
  bool found_gauge = false;
  for (const auto& metric : coordinator.collect()) {
    if (metric.name == "shards_total") {
      EXPECT_EQ(metric.labels, (Labels{{"worker", "w1"}}));
      EXPECT_EQ(metric.counter->value(), 3u);
      found_counter = true;
    }
    if (metric.name == "busy") {
      EXPECT_EQ(metric.labels,
                (Labels{{"phase", "fetch"}, {"worker", "w1"}}));
      found_gauge = true;
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);

  // Two workers' identically-named series stay distinguishable.
  ASSERT_TRUE(merge_serialized(coordinator, serialize_registry(worker),
                               {{"worker", "w2"}}));
  EXPECT_EQ(
      coordinator.counter("shards_total", "", {{"worker", "w1"}}).value(), 3u);
  EXPECT_EQ(
      coordinator.counter("shards_total", "", {{"worker", "w2"}}).value(), 3u);
}

TEST(MetricsSerdeTest, RejectsTruncationsWithoutCrashing) {
  MetricsRegistry registry;
  fill_registry_a(registry);
  const auto blob = serialize_registry(registry);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    MetricsRegistry scratch;
    EXPECT_FALSE(deserialize_registry(
        std::span(blob.data(), cut), scratch))
        << "truncation at " << cut << " accepted";
  }
}

TEST(MetricsSerdeTest, SurvivesSeededBitFlips) {
  MetricsRegistry registry;
  fill_registry_a(registry);
  const auto pristine = serialize_registry(registry);
  std::mt19937 rng(0xC0FFEE);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    auto blob = pristine;
    for (int flips = 1 + static_cast<int>(rng() % 4); flips > 0; --flips) {
      blob[rng() % blob.size()] ^= 1u << (rng() % 8);
    }
    MetricsRegistry scratch;
    // Accept or reject — either is fine; crashing or hanging is not. A
    // flip that only touches a value byte can still decode.
    (void)merge_serialized(scratch, blob);
  }
}

TEST(MetricsSerdeTest, RejectsTypeConflicts) {
  MetricsRegistry sender;
  sender.counter("depth", "was a counter over there").inc(9);
  const auto blob = serialize_registry(sender);

  MetricsRegistry receiver;
  receiver.gauge("depth", "is a gauge here").set(4.0);
  EXPECT_FALSE(merge_serialized(receiver, blob));
  // The receiver's own series is untouched.
  EXPECT_EQ(receiver.gauge("depth", "").value(), 4.0);
}

TEST(MetricsSerdeTest, GarbageAndEmptyInputsRejected) {
  MetricsRegistry scratch;
  EXPECT_FALSE(deserialize_registry({}, scratch));
  const std::vector<std::uint8_t> garbage(64, 0xAB);
  EXPECT_FALSE(deserialize_registry(garbage, scratch));
}

}  // namespace
}  // namespace dcv::obs
