// TraceMerger tests: remote span batches are re-keyed into the local id
// space, re-parented under the owning span, rebased by the clock offset,
// clamped to their causal floor, and bounded by the remote-event cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "obs/span_serde.hpp"
#include "obs/trace_merge.hpp"

namespace {

using namespace dcv::obs;
using std::chrono::nanoseconds;

DecodedTrace remote_batch(std::int64_t base_abs_ns) {
  // A worker-shaped batch: a root span (parent 0) with two children, with
  // *absolute* remote-clock starts as span_serde ships them.
  DecodedTrace trace;
  trace.events.push_back({"fetch", 11, 10, 4, 1,
                          nanoseconds(base_abs_ns + 100), nanoseconds(50)});
  trace.events.push_back({"validate", 12, 10, 4, 1,
                          nanoseconds(base_abs_ns + 200), nanoseconds(80)});
  trace.events.push_back({"shard", 10, 0, 4, 1, nanoseconds(base_abs_ns),
                          nanoseconds(400)});
  return trace;
}

const TraceEvent* find_span(const std::vector<TraceEvent>& events,
                            std::string_view name) {
  const auto it = std::find_if(
      events.begin(), events.end(),
      [&](const TraceEvent& event) { return event.name == name; });
  return it == events.end() ? nullptr : &*it;
}

TEST(TraceMerger, ReparentsAndRekeysRemoteBatchUnderOwningSpan) {
  TraceRing local(16);
  const std::uint64_t assign_span = allocate_span_id();
  local.record_span("assign", assign_span, 0, 4, local.epoch(),
                    nanoseconds(1000));

  TraceMerger merger(&local, "coordinator");
  const std::int64_t epoch_ns = local.epoch().time_since_epoch().count();
  // Remote clock = local clock (offset 0): starts land where they were.
  merger.add_remote("worker-1", remote_batch(epoch_ns + 5000),
                    /*offset_ns=*/0, assign_span, nanoseconds(0));

  const MergedTrace merged = merger.snapshot();
  ASSERT_EQ(merged.tracks.size(), 2u);
  EXPECT_EQ(merged.tracks[0].process, "coordinator");
  EXPECT_EQ(merged.tracks[1].process, "worker-1");

  const auto& events = merged.tracks[1].events;
  ASSERT_EQ(events.size(), 3u);
  const TraceEvent* shard = find_span(events, "shard");
  const TraceEvent* fetch = find_span(events, "fetch");
  const TraceEvent* validate = find_span(events, "validate");
  ASSERT_NE(shard, nullptr);
  ASSERT_NE(fetch, nullptr);
  ASSERT_NE(validate, nullptr);

  // The batch root hangs off the assign span; children keep their remapped
  // in-batch parent. All ids are fresh (re-keyed out of the remote space).
  EXPECT_EQ(shard->parent, assign_span);
  EXPECT_EQ(fetch->parent, shard->id);
  EXPECT_EQ(validate->parent, shard->id);
  EXPECT_NE(shard->id, 10u);
  EXPECT_NE(fetch->id, 11u);
  EXPECT_NE(validate->id, 12u);

  // Offset 0 → starts become ring-relative verbatim.
  EXPECT_EQ(shard->start, nanoseconds(5000));
  EXPECT_EQ(fetch->start, nanoseconds(5100));
  EXPECT_EQ(validate->start, nanoseconds(5200));
}

TEST(TraceMerger, RebasesByOffsetAndClampsToFloor) {
  TraceRing local(16);
  TraceMerger merger(&local, "coordinator");
  const std::int64_t epoch_ns = local.epoch().time_since_epoch().count();

  // Worker clock runs 1µs *behind* local: offset_ns (local − remote) =
  // +1000. With a perfect estimate the batch lands at 5000..5400; claim a
  // floor of 5150 to model an estimate that was ~150ns too early.
  merger.add_remote("worker-1", remote_batch(epoch_ns + 4000),
                    /*offset_ns=*/1000, /*parent_span=*/0,
                    nanoseconds(5150));

  const MergedTrace merged = merger.snapshot();
  ASSERT_EQ(merged.tracks.size(), 2u);
  const auto& events = merged.tracks[1].events;
  const TraceEvent* shard = find_span(events, "shard");
  const TraceEvent* fetch = find_span(events, "fetch");
  ASSERT_NE(shard, nullptr);
  ASSERT_NE(fetch, nullptr);
  // Whole batch shifted forward by 150 so nothing precedes the floor;
  // internal structure (fetch − shard = 100) is preserved.
  EXPECT_EQ(shard->start, nanoseconds(5150));
  EXPECT_EQ(fetch->start, nanoseconds(5250));
}

TEST(TraceMerger, CapDropsWholeBatchesAndCountsThem) {
  TraceRing local(16);
  TraceMerger merger(&local, "coordinator", /*max_remote_events=*/4);
  const std::int64_t epoch_ns = local.epoch().time_since_epoch().count();

  merger.add_remote("worker-1", remote_batch(epoch_ns), 0, 0, nanoseconds(0));
  // Second batch would exceed the cap: dropped whole, counted.
  merger.add_remote("worker-2", remote_batch(epoch_ns), 0, 0, nanoseconds(0));

  const MergedTrace merged = merger.snapshot();
  ASSERT_EQ(merged.tracks.size(), 2u);  // local + worker-1 only
  EXPECT_EQ(merged.tracks[1].process, "worker-1");
  EXPECT_EQ(merged.tracks[1].events.size(), 3u);
  EXPECT_EQ(merged.truncated, 3u);
}

TEST(TraceMerger, AccumulatesRemoteDropCounts) {
  TraceMerger merger(nullptr, "coordinator");
  DecodedTrace first;
  first.dropped = 5;
  DecodedTrace second;
  second.dropped = 2;
  merger.add_remote("w", std::move(first), 0, 0, nanoseconds(0));
  merger.add_remote("w", std::move(second), 0, 0, nanoseconds(0));
  const MergedTrace merged = merger.snapshot();
  EXPECT_EQ(merged.remote_dropped, 7u);
  // No local ring → no local track; the remote track exists but is empty.
  ASSERT_EQ(merged.tracks.size(), 1u);
  EXPECT_TRUE(merged.tracks[0].events.empty());
}

TEST(TraceMerger, SerdeFeedsMergerEndToEnd) {
  // The worker-side path: events serialized with absolute starts, decoded,
  // then merged — the merged view keeps the tree shape.
  std::vector<TraceEvent> events = {
      {"fetch", 21, 20, 1, 0, nanoseconds(300), nanoseconds(10)},
      {"shard", 20, 0, 1, 0, nanoseconds(250), nanoseconds(100)},
  };
  const auto blob = serialize_trace(events, nanoseconds(0), 0);
  DecodedTrace decoded;
  ASSERT_TRUE(deserialize_trace(blob, decoded));

  TraceRing local(8);
  TraceMerger merger(&local, "coordinator");
  const std::uint64_t assign_span = allocate_span_id();
  merger.add_remote("worker-9", std::move(decoded),
                    local.epoch().time_since_epoch().count(), assign_span,
                    nanoseconds(0));

  const MergedTrace merged = merger.snapshot();
  ASSERT_EQ(merged.tracks.size(), 2u);
  const auto& track = merged.tracks[1].events;
  const TraceEvent* shard = find_span(track, "shard");
  const TraceEvent* fetch = find_span(track, "fetch");
  ASSERT_NE(shard, nullptr);
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(shard->parent, assign_span);
  EXPECT_EQ(fetch->parent, shard->id);
  EXPECT_EQ(shard->start, nanoseconds(250));
  EXPECT_EQ(fetch->start, nanoseconds(300));
}

}  // namespace
