// dcv-trace-v1 serde tests: serialize∘deserialize is the identity over
// randomized span batches (with ring offsets converted to absolute
// nanoseconds), and every class of malformed blob is rejected without
// touching the output.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "obs/span_serde.hpp"

namespace {

using namespace dcv::obs;
using std::chrono::nanoseconds;

std::vector<TraceEvent> random_events(std::mt19937_64& rng, std::size_t n) {
  std::vector<TraceEvent> events;
  events.reserve(n);
  std::uniform_int_distribution<std::uint64_t> id_dist(1, 1u << 20);
  std::uniform_int_distribution<std::uint64_t> ns_dist(0, 1u << 30);
  std::uniform_int_distribution<std::size_t> len_dist(0, 24);
  for (std::size_t i = 0; i < n; ++i) {
    TraceEvent event;
    event.name = std::string(len_dist(rng), 'x');
    if (!event.name.empty()) event.name[0] = static_cast<char>('a' + i % 26);
    event.id = id_dist(rng);
    event.parent = rng() % 2 == 0 ? 0 : id_dist(rng);
    event.cycle = id_dist(rng);
    event.thread = static_cast<std::uint32_t>(rng() % 64);
    event.start = nanoseconds(static_cast<std::int64_t>(ns_dist(rng)));
    event.duration = nanoseconds(static_cast<std::int64_t>(ns_dist(rng)));
    events.push_back(std::move(event));
  }
  return events;
}

TEST(SpanSerde, RoundTripIsIdentityOverRandomBatches) {
  std::mt19937_64 rng(0xDC57ACE5);
  for (int iteration = 0; iteration < 50; ++iteration) {
    const std::size_t n = static_cast<std::size_t>(rng() % 40);
    const std::vector<TraceEvent> events = random_events(rng, n);
    const nanoseconds epoch(static_cast<std::int64_t>(rng() % (1u << 20)));
    const std::uint64_t dropped = rng() % 1000;

    const auto blob = serialize_trace(events, epoch, dropped);
    DecodedTrace decoded;
    ASSERT_TRUE(deserialize_trace(blob, decoded));
    EXPECT_EQ(decoded.dropped, dropped);
    ASSERT_EQ(decoded.events.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(decoded.events[i].name, events[i].name);
      EXPECT_EQ(decoded.events[i].id, events[i].id);
      EXPECT_EQ(decoded.events[i].parent, events[i].parent);
      EXPECT_EQ(decoded.events[i].cycle, events[i].cycle);
      EXPECT_EQ(decoded.events[i].thread, events[i].thread);
      // Starts come back absolute: ring offset + epoch.
      EXPECT_EQ(decoded.events[i].start, events[i].start + epoch);
      EXPECT_EQ(decoded.events[i].duration, events[i].duration);
    }
  }
}

TEST(SpanSerde, RingOverloadConvertsOffsetsToAbsoluteStarts) {
  TraceRing ring(8);
  const auto epoch_ns = ring.epoch().time_since_epoch();
  ring.record_span("work", 7, 3, 1, ring.epoch() + nanoseconds(500),
                   nanoseconds(200));

  DecodedTrace decoded;
  ASSERT_TRUE(deserialize_trace(serialize_trace(ring), decoded));
  ASSERT_EQ(decoded.events.size(), 1u);
  EXPECT_EQ(decoded.events[0].name, "work");
  EXPECT_EQ(decoded.events[0].id, 7u);
  EXPECT_EQ(decoded.events[0].parent, 3u);
  EXPECT_EQ(decoded.events[0].start, epoch_ns + nanoseconds(500));
  EXPECT_EQ(decoded.events[0].duration, nanoseconds(200));
}

TEST(SpanSerde, CarriesRingDropCount) {
  TraceRing ring(2);
  for (int i = 0; i < 5; ++i) {
    ring.record("s", ring.epoch(), nanoseconds(1));
  }
  DecodedTrace decoded;
  ASSERT_TRUE(deserialize_trace(serialize_trace(ring), decoded));
  EXPECT_EQ(decoded.dropped, 3u);
  EXPECT_EQ(decoded.events.size(), 2u);
}

TEST(SpanSerde, RejectsMalformedBlobs) {
  const std::vector<TraceEvent> events = {
      {"alpha", 1, 0, 9, 2, nanoseconds(10), nanoseconds(5)},
      {"beta", 2, 1, 9, 2, nanoseconds(12), nanoseconds(2)},
  };
  const auto good = serialize_trace(events, nanoseconds(0), 0);
  DecodedTrace decoded;
  ASSERT_TRUE(deserialize_trace(good, decoded));

  // Empty and short buffers.
  EXPECT_FALSE(deserialize_trace({}, decoded));
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(good.begin(),
                                              good.begin() + cut);
    EXPECT_FALSE(deserialize_trace(truncated, decoded))
        << "truncation at " << cut << " bytes must be rejected";
  }

  // Wrong magic / version.
  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(deserialize_trace(bad_magic, decoded));
  auto bad_version = good;
  bad_version[4] = 0x7F;
  EXPECT_FALSE(deserialize_trace(bad_version, decoded));

  // Trailing garbage.
  auto trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(deserialize_trace(trailing, decoded));

  // Hostile count: claims 2^31 events in a tiny buffer.
  auto hostile = good;
  hostile[14] = 0x00;
  hostile[15] = 0x00;
  hostile[16] = 0x00;
  hostile[17] = 0x80;
  EXPECT_FALSE(deserialize_trace(hostile, decoded));
}

TEST(SpanSerde, RejectionLeavesOutputUntouched) {
  const std::vector<TraceEvent> events = {
      {"keep", 5, 0, 1, 0, nanoseconds(1), nanoseconds(1)}};
  DecodedTrace decoded;
  ASSERT_TRUE(
      deserialize_trace(serialize_trace(events, nanoseconds(0), 7), decoded));
  const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(deserialize_trace(garbage, decoded));
  ASSERT_EQ(decoded.events.size(), 1u);
  EXPECT_EQ(decoded.events[0].name, "keep");
  EXPECT_EQ(decoded.dropped, 7u);
}

TEST(SpanSerde, EmptyBatchRoundTrips) {
  DecodedTrace decoded;
  ASSERT_TRUE(deserialize_trace(
      serialize_trace(std::vector<TraceEvent>{}, nanoseconds(0), 0),
      decoded));
  EXPECT_TRUE(decoded.events.empty());
  EXPECT_EQ(decoded.dropped, 0u);
}

}  // namespace
