#include "e2e/trace.hpp"

#include <gtest/gtest.h>

#include <set>

#include "routing/aggregation.hpp"
#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::e2e {
namespace {

class TraceTest : public testing::Test {
 protected:
  TraceTest() : topology_(topo::build_figure3()), metadata_(topology_) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  static net::PacketHeader packet(const char* src, std::uint16_t sport,
                                  const char* dst, std::uint16_t dport) {
    return net::PacketHeader{.src_ip = net::Ipv4Address::parse(src),
                             .src_port = sport,
                             .dst_ip = net::Ipv4Address::parse(dst),
                             .dst_port = dport,
                             .protocol = 6};
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST(EcmpIndex, DeterministicAndInRange) {
  const auto p = net::PacketHeader{.src_ip = net::Ipv4Address(1),
                                   .src_port = 2,
                                   .dst_ip = net::Ipv4Address(3),
                                   .dst_port = 4,
                                   .protocol = 6};
  for (std::size_t fanout = 1; fanout <= 8; ++fanout) {
    const std::size_t index = ecmp_index(p, fanout);
    EXPECT_LT(index, fanout);
    EXPECT_EQ(index, ecmp_index(p, fanout));  // deterministic
  }
  EXPECT_EQ(ecmp_index(p, 0), 0u);
}

TEST(EcmpIndex, SpreadsFlows) {
  // Across many flows, all members of an 4-way group get used.
  std::set<std::size_t> seen;
  for (std::uint16_t port = 1000; port < 1100; ++port) {
    seen.insert(ecmp_index(
        net::PacketHeader{.src_ip = net::Ipv4Address(0x0A000005),
                          .src_port = port,
                          .dst_ip = net::Ipv4Address(0x0A000209),
                          .dst_port = 443,
                          .protocol = 6},
        4));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST_F(TraceTest, InterClusterFlowTakesAFourHopPath) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  const auto result = trace_flow(metadata_, fibs, id("ToR1"),
                                 packet("10.0.0.5", 40000, "10.0.2.9", 443));
  EXPECT_EQ(result.outcome, TraceResult::Outcome::kDelivered);
  // ToR1 -> A? -> D? -> B? -> ToR3: five devices, four hops.
  ASSERT_EQ(result.hops.size(), 5u);
  EXPECT_EQ(result.hops.front().device, id("ToR1"));
  EXPECT_EQ(result.hops.back().device, id("ToR3"));
  EXPECT_EQ(topology_.device(result.hops[1].device).role,
            topo::DeviceRole::kLeaf);
  EXPECT_EQ(topology_.device(result.hops[2].device).role,
            topo::DeviceRole::kSpine);
}

TEST_F(TraceTest, IntraClusterFlowIsTwoHops) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  const auto result = trace_flow(metadata_, fibs, id("ToR1"),
                                 packet("10.0.0.5", 40000, "10.0.1.9", 443));
  EXPECT_EQ(result.outcome, TraceResult::Outcome::kDelivered);
  EXPECT_EQ(result.hops.size(), 3u);  // ToR1 -> A? -> ToR2
}

TEST_F(TraceTest, DifferentFlowsUseDifferentEcmpMembers) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  std::set<topo::DeviceId> first_hops;
  for (std::uint16_t port = 1000; port < 1064; ++port) {
    const auto result =
        trace_flow(metadata_, fibs, id("ToR1"),
                   packet("10.0.0.5", port, "10.0.2.9", 443));
    ASSERT_EQ(result.outcome, TraceResult::Outcome::kDelivered);
    first_hops.insert(result.hops[1].device);
  }
  // All four leaves carry some flow.
  EXPECT_EQ(first_hops.size(), 4u);
}

TEST_F(TraceTest, DetourFlowAfterFigure3Failures) {
  topo::apply_figure3_failures(topology_);
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  const auto result = trace_flow(metadata_, fibs, id("ToR1"),
                                 packet("10.0.0.5", 40000, "10.0.1.9", 443));
  // Delivered via the regional detour: 7 devices (6 hops), through an R.
  EXPECT_EQ(result.outcome, TraceResult::Outcome::kDelivered);
  ASSERT_EQ(result.hops.size(), 7u);
  EXPECT_EQ(topology_.device(result.hops[3].device).role,
            topo::DeviceRole::kRegionalSpine);
}

TEST_F(TraceTest, AggregationBlackHoleShowsAsDiscard) {
  topo::apply_figure3_failures(topology_);
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource plain(sim);
  const rcdc::AggregatingFibSource aggregated(plain, metadata_);
  const auto result =
      trace_flow(metadata_, aggregated, id("ToR1"),
                 packet("10.0.0.5", 40000, "10.0.1.9", 443));
  EXPECT_EQ(result.outcome, TraceResult::Outcome::kDropped);
  // The drop happens at a leaf's discard route for the cluster aggregate.
  EXPECT_EQ(topology_.device(result.hops.back().device).role,
            topo::DeviceRole::kLeaf);
  EXPECT_EQ(result.hops.back().matched, net::Prefix::parse("10.0.0.0/23"));
}

TEST_F(TraceTest, UnknownDestinationDropsAtTheRegionalEdge) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  const auto result = trace_flow(metadata_, fibs, id("ToR1"),
                                 packet("10.0.0.5", 40000, "99.0.0.1", 443));
  // Default routes carry it up to a regional spine, whose own default is
  // the (connected) exit toward the WAN — beyond our model, so the trace
  // ends there as a misdelivery rather than a silent success.
  EXPECT_NE(result.outcome, TraceResult::Outcome::kDelivered);
  EXPECT_EQ(topology_.device(result.hops.back().device).role,
            topo::DeviceRole::kRegionalSpine);
}

TEST_F(TraceTest, ToStringRendersPath) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  const auto result = trace_flow(metadata_, fibs, id("ToR1"),
                                 packet("10.0.0.5", 40000, "10.0.1.9", 443));
  const std::string text = result.to_string(topology_);
  EXPECT_NE(text.find("ToR1 -> "), std::string::npos);
  EXPECT_NE(text.find("[delivered]"), std::string::npos);
}

}  // namespace
}  // namespace dcv::e2e
