// Tests for the combined routing + NSG checker (§3.6's "simple extension",
// built): a flow is delivered iff the fabric routes it and the destination
// security group admits it.
#include "e2e/end_to_end.hpp"

#include <gtest/gtest.h>

#include "routing/bgp_sim.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::e2e {
namespace {

using secguru::Action;
using secguru::Nsg;
using secguru::NsgRule;
using secguru::Rule;

class EndToEndTest : public testing::Test {
 protected:
  EndToEndTest()
      : topology_(topo::build_figure3()), metadata_(topology_) {}

  topo::DeviceId id(const char* name) const {
    return *topology_.find_device(name);
  }

  /// An NSG admitting only TCP/1433 from Prefix_A (ToR1's prefix).
  static Nsg database_nsg() {
    Nsg nsg("db");
    nsg.upsert(NsgRule{
        .priority = 100,
        .name = "AllowSqlFromA",
        .rule = Rule{.action = Action::kPermit,
                     .protocol = net::ProtocolSpec::tcp(),
                     .src = net::Prefix::parse("10.0.0.0/24"),
                     .src_ports = net::PortRange::any(),
                     .dst = net::Prefix::parse("10.0.2.0/24"),
                     .dst_ports = net::PortRange::exactly(1433)}});
    nsg.upsert(NsgRule{
        .priority = 4096,
        .name = "DenyAll",
        .rule = Rule{.action = Action::kDeny,
                     .protocol = net::ProtocolSpec::any(),
                     .src = net::Prefix::default_route(),
                     .src_ports = net::PortRange::any(),
                     .dst = net::Prefix::default_route(),
                     .dst_ports = net::PortRange::any()}});
    return nsg;
  }

  static net::PacketHeader sql_packet(const char* src, const char* dst) {
    return net::PacketHeader{.src_ip = net::Ipv4Address::parse(src),
                             .src_port = 40000,
                             .dst_ip = net::Ipv4Address::parse(dst),
                             .dst_port = 1433,
                             .protocol = 6};
  }

  topo::Topology topology_;
  topo::MetadataService metadata_;
};

TEST_F(EndToEndTest, HealthyUnprotectedFlowIsDelivered) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  // ToR1 -> Prefix_C (cluster B), no NSG attached.
  const auto verdict =
      checker.check_flow(id("ToR1"), sql_packet("10.0.0.5", "10.0.2.9"));
  EXPECT_TRUE(verdict.routed);
  EXPECT_TRUE(verdict.delivered());
  EXPECT_EQ(verdict.min_path_length, 4);
  EXPECT_EQ(verdict.max_path_length, 4);
  EXPECT_EQ(verdict.paths, 4u);
  EXPECT_FALSE(verdict.admitted.has_value());  // no NSG in the picture
}

TEST_F(EndToEndTest, NsgAdmitsMatchingFlow) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  checker.protect(ProtectedPrefix{
      .prefix = net::Prefix::parse("10.0.2.0/24"), .nsg = database_nsg()});
  const auto verdict =
      checker.check_flow(id("ToR1"), sql_packet("10.0.0.5", "10.0.2.9"));
  EXPECT_TRUE(verdict.routed);
  ASSERT_TRUE(verdict.admitted.has_value());
  EXPECT_TRUE(*verdict.admitted);
  EXPECT_TRUE(verdict.delivered());
}

TEST_F(EndToEndTest, NsgBlocksForeignSource) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  checker.protect(ProtectedPrefix{
      .prefix = net::Prefix::parse("10.0.2.0/24"), .nsg = database_nsg()});
  // Routed fine from ToR2's prefix, but the NSG only allows Prefix_A.
  const auto verdict =
      checker.check_flow(id("ToR2"), sql_packet("10.0.1.5", "10.0.2.9"));
  EXPECT_TRUE(verdict.routed);
  ASSERT_TRUE(verdict.admitted.has_value());
  EXPECT_FALSE(*verdict.admitted);
  EXPECT_FALSE(verdict.delivered());
  ASSERT_TRUE(verdict.blocking_rule.has_value());
  // The deny-all decided (index 1 in priority order).
  EXPECT_EQ(*verdict.blocking_rule, 1u);
}

TEST_F(EndToEndTest, RoutingFailureTrumpsPolicy) {
  // Cut ToR3 (hosting Prefix_C) off entirely: policy says yes, fabric says
  // no.
  topology_.shut_all_sessions_of(id("ToR3"));
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  checker.protect(ProtectedPrefix{
      .prefix = net::Prefix::parse("10.0.2.0/24"), .nsg = database_nsg()});
  const auto verdict =
      checker.check_flow(id("ToR1"), sql_packet("10.0.0.5", "10.0.2.9"));
  EXPECT_FALSE(verdict.routed);
  EXPECT_FALSE(verdict.delivered());
}

TEST_F(EndToEndTest, DegradedRoutingStillDeliversViaLongerPath) {
  // The Figure 3 failures: ToR1 -> Prefix_B survives via the regional
  // detour (length 6), visible in the verdict's path lengths.
  topo::apply_figure3_failures(topology_);
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  const auto verdict =
      checker.check_flow(id("ToR1"), sql_packet("10.0.0.5", "10.0.1.9"));
  EXPECT_TRUE(verdict.routed);
  EXPECT_GT(verdict.min_path_length, 2);  // no longer the shortest path
}

TEST_F(EndToEndTest, UnknownDestinationIsNotRouted) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  const auto verdict =
      checker.check_flow(id("ToR1"), sql_packet("10.0.0.5", "99.0.0.1"));
  EXPECT_FALSE(verdict.routed);
}

TEST_F(EndToEndTest, ContractCheckCombinesBothLayers) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  checker.protect(ProtectedPrefix{
      .prefix = net::Prefix::parse("10.0.2.0/24"), .nsg = database_nsg()});

  // Every SQL packet from Prefix_A must be admitted: holds.
  const secguru::ConnectivityContract good{
      .name = "sql-from-a",
      .expect = secguru::Expectation::kAllow,
      .protocol = net::ProtocolSpec::tcp(),
      .src = net::Prefix::parse("10.0.0.0/24"),
      .src_ports = net::PortRange::any(),
      .dst = net::Prefix::parse("10.0.2.0/24"),
      .dst_ports = net::PortRange::exactly(1433)};
  auto verdict = checker.check_contract(id("ToR1"), good);
  EXPECT_TRUE(verdict.routed);
  EXPECT_EQ(verdict.admitted, std::optional<bool>(true));

  // Web traffic must be admitted: fails against the database NSG.
  secguru::ConnectivityContract web = good;
  web.name = "web-from-a";
  web.dst_ports = net::PortRange::exactly(443);
  verdict = checker.check_contract(id("ToR1"), web);
  EXPECT_TRUE(verdict.routed);
  EXPECT_EQ(verdict.admitted, std::optional<bool>(false));
}

TEST_F(EndToEndTest, ProtectReplacesExistingNsg) {
  const routing::BgpSimulator sim(topology_);
  const rcdc::SimulatorFibSource fibs(sim);
  EndToEndChecker checker(metadata_, fibs);
  checker.protect(ProtectedPrefix{
      .prefix = net::Prefix::parse("10.0.2.0/24"), .nsg = database_nsg()});
  // Replace with an allow-all NSG: the blocked flow now passes.
  Nsg open("open");
  open.upsert(NsgRule{.priority = 100,
                      .name = "AllowAll",
                      .rule = Rule{.action = Action::kPermit,
                                   .protocol = net::ProtocolSpec::any(),
                                   .src = net::Prefix::default_route(),
                                   .src_ports = net::PortRange::any(),
                                   .dst = net::Prefix::default_route(),
                                   .dst_ports = net::PortRange::any()}});
  checker.protect(ProtectedPrefix{
      .prefix = net::Prefix::parse("10.0.2.0/24"), .nsg = std::move(open)});
  const auto verdict =
      checker.check_flow(id("ToR2"), sql_packet("10.0.1.5", "10.0.2.9"));
  EXPECT_EQ(verdict.admitted, std::optional<bool>(true));
}

}  // namespace
}  // namespace dcv::e2e
