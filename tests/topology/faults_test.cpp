#include "topology/faults.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::topo {
namespace {

TEST(FaultInjector, LinkDownIsRecordedAndApplied) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  injector.link_down(0);
  EXPECT_EQ(t.link(0).link_state, LinkState::kDown);
  ASSERT_EQ(injector.records().size(), 1u);
  EXPECT_EQ(injector.records()[0].kind, FaultRecord::Kind::kLinkDown);
}

TEST(FaultInjector, BgpAdminShutdown) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  injector.bgp_admin_shutdown(3);
  EXPECT_EQ(t.link(3).bgp_state, BgpSessionState::kAdminShutdown);
  EXPECT_EQ(t.link(3).link_state, LinkState::kUp);
}

TEST(FaultInjector, Layer2BugShutsAllSessions) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  const DeviceId a1 = *t.find_device("A1");
  injector.device_fault(a1, DeviceFaultKind::kLayer2InterfaceBug);
  EXPECT_TRUE(t.usable_neighbors(a1).empty());
  EXPECT_TRUE(
      injector.device_has_fault(a1, DeviceFaultKind::kLayer2InterfaceBug));
}

TEST(FaultInjector, NonTopologyDeviceFaultsOnlyRecorded) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  const DeviceId tor1 = *t.find_device("ToR1");
  injector.device_fault(tor1, DeviceFaultKind::kRibFibInconsistency);
  EXPECT_FALSE(t.usable_neighbors(tor1).empty());
  EXPECT_EQ(injector.faults_of(tor1),
            std::vector<DeviceFaultKind>{
                DeviceFaultKind::kRibFibInconsistency});
  EXPECT_FALSE(
      injector.device_has_fault(tor1, DeviceFaultKind::kEcmpSingleNextHop));
}

TEST(FaultInjector, RandomLinkFailuresAreDistinct) {
  Topology t = build_figure3();
  FaultInjector injector(t, /*seed=*/1);
  injector.random_link_failures(5);
  EXPECT_EQ(injector.records().size(), 5u);
  std::size_t down = 0;
  for (const Link& l : t.links()) {
    if (l.link_state == LinkState::kDown) ++down;
  }
  EXPECT_EQ(down, 5u);
}

TEST(FaultInjector, RandomDeviceFaultsRespectRole) {
  Topology t = build_figure3();
  FaultInjector injector(t, /*seed=*/2);
  injector.random_device_faults(3, DeviceRole::kTor,
                                DeviceFaultKind::kEcmpSingleNextHop);
  EXPECT_EQ(injector.records().size(), 3u);
  for (const FaultRecord& r : injector.records()) {
    EXPECT_EQ(t.device(r.device).role, DeviceRole::kTor);
  }
}

TEST(FaultInjector, RepairRestoresState) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  injector.link_down(0);
  injector.bgp_admin_shutdown(1);
  injector.repair(0);  // remove the link-down fault
  EXPECT_TRUE(t.link(0).usable());
  EXPECT_EQ(t.link(1).bgp_state, BgpSessionState::kAdminShutdown);
  EXPECT_EQ(injector.records().size(), 1u);
}

TEST(FaultInjector, RepairWithOverlappingFaults) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  // Two faults on the same link: repairing one must keep the other's
  // effect.
  injector.link_down(0);
  injector.bgp_admin_shutdown(0);
  injector.repair(0);  // remove link-down; admin shut remains
  EXPECT_FALSE(t.link(0).usable());
  EXPECT_EQ(t.link(0).bgp_state, BgpSessionState::kAdminShutdown);
}

TEST(FaultInjector, RepairDuplicateFaultOnSameLinkKeepsTheOther) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  // The same link goes physically down twice (e.g. re-reported by two
  // monitors): repairing one record must keep the link down.
  injector.link_down(0);
  injector.link_down(0);
  injector.repair(0);
  EXPECT_EQ(t.link(0).link_state, LinkState::kDown);
  injector.repair(0);
  EXPECT_EQ(t.link(0).link_state, LinkState::kUp);
}

TEST(FaultInjector, RepairLayer2FaultKeepsOverlappingAdminShut) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  const DeviceId a1 = *t.find_device("A1");
  const auto link = *t.find_link(*t.find_device("ToR1"), a1);
  // A layer-2 interface bug shuts every session of A1; one of those links
  // is also independently admin-shut. Repairing the device fault must
  // leave the admin-shut session shut.
  injector.bgp_admin_shutdown(link);
  injector.device_fault(a1, DeviceFaultKind::kLayer2InterfaceBug);
  injector.repair(1);  // remove the layer-2 fault
  EXPECT_EQ(t.link(link).bgp_state, BgpSessionState::kAdminShutdown);
  EXPECT_FALSE(
      injector.device_has_fault(a1, DeviceFaultKind::kLayer2InterfaceBug));
  // The other sessions of A1 are restored.
  EXPECT_FALSE(t.usable_neighbors(a1).empty());
}

TEST(FaultInjector, ReapplyRestoresOverlappingFaultsAfterExternalClear) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  const DeviceId a2 = *t.find_device("A2");
  injector.link_down(0);
  injector.bgp_admin_shutdown(0);
  injector.device_fault(a2, DeviceFaultKind::kLayer2InterfaceBug);
  // Someone resets the topology's fault state behind the injector's back.
  t.clear_faults();
  EXPECT_TRUE(t.link(0).usable());
  injector.reapply();
  EXPECT_EQ(t.link(0).link_state, LinkState::kDown);
  EXPECT_EQ(t.link(0).bgp_state, BgpSessionState::kAdminShutdown);
  EXPECT_TRUE(t.usable_neighbors(a2).empty());
  EXPECT_EQ(injector.records().size(), 3u);
}

TEST(FaultInjector, RepairSequenceOverOverlappingFaultsConverges) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  injector.link_down(0);
  injector.bgp_admin_shutdown(0);
  injector.link_down(1);
  // Repair in an order that interleaves the overlapped link: after each
  // repair the topology equals the state implied by the remaining records.
  injector.repair(1);  // remove admin-shut on link 0; link 0 stays down
  EXPECT_EQ(t.link(0).link_state, LinkState::kDown);
  // The session is no longer admin-shut, though it cannot establish while
  // the link is physically down.
  EXPECT_NE(t.link(0).bgp_state, BgpSessionState::kAdminShutdown);
  injector.repair(0);  // remove link-down on link 0
  EXPECT_TRUE(t.link(0).usable());
  EXPECT_EQ(t.link(1).link_state, LinkState::kDown);
  injector.repair(0);
  EXPECT_TRUE(t.link(1).usable());
  EXPECT_TRUE(injector.records().empty());
}

TEST(FaultInjector, ResetClearsEverything) {
  Topology t = build_figure3();
  FaultInjector injector(t, 3);
  injector.random_link_failures(4);
  injector.device_fault(0, DeviceFaultKind::kLayer2InterfaceBug);
  injector.reset();
  EXPECT_TRUE(injector.records().empty());
  for (const Link& l : t.links()) {
    EXPECT_TRUE(l.usable());
  }
}

TEST(FaultInjector, RecordDescriptionsAreHumanReadable) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  const auto link =
      *t.find_link(*t.find_device("ToR1"), *t.find_device("A1"));
  injector.link_down(link);
  const std::string text = injector.records()[0].to_string(t);
  EXPECT_NE(text.find("link-down"), std::string::npos);
  EXPECT_NE(text.find("ToR1"), std::string::npos);
  EXPECT_NE(text.find("A1"), std::string::npos);
}

TEST(FaultInjector, RepairOutOfRangeThrows) {
  Topology t = build_figure3();
  FaultInjector injector(t);
  EXPECT_THROW(injector.repair(0), dcv::InvalidArgument);
}

}  // namespace
}  // namespace dcv::topo
