#include "topology/metadata.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::topo {
namespace {

TEST(MetadataService, AllPrefixesSortedWithLocality) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  const auto prefixes = metadata.all_prefixes();
  ASSERT_EQ(prefixes.size(), 4u);
  for (std::size_t i = 1; i < prefixes.size(); ++i) {
    EXPECT_LT(prefixes[i - 1].prefix, prefixes[i].prefix);
  }
  EXPECT_EQ(t.device(prefixes[0].tor).name, "ToR1");
  EXPECT_EQ(prefixes[0].cluster, 0u);
  EXPECT_EQ(t.device(prefixes[2].tor).name, "ToR3");
  EXPECT_EQ(prefixes[2].cluster, 1u);
}

TEST(MetadataService, Locate) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  const auto fact = metadata.locate(net::Prefix::parse("10.0.1.0/24"));
  ASSERT_TRUE(fact.has_value());
  EXPECT_EQ(t.device(fact->tor).name, "ToR2");
  EXPECT_FALSE(
      metadata.locate(net::Prefix::parse("99.0.0.0/24")).has_value());
}

TEST(MetadataService, PrefixesInCluster) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  EXPECT_EQ(metadata.prefixes_in_cluster(0).size(), 2u);
  EXPECT_EQ(metadata.prefixes_in_cluster(1).size(), 2u);
}

TEST(MetadataService, SpinesServingCluster) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  EXPECT_EQ(metadata.spines_serving_cluster(0).size(), 4u);
  EXPECT_EQ(metadata.spines_serving_cluster(1).size(), 4u);
  EXPECT_THROW((void)metadata.spines_serving_cluster(9),
               dcv::InvalidArgument);
}

TEST(MetadataService, LeafUplinksToward) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  // A2 reaches cluster B's Prefix_C via D2 (its only spine), which connects
  // to B2 — the example of §2.4.2.
  const auto uplinks =
      metadata.leaf_uplinks_toward(*t.find_device("A2"), /*cluster=*/1);
  ASSERT_EQ(uplinks.size(), 1u);
  EXPECT_EQ(t.device(uplinks[0]).name, "D2");
}

TEST(MetadataService, SpineDownlinksInto) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  // D1's downlink into cluster A is A1 — "the only device from Cluster A
  // that connects to D1" (§2.4.3).
  const auto down =
      metadata.spine_downlinks_into(*t.find_device("D1"), /*cluster=*/0);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(t.device(down[0]).name, "A1");
  const auto down_b =
      metadata.spine_downlinks_into(*t.find_device("D1"), /*cluster=*/1);
  ASSERT_EQ(down_b.size(), 1u);
  EXPECT_EQ(t.device(down_b[0]).name, "B1");
}

TEST(MetadataService, RegionalDownlinksToward) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  // R1 connects to D1 and D3; both serve both clusters.
  const auto down =
      metadata.regional_downlinks_toward(*t.find_device("R1"), 0);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(t.device(down[0]).name, "D1");
  EXPECT_EQ(t.device(down[1]).name, "D3");
}

TEST(MetadataService, RegionalsServingCluster) {
  const Topology t = build_figure3();
  const MetadataService metadata(t);
  EXPECT_EQ(metadata.regionals_serving_cluster(0).size(), 4u);
}

TEST(MetadataService, DuplicateHostedPrefixThrows) {
  Topology t;
  const auto tor1 = t.add_device("t1", DeviceRole::kTor, 1, 0);
  const auto tor2 = t.add_device("t2", DeviceRole::kTor, 2, 0);
  t.add_hosted_prefix(tor1, net::Prefix::parse("10.0.0.0/24"));
  t.add_hosted_prefix(tor2, net::Prefix::parse("10.0.0.0/24"));
  EXPECT_THROW(MetadataService{t}, dcv::InvalidArgument);
}

TEST(MetadataService, WiderClosFanouts) {
  const ClosParams p{.clusters = 3,
                     .tors_per_cluster = 2,
                     .leaves_per_cluster = 2,
                     .spines_per_plane = 3,
                     .regional_spines = 2,
                     .regional_links_per_spine = 1};
  const Topology t = build_clos(p);
  const MetadataService metadata(t);
  EXPECT_EQ(metadata.spines_serving_cluster(0).size(), 6u);
  const auto leaf = t.leaves_in_cluster(0)[0];
  EXPECT_EQ(metadata.leaf_uplinks_toward(leaf, 1).size(), 3u);
}

}  // namespace
}  // namespace dcv::topo
