#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/error.hpp"

namespace dcv::topo {
namespace {

// neighbors*() return spans into the adjacency cache; materialize for
// comparison against vector literals.
std::vector<DeviceId> vec(std::span<const DeviceId> s) {
  return {s.begin(), s.end()};
}

Topology two_device_topology() {
  Topology t;
  t.add_device("tor", DeviceRole::kTor, 64500, 0);
  t.add_device("leaf", DeviceRole::kLeaf, 65100, 0);
  t.add_link(0, 1);
  return t;
}

TEST(Topology, AddDeviceAssignsSequentialIds) {
  Topology t;
  EXPECT_EQ(t.add_device("a", DeviceRole::kTor, 1, 0), 0u);
  EXPECT_EQ(t.add_device("b", DeviceRole::kLeaf, 2, 0), 1u);
  EXPECT_EQ(t.device_count(), 2u);
  EXPECT_EQ(t.device(0).name, "a");
  EXPECT_EQ(t.device(1).role, DeviceRole::kLeaf);
}

TEST(Topology, FindDeviceByName) {
  const Topology t = two_device_topology();
  EXPECT_EQ(t.find_device("leaf"), std::optional<DeviceId>(1));
  EXPECT_EQ(t.find_device("nope"), std::nullopt);
}

TEST(Topology, LinksAndNeighbors) {
  const Topology t = two_device_topology();
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(vec(t.neighbors(0)), std::vector<DeviceId>{1});
  EXPECT_EQ(vec(t.neighbors(1)), std::vector<DeviceId>{0});
  EXPECT_EQ(t.find_link(0, 1), std::optional<LinkId>(0));
  EXPECT_EQ(t.find_link(1, 0), std::optional<LinkId>(0));
}

TEST(Topology, NeighborsWithRoleFilters) {
  Topology t;
  const auto tor = t.add_device("tor", DeviceRole::kTor, 64500, 0);
  const auto leaf1 = t.add_device("l1", DeviceRole::kLeaf, 65100, 0);
  const auto leaf2 = t.add_device("l2", DeviceRole::kLeaf, 65100, 0);
  const auto spine = t.add_device("s", DeviceRole::kSpine, 65535);
  t.add_link(tor, leaf1);
  t.add_link(tor, leaf2);
  t.add_link(leaf1, spine);
  EXPECT_EQ(vec(t.neighbors_with_role(tor, DeviceRole::kLeaf)),
            (std::vector<DeviceId>{leaf1, leaf2}));
  EXPECT_TRUE(t.neighbors_with_role(tor, DeviceRole::kSpine).empty());
  EXPECT_EQ(vec(t.neighbors_with_role(leaf1, DeviceRole::kSpine)),
            std::vector<DeviceId>{spine});
}

TEST(Topology, BadLinkEndpointsThrow) {
  Topology t;
  t.add_device("a", DeviceRole::kTor, 1, 0);
  EXPECT_THROW(t.add_link(0, 0), InvalidArgument);
  EXPECT_THROW(t.add_link(0, 5), InvalidArgument);
}

TEST(Topology, BadIdsThrow) {
  const Topology t = two_device_topology();
  EXPECT_THROW((void)t.device(9), InvalidArgument);
  EXPECT_THROW((void)t.link(9), InvalidArgument);
  EXPECT_THROW((void)t.links_of(9), InvalidArgument);
}

TEST(Topology, LinkDownTakesBgpDown) {
  Topology t = two_device_topology();
  t.set_link_state(0, LinkState::kDown);
  EXPECT_EQ(t.link(0).bgp_state, BgpSessionState::kDown);
  EXPECT_FALSE(t.link(0).usable());
  EXPECT_TRUE(t.usable_neighbors(0).empty());
}

TEST(Topology, LinkUpRestoresSessionUnlessAdminShut) {
  Topology t = two_device_topology();
  t.set_link_state(0, LinkState::kDown);
  t.set_link_state(0, LinkState::kUp);
  EXPECT_TRUE(t.link(0).usable());

  t.set_bgp_state(0, BgpSessionState::kAdminShutdown);
  t.set_link_state(0, LinkState::kDown);
  t.set_link_state(0, LinkState::kUp);
  EXPECT_EQ(t.link(0).bgp_state, BgpSessionState::kAdminShutdown);
  EXPECT_FALSE(t.link(0).usable());
}

TEST(Topology, AdminShutAloneMakesLinkUnusable) {
  Topology t = two_device_topology();
  t.set_bgp_state(0, BgpSessionState::kAdminShutdown);
  EXPECT_EQ(t.link(0).link_state, LinkState::kUp);
  EXPECT_FALSE(t.link(0).usable());
}

TEST(Topology, ShutAllSessionsOfDevice) {
  Topology t;
  const auto a = t.add_device("a", DeviceRole::kLeaf, 1, 0);
  const auto b = t.add_device("b", DeviceRole::kSpine, 2);
  const auto c = t.add_device("c", DeviceRole::kSpine, 2);
  t.add_link(a, b);
  t.add_link(a, c);
  t.shut_all_sessions_of(a);
  EXPECT_FALSE(t.link(0).usable());
  EXPECT_FALSE(t.link(1).usable());
}

TEST(Topology, ClearFaultsRestoresEverything) {
  Topology t = two_device_topology();
  t.set_link_state(0, LinkState::kDown);
  t.set_bgp_state(0, BgpSessionState::kAdminShutdown);
  t.clear_faults();
  EXPECT_TRUE(t.link(0).usable());
}

TEST(Topology, ClusterQueries) {
  Topology t;
  t.add_device("t0", DeviceRole::kTor, 1, 0);
  t.add_device("t1", DeviceRole::kTor, 1, 1);
  t.add_device("l0", DeviceRole::kLeaf, 2, 0);
  t.add_device("s", DeviceRole::kSpine, 3);
  EXPECT_EQ(t.cluster_count(), 2u);
  EXPECT_EQ(t.tors_in_cluster(0), std::vector<DeviceId>{0});
  EXPECT_EQ(t.tors_in_cluster(1), std::vector<DeviceId>{1});
  EXPECT_EQ(t.leaves_in_cluster(0), std::vector<DeviceId>{2});
  EXPECT_EQ(vec(t.devices_with_role(DeviceRole::kSpine)),
            std::vector<DeviceId>{3});
}

TEST(Topology, HostedPrefixes) {
  Topology t = two_device_topology();
  t.add_hosted_prefix(0, net::Prefix::parse("10.0.0.0/24"));
  ASSERT_EQ(t.device(0).hosted_prefixes.size(), 1u);
  EXPECT_EQ(t.device(0).hosted_prefixes[0],
            net::Prefix::parse("10.0.0.0/24"));
}

TEST(Topology, SetAsn) {
  Topology t = two_device_topology();
  t.set_asn(1, 65199);
  EXPECT_EQ(t.device(1).asn, 65199u);
}

TEST(Topology, DatacenterMembership) {
  Topology t;
  t.add_device("a", DeviceRole::kSpine, 1, kNoCluster, 2);
  t.add_device("r", DeviceRole::kRegionalSpine, 1, kNoCluster,
               kNoDatacenter);
  EXPECT_EQ(t.device(0).datacenter, 2u);
  EXPECT_EQ(t.device(1).datacenter, kNoDatacenter);
}

TEST(Topology, AdjacencyCacheInvalidatesOnEpochBump) {
  Topology t;
  const DeviceId a = t.add_device("a", DeviceRole::kTor, 1, 0);
  const DeviceId b = t.add_device("b", DeviceRole::kLeaf, 2, 0);
  t.add_link(a, b);
  EXPECT_EQ(vec(t.neighbors(a)), std::vector<DeviceId>{b});

  // Growing the expected topology after the CSR cache was built must be
  // reflected by the next neighbors*() call (epoch-keyed rebuild).
  const DeviceId c = t.add_device("c", DeviceRole::kLeaf, 3, 0);
  t.add_link(a, c);
  EXPECT_EQ(vec(t.neighbors(a)), (std::vector<DeviceId>{b, c}));
  EXPECT_EQ(vec(t.neighbors_with_role(a, DeviceRole::kLeaf)),
            (std::vector<DeviceId>{b, c}));
  EXPECT_EQ(vec(t.devices_with_role(DeviceRole::kLeaf)),
            (std::vector<DeviceId>{b, c}));
}

TEST(Topology, AdjacencySpansAreStableAndAllocationFree) {
  Topology t;
  const DeviceId a = t.add_device("a", DeviceRole::kTor, 1, 0);
  const DeviceId b = t.add_device("b", DeviceRole::kLeaf, 2, 0);
  const DeviceId c = t.add_device("c", DeviceRole::kSpine, 3);
  t.add_link(a, b);
  t.add_link(a, c);

  // Repeated calls at the same epoch return views over the same backing
  // storage — the cache is built once and reused, not reallocated.
  const auto first = t.neighbors(a);
  const auto second = t.neighbors(a);
  EXPECT_EQ(first.data(), second.data());
  EXPECT_EQ(first.size(), second.size());
  const auto role_first = t.neighbors_with_role(a, DeviceRole::kLeaf);
  const auto role_second = t.neighbors_with_role(a, DeviceRole::kLeaf);
  EXPECT_EQ(role_first.data(), role_second.data());

  // Fault injection mutates link *state*, not the expected topology: the
  // cache stays valid and spans keep their addresses.
  t.set_link_state(0, LinkState::kDown);
  EXPECT_EQ(t.neighbors(a).data(), first.data());
  t.clear_faults();
}

TEST(Topology, AdjacencyRoleSlicesAreSortedSubsequences) {
  Topology t;
  const DeviceId tor = t.add_device("t", DeviceRole::kTor, 1, 0);
  std::vector<DeviceId> leaves;
  for (int i = 0; i < 5; ++i) {
    leaves.push_back(
        t.add_device("l" + std::to_string(i), DeviceRole::kLeaf, 2, 0));
  }
  const DeviceId spine = t.add_device("s", DeviceRole::kSpine, 3);
  // Link in reverse order; slices must still come out id-sorted.
  t.add_link(tor, spine);
  for (auto it = leaves.rbegin(); it != leaves.rend(); ++it) {
    t.add_link(tor, *it);
  }
  EXPECT_EQ(vec(t.neighbors_with_role(tor, DeviceRole::kLeaf)), leaves);
  const auto all = t.neighbors(tor);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(Topology, CopyAndMoveResetAdjacencyCache) {
  Topology t;
  const DeviceId a = t.add_device("a", DeviceRole::kTor, 1, 0);
  const DeviceId b = t.add_device("b", DeviceRole::kLeaf, 2, 0);
  t.add_link(a, b);
  (void)t.neighbors(a);  // force the cache warm

  const Topology copy = t;
  EXPECT_EQ(vec(copy.neighbors(a)), std::vector<DeviceId>{b});
  // The copy's cache is its own: spans must not alias the original's.
  EXPECT_NE(copy.neighbors(a).data(), t.neighbors(a).data());

  Topology moved = std::move(t);
  EXPECT_EQ(vec(moved.neighbors(a)), std::vector<DeviceId>{b});
  EXPECT_EQ(vec(moved.devices_with_role(DeviceRole::kTor)),
            std::vector<DeviceId>{a});
}

TEST(Topology, EpochTracksExpectedTopologyOnly) {
  Topology t;
  EXPECT_EQ(t.epoch(), 0u);
  const DeviceId a = t.add_device("a", DeviceRole::kTor, 65001, 0);
  const DeviceId b = t.add_device("b", DeviceRole::kLeaf, 65002);
  EXPECT_EQ(t.epoch(), 2u);
  const LinkId link = t.add_link(a, b);
  EXPECT_EQ(t.epoch(), 3u);
  t.add_hosted_prefix(a, net::Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(t.epoch(), 4u);
  t.set_asn(b, 65099);
  EXPECT_EQ(t.epoch(), 5u);

  // State mutations (fault injection, operational drift) must never bump
  // the epoch: contracts ignore current state (§2.4), so plans keyed by
  // the epoch stay valid across them.
  t.set_link_state(link, LinkState::kDown);
  t.set_bgp_state(link, BgpSessionState::kAdminShutdown);
  t.shut_all_sessions_of(a);
  t.clear_faults();
  EXPECT_EQ(t.epoch(), 5u);
}

}  // namespace
}  // namespace dcv::topo
