#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace dcv::topo {
namespace {

Topology two_device_topology() {
  Topology t;
  t.add_device("tor", DeviceRole::kTor, 64500, 0);
  t.add_device("leaf", DeviceRole::kLeaf, 65100, 0);
  t.add_link(0, 1);
  return t;
}

TEST(Topology, AddDeviceAssignsSequentialIds) {
  Topology t;
  EXPECT_EQ(t.add_device("a", DeviceRole::kTor, 1, 0), 0u);
  EXPECT_EQ(t.add_device("b", DeviceRole::kLeaf, 2, 0), 1u);
  EXPECT_EQ(t.device_count(), 2u);
  EXPECT_EQ(t.device(0).name, "a");
  EXPECT_EQ(t.device(1).role, DeviceRole::kLeaf);
}

TEST(Topology, FindDeviceByName) {
  const Topology t = two_device_topology();
  EXPECT_EQ(t.find_device("leaf"), std::optional<DeviceId>(1));
  EXPECT_EQ(t.find_device("nope"), std::nullopt);
}

TEST(Topology, LinksAndNeighbors) {
  const Topology t = two_device_topology();
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.neighbors(0), std::vector<DeviceId>{1});
  EXPECT_EQ(t.neighbors(1), std::vector<DeviceId>{0});
  EXPECT_EQ(t.find_link(0, 1), std::optional<LinkId>(0));
  EXPECT_EQ(t.find_link(1, 0), std::optional<LinkId>(0));
}

TEST(Topology, NeighborsWithRoleFilters) {
  Topology t;
  const auto tor = t.add_device("tor", DeviceRole::kTor, 64500, 0);
  const auto leaf1 = t.add_device("l1", DeviceRole::kLeaf, 65100, 0);
  const auto leaf2 = t.add_device("l2", DeviceRole::kLeaf, 65100, 0);
  const auto spine = t.add_device("s", DeviceRole::kSpine, 65535);
  t.add_link(tor, leaf1);
  t.add_link(tor, leaf2);
  t.add_link(leaf1, spine);
  EXPECT_EQ(t.neighbors_with_role(tor, DeviceRole::kLeaf),
            (std::vector<DeviceId>{leaf1, leaf2}));
  EXPECT_TRUE(t.neighbors_with_role(tor, DeviceRole::kSpine).empty());
  EXPECT_EQ(t.neighbors_with_role(leaf1, DeviceRole::kSpine),
            std::vector<DeviceId>{spine});
}

TEST(Topology, BadLinkEndpointsThrow) {
  Topology t;
  t.add_device("a", DeviceRole::kTor, 1, 0);
  EXPECT_THROW(t.add_link(0, 0), InvalidArgument);
  EXPECT_THROW(t.add_link(0, 5), InvalidArgument);
}

TEST(Topology, BadIdsThrow) {
  const Topology t = two_device_topology();
  EXPECT_THROW((void)t.device(9), InvalidArgument);
  EXPECT_THROW((void)t.link(9), InvalidArgument);
  EXPECT_THROW((void)t.links_of(9), InvalidArgument);
}

TEST(Topology, LinkDownTakesBgpDown) {
  Topology t = two_device_topology();
  t.set_link_state(0, LinkState::kDown);
  EXPECT_EQ(t.link(0).bgp_state, BgpSessionState::kDown);
  EXPECT_FALSE(t.link(0).usable());
  EXPECT_TRUE(t.usable_neighbors(0).empty());
}

TEST(Topology, LinkUpRestoresSessionUnlessAdminShut) {
  Topology t = two_device_topology();
  t.set_link_state(0, LinkState::kDown);
  t.set_link_state(0, LinkState::kUp);
  EXPECT_TRUE(t.link(0).usable());

  t.set_bgp_state(0, BgpSessionState::kAdminShutdown);
  t.set_link_state(0, LinkState::kDown);
  t.set_link_state(0, LinkState::kUp);
  EXPECT_EQ(t.link(0).bgp_state, BgpSessionState::kAdminShutdown);
  EXPECT_FALSE(t.link(0).usable());
}

TEST(Topology, AdminShutAloneMakesLinkUnusable) {
  Topology t = two_device_topology();
  t.set_bgp_state(0, BgpSessionState::kAdminShutdown);
  EXPECT_EQ(t.link(0).link_state, LinkState::kUp);
  EXPECT_FALSE(t.link(0).usable());
}

TEST(Topology, ShutAllSessionsOfDevice) {
  Topology t;
  const auto a = t.add_device("a", DeviceRole::kLeaf, 1, 0);
  const auto b = t.add_device("b", DeviceRole::kSpine, 2);
  const auto c = t.add_device("c", DeviceRole::kSpine, 2);
  t.add_link(a, b);
  t.add_link(a, c);
  t.shut_all_sessions_of(a);
  EXPECT_FALSE(t.link(0).usable());
  EXPECT_FALSE(t.link(1).usable());
}

TEST(Topology, ClearFaultsRestoresEverything) {
  Topology t = two_device_topology();
  t.set_link_state(0, LinkState::kDown);
  t.set_bgp_state(0, BgpSessionState::kAdminShutdown);
  t.clear_faults();
  EXPECT_TRUE(t.link(0).usable());
}

TEST(Topology, ClusterQueries) {
  Topology t;
  t.add_device("t0", DeviceRole::kTor, 1, 0);
  t.add_device("t1", DeviceRole::kTor, 1, 1);
  t.add_device("l0", DeviceRole::kLeaf, 2, 0);
  t.add_device("s", DeviceRole::kSpine, 3);
  EXPECT_EQ(t.cluster_count(), 2u);
  EXPECT_EQ(t.tors_in_cluster(0), std::vector<DeviceId>{0});
  EXPECT_EQ(t.tors_in_cluster(1), std::vector<DeviceId>{1});
  EXPECT_EQ(t.leaves_in_cluster(0), std::vector<DeviceId>{2});
  EXPECT_EQ(t.devices_with_role(DeviceRole::kSpine),
            std::vector<DeviceId>{3});
}

TEST(Topology, HostedPrefixes) {
  Topology t = two_device_topology();
  t.add_hosted_prefix(0, net::Prefix::parse("10.0.0.0/24"));
  ASSERT_EQ(t.device(0).hosted_prefixes.size(), 1u);
  EXPECT_EQ(t.device(0).hosted_prefixes[0],
            net::Prefix::parse("10.0.0.0/24"));
}

TEST(Topology, SetAsn) {
  Topology t = two_device_topology();
  t.set_asn(1, 65199);
  EXPECT_EQ(t.device(1).asn, 65199u);
}

TEST(Topology, DatacenterMembership) {
  Topology t;
  t.add_device("a", DeviceRole::kSpine, 1, kNoCluster, 2);
  t.add_device("r", DeviceRole::kRegionalSpine, 1, kNoCluster,
               kNoDatacenter);
  EXPECT_EQ(t.device(0).datacenter, 2u);
  EXPECT_EQ(t.device(1).datacenter, kNoDatacenter);
}

TEST(Topology, EpochTracksExpectedTopologyOnly) {
  Topology t;
  EXPECT_EQ(t.epoch(), 0u);
  const DeviceId a = t.add_device("a", DeviceRole::kTor, 65001, 0);
  const DeviceId b = t.add_device("b", DeviceRole::kLeaf, 65002);
  EXPECT_EQ(t.epoch(), 2u);
  const LinkId link = t.add_link(a, b);
  EXPECT_EQ(t.epoch(), 3u);
  t.add_hosted_prefix(a, net::Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(t.epoch(), 4u);
  t.set_asn(b, 65099);
  EXPECT_EQ(t.epoch(), 5u);

  // State mutations (fault injection, operational drift) must never bump
  // the epoch: contracts ignore current state (§2.4), so plans keyed by
  // the epoch stay valid across them.
  t.set_link_state(link, LinkState::kDown);
  t.set_bgp_state(link, BgpSessionState::kAdminShutdown);
  t.shut_all_sessions_of(a);
  t.clear_faults();
  EXPECT_EQ(t.epoch(), 5u);
}

}  // namespace
}  // namespace dcv::topo
