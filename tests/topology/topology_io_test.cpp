#include "topology/topology_io.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "topology/clos_builder.hpp"

namespace dcv::topo {
namespace {

void expect_same(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.device_count(), b.device_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (DeviceId id = 0; id < a.device_count(); ++id) {
    const Device& da = a.device(id);
    const Device& db = b.device(id);
    EXPECT_EQ(da.name, db.name);
    EXPECT_EQ(da.role, db.role);
    EXPECT_EQ(da.asn, db.asn);
    EXPECT_EQ(da.cluster, db.cluster);
    EXPECT_EQ(da.datacenter, db.datacenter);
    EXPECT_EQ(da.hosted_prefixes, db.hosted_prefixes);
  }
  for (LinkId id = 0; id < a.link_count(); ++id) {
    EXPECT_EQ(a.link(id).a, b.link(id).a);
    EXPECT_EQ(a.link(id).b, b.link(id).b);
    EXPECT_EQ(a.link(id).link_state, b.link(id).link_state);
    EXPECT_EQ(a.link(id).bgp_state, b.link(id).bgp_state);
  }
}

TEST(TopologyIo, RoundTripFigure3) {
  const Topology original = build_figure3();
  expect_same(original, parse_topology(write_topology(original)));
}

TEST(TopologyIo, RoundTripRegionWithState) {
  Topology original = build_region(
      ClosParams{.clusters = 2, .tors_per_cluster = 2}, 2);
  original.set_link_state(0, LinkState::kDown);
  original.set_bgp_state(3, BgpSessionState::kAdminShutdown);
  expect_same(original, parse_topology(write_topology(original)));
}

TEST(TopologyIo, ParsesHandwrittenFile) {
  const Topology t = parse_topology(
      "# a tiny fabric\n"
      "device tor0 tor 64500 cluster=0\n"
      "device leaf0 leaf 65100 cluster=0\n"
      "device spine0 spine 65535\n"
      "device rh0 regional 63000\n"
      "link tor0 leaf0\n"
      "link leaf0 spine0\n"
      "link spine0 rh0 shutdown\n"
      "prefix tor0 10.0.0.0/24\n");
  EXPECT_EQ(t.device_count(), 4u);
  EXPECT_EQ(t.link_count(), 3u);
  EXPECT_EQ(t.device(0).role, DeviceRole::kTor);
  EXPECT_EQ(t.device(3).datacenter, kNoDatacenter);
  EXPECT_EQ(t.link(2).bgp_state, BgpSessionState::kAdminShutdown);
  ASSERT_EQ(t.device(0).hosted_prefixes.size(), 1u);
}

class TopologyIoErrors : public testing::TestWithParam<const char*> {};

TEST_P(TopologyIoErrors, Rejects) {
  // Malformed text raises ParseError; structurally invalid input (e.g. a
  // self link) surfaces the model's InvalidArgument — both are dcv::Error.
  EXPECT_THROW(parse_topology(GetParam()), dcv::Error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, TopologyIoErrors,
    testing::Values("device a widget 1\n",             // bad role
                    "device a tor x\n",                // bad asn
                    "device a tor 1 cluster=x\n",      // bad cluster
                    "device a tor 1 color=red\n",      // unknown option
                    "device a tor 1\ndevice a tor 2\n",  // duplicate name
                    "link a b\n",                      // unknown devices
                    "device a tor 1\nlink a a\n",      // self link
                    "frobnicate\n",                    // unknown keyword
                    "device a tor 1\nlink a b down\n",  // unknown device b
                    "device a tor 1\nprefix a banana\n"));  // bad prefix

TEST(TopologyIo, CommentsAndBlankLinesIgnored) {
  const Topology t = parse_topology("\n# nothing\n\n  \n");
  EXPECT_EQ(t.device_count(), 0u);
}

}  // namespace
}  // namespace dcv::topo
