#include "topology/clos_builder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/error.hpp"

namespace dcv::topo {
namespace {

TEST(ClosBuilder, DeviceCountMatchesFormula) {
  const ClosParams p{.clusters = 3,
                     .tors_per_cluster = 5,
                     .leaves_per_cluster = 4,
                     .spines_per_plane = 2,
                     .regional_spines = 4};
  const Topology t = build_clos(p);
  EXPECT_EQ(t.device_count(), p.device_count());
  EXPECT_EQ(t.devices_with_role(DeviceRole::kTor).size(), 15u);
  EXPECT_EQ(t.devices_with_role(DeviceRole::kLeaf).size(), 12u);
  EXPECT_EQ(t.devices_with_role(DeviceRole::kSpine).size(), 8u);
  EXPECT_EQ(t.devices_with_role(DeviceRole::kRegionalSpine).size(), 4u);
  EXPECT_EQ(t.cluster_count(), 3u);
}

TEST(ClosBuilder, TorConnectsToAllClusterLeaves) {
  const Topology t = build_clos(ClosParams{});
  for (const DeviceId tor : t.devices_with_role(DeviceRole::kTor)) {
    const auto leaves = t.neighbors_with_role(tor, DeviceRole::kLeaf);
    EXPECT_EQ(leaves.size(), 4u);
    for (const DeviceId leaf : leaves) {
      EXPECT_EQ(t.device(leaf).cluster, t.device(tor).cluster);
    }
  }
}

TEST(ClosBuilder, LeafConnectsToItsPlaneOnly) {
  const ClosParams p{.clusters = 2,
                     .tors_per_cluster = 2,
                     .leaves_per_cluster = 3,
                     .spines_per_plane = 2,
                     .regional_spines = 4};
  const Topology t = build_clos(p);
  for (const DeviceId leaf : t.devices_with_role(DeviceRole::kLeaf)) {
    EXPECT_EQ(t.neighbors_with_role(leaf, DeviceRole::kSpine).size(), 2u);
  }
  const auto spines_of = [&](const char* name) {
    const auto adj =
        t.neighbors_with_role(*t.find_device(name), DeviceRole::kSpine);
    return std::vector<DeviceId>(adj.begin(), adj.end());
  };
  EXPECT_EQ(spines_of("T1-0-0"), spines_of("T1-1-0"));
  EXPECT_NE(spines_of("T1-0-0"), spines_of("T1-0-1"));
}

TEST(ClosBuilder, EverySpineHasRegionalUplinks) {
  const Topology t = build_clos(ClosParams{});
  for (const DeviceId spine : t.devices_with_role(DeviceRole::kSpine)) {
    EXPECT_EQ(
        t.neighbors_with_role(spine, DeviceRole::kRegionalSpine).size(),
        2u);
  }
}

TEST(ClosBuilder, AsnSchemeMatchesPaper) {
  const ClosParams p{.clusters = 2, .tors_per_cluster = 3};
  const Topology t = build_clos(p);
  std::set<Asn> spine_asns;
  for (const DeviceId s : t.devices_with_role(DeviceRole::kSpine)) {
    spine_asns.insert(t.device(s).asn);
  }
  EXPECT_EQ(spine_asns.size(), 1u);
  std::set<Asn> leaf_asns_c0, leaf_asns_c1;
  for (const DeviceId l : t.leaves_in_cluster(0)) {
    leaf_asns_c0.insert(t.device(l).asn);
  }
  for (const DeviceId l : t.leaves_in_cluster(1)) {
    leaf_asns_c1.insert(t.device(l).asn);
  }
  EXPECT_EQ(leaf_asns_c0.size(), 1u);
  EXPECT_EQ(leaf_asns_c1.size(), 1u);
  EXPECT_NE(*leaf_asns_c0.begin(), *leaf_asns_c1.begin());
  std::vector<Asn> tors_c0, tors_c1;
  for (const DeviceId d : t.tors_in_cluster(0)) {
    tors_c0.push_back(t.device(d).asn);
  }
  for (const DeviceId d : t.tors_in_cluster(1)) {
    tors_c1.push_back(t.device(d).asn);
  }
  EXPECT_EQ(std::set<Asn>(tors_c0.begin(), tors_c0.end()).size(),
            tors_c0.size());
  EXPECT_EQ(tors_c0, tors_c1);
}

TEST(ClosBuilder, HostedPrefixesAreUniqueAndSized) {
  const ClosParams p{.clusters = 2,
                     .tors_per_cluster = 4,
                     .prefixes_per_tor = 3};
  const Topology t = build_clos(p);
  std::set<net::Prefix> seen;
  for (const DeviceId tor : t.devices_with_role(DeviceRole::kTor)) {
    EXPECT_EQ(t.device(tor).hosted_prefixes.size(), 3u);
    for (const net::Prefix& prefix : t.device(tor).hosted_prefixes) {
      EXPECT_EQ(prefix.length(), 24);
      EXPECT_TRUE(net::Prefix::parse("10.0.0.0/8").contains(prefix));
      EXPECT_TRUE(seen.insert(prefix).second) << prefix.to_string();
    }
  }
}

TEST(ClosBuilder, RejectsBadParams) {
  EXPECT_THROW(build_clos(ClosParams{.clusters = 0}), InvalidArgument);
  EXPECT_THROW(build_clos(ClosParams{.regional_links_per_spine = 0}),
               InvalidArgument);
  EXPECT_THROW(build_clos(ClosParams{.regional_links_per_spine = 99}),
               InvalidArgument);
  EXPECT_THROW(build_clos(ClosParams{.prefix_length = 4}), InvalidArgument);
}

TEST(ClosBuilder, RegionSharesRegionalLayer) {
  const ClosParams p{.clusters = 2, .tors_per_cluster = 2};
  const Topology t = build_region(p, 2);
  EXPECT_EQ(t.devices_with_role(DeviceRole::kRegionalSpine).size(),
            p.regional_spines);
  EXPECT_EQ(t.devices_with_role(DeviceRole::kSpine).size(),
            2 * p.spine_count());
  EXPECT_EQ(t.cluster_count(), 4u);
  EXPECT_EQ(t.device(*t.find_device("DC0-T0-0-0")).datacenter, 0u);
  EXPECT_EQ(t.device(*t.find_device("DC1-T0-2-0")).datacenter, 1u);
  EXPECT_EQ(t.device(*t.find_device("RH-0")).datacenter, kNoDatacenter);
  EXPECT_EQ(t.device(*t.find_device("DC0-T2-0-0")).asn,
            t.device(*t.find_device("DC1-T2-0-0")).asn);
}

TEST(Figure3, ReproducesThePaperTopology) {
  const Topology t = build_figure3();
  EXPECT_EQ(t.device_count(), 20u);
  const auto d1 = *t.find_device("D1");
  const auto r = t.neighbors_with_role(d1, DeviceRole::kRegionalSpine);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(t.device(r[0]).name, "R1");
  EXPECT_EQ(t.device(r[1]).name, "R3");
  const auto a1 = *t.find_device("A1");
  const auto a1_spines = t.neighbors_with_role(a1, DeviceRole::kSpine);
  ASSERT_EQ(a1_spines.size(), 1u);
  EXPECT_EQ(t.device(a1_spines[0]).name, "D1");
  const auto tor1 = *t.find_device("ToR1");
  EXPECT_EQ(t.neighbors_with_role(tor1, DeviceRole::kLeaf).size(), 4u);
  EXPECT_EQ(t.device(tor1).cluster, 0u);
  EXPECT_EQ(t.device(*t.find_device("ToR3")).cluster, 1u);
}

TEST(Figure3, FailuresMatchThePaper) {
  Topology t = build_figure3();
  apply_figure3_failures(t);
  const auto usable_leaf_names = [&](const char* tor) {
    std::vector<std::string> names;
    for (const DeviceId n : t.usable_neighbors(*t.find_device(tor))) {
      names.push_back(t.device(n).name);
    }
    return names;
  };
  EXPECT_EQ(usable_leaf_names("ToR1"),
            (std::vector<std::string>{"A1", "A2"}));
  EXPECT_EQ(usable_leaf_names("ToR2"),
            (std::vector<std::string>{"A3", "A4"}));
  EXPECT_EQ(usable_leaf_names("ToR3").size(), 4u);
}

}  // namespace
}  // namespace dcv::topo
