#include "secguru/firewall.hpp"

#include <gtest/gtest.h>

namespace dcv::secguru {
namespace {

VmInstance make_vm() {
  return VmInstance{.name = "vm0", .vnet = net::Prefix::parse("10.37.0.0/16")};
}

net::PacketHeader to(const char* dst) {
  return net::PacketHeader{.src_ip = net::Ipv4Address::parse("10.37.0.5"),
                           .src_port = 1000,
                           .dst_ip = net::Ipv4Address::parse(dst),
                           .dst_port = 443,
                           .protocol = 6};
}

TEST(Firewall, TemplateUsesDenyOverrides) {
  const Policy fw = instantiate_common_firewall(make_vm());
  EXPECT_EQ(fw.semantics, PolicySemantics::kDenyOverrides);
  EXPECT_GT(fw.rules.size(), 4u);
}

TEST(Firewall, ConcreteBehaviourMatchesIntent) {
  const Policy fw = instantiate_common_firewall(make_vm());
  // Guest -> infrastructure: denied.
  EXPECT_FALSE(evaluate(fw, to("168.63.129.16")).allowed);
  EXPECT_FALSE(evaluate(fw, to("169.254.169.254")).allowed);
  EXPECT_FALSE(evaluate(fw, to("100.64.3.4")).allowed);
  // Guest -> another tenant: denied.
  EXPECT_FALSE(evaluate(fw, to("10.99.0.1")).allowed);
  // Guest -> own vnet: allowed.
  EXPECT_TRUE(evaluate(fw, to("10.37.44.5")).allowed);
  // Guest -> Internet: allowed.
  EXPECT_TRUE(evaluate(fw, to("8.8.8.8")).allowed);
}

TEST(Firewall, GatePassesCorrectTemplate) {
  Engine engine;
  const FirewallDeploymentGate gate(engine);
  const VmInstance vm = make_vm();
  const auto result = gate.validate(vm, instantiate_common_firewall(vm));
  EXPECT_TRUE(result.deployable) << (result.report.failures.empty()
                                         ? ""
                                         : result.report.failures[0]
                                               .contract_name);
}

TEST(Firewall, GateCatchesOmittedInfrastructureIsolation) {
  // The §3.5 bug class: "bugs in the automation or policy changes have
  // resulted in restrictions being omitted in deployments."
  Engine engine;
  const FirewallDeploymentGate gate(engine);
  const VmInstance vm = make_vm();
  const auto result = gate.validate(
      vm, instantiate_common_firewall(
              vm, {}, TemplateBugs{.omit_infrastructure_isolation = true}));
  EXPECT_FALSE(result.deployable);
  ASSERT_FALSE(result.report.failures.empty());
  EXPECT_NE(result.report.failures[0].contract_name.find(
                "no-infrastructure-access"),
            std::string::npos);
}

TEST(Firewall, GateCatchesOmittedTenantIsolation) {
  Engine engine;
  const FirewallDeploymentGate gate(engine);
  const VmInstance vm = make_vm();
  const auto result = gate.validate(
      vm, instantiate_common_firewall(
              vm, {}, TemplateBugs{.omit_tenant_isolation = true}));
  EXPECT_FALSE(result.deployable);
  bool found = false;
  for (const auto& failure : result.report.failures) {
    if (failure.contract_name.find("tenant-isolation") !=
        std::string::npos) {
      found = true;
      ASSERT_TRUE(failure.witness.has_value());
      // The witness is a concrete cross-tenant packet that slips through.
      EXPECT_TRUE(net::Prefix::parse("10.0.0.0/8")
                      .contains(failure.witness->dst_ip));
      EXPECT_FALSE(vm.vnet.contains(failure.witness->dst_ip));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Firewall, ContractsCoverBothDirectionsOfIntent) {
  const auto suite = common_restriction_contracts(make_vm());
  std::size_t allows = 0, denies = 0;
  for (const auto& contract : suite.contracts) {
    (contract.expect == Expectation::kAllow ? allows : denies) += 1;
  }
  EXPECT_GE(denies, 3u);   // infra ranges + tenant slices
  EXPECT_EQ(allows, 2u);   // intra-vnet + internet
}

TEST(Firewall, TenantDecompositionExcludesOwnVnet) {
  const Policy fw = instantiate_common_firewall(make_vm());
  for (const Rule& rule : fw.rules) {
    if (rule.action == Action::kDeny &&
        rule.comment == "tenant isolation") {
      EXPECT_FALSE(rule.dst.overlaps(make_vm().vnet)) << rule.to_string();
    }
  }
}

}  // namespace
}  // namespace dcv::secguru
