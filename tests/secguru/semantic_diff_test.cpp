#include <gtest/gtest.h>

#include "secguru/acl_parser.hpp"
#include "secguru/engine.hpp"

namespace dcv::secguru {
namespace {

TEST(SemanticDiff, IdenticalPoliciesHaveNoWitnesses) {
  Engine engine;
  const Policy acl = parse_acl(
      "deny ip 10.0.0.0/8 any\npermit tcp any 1.0.0.0/24 eq 80\n");
  EXPECT_TRUE(engine.semantic_diff(acl, acl).empty());
}

TEST(SemanticDiff, ReorderedDisjointRulesAreEquivalent) {
  Engine engine;
  const Policy a = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\npermit udp any 2.0.0.0/24 eq 53\n");
  const Policy b = parse_acl(
      "permit udp any 2.0.0.0/24 eq 53\npermit tcp any 1.0.0.0/24 eq 80\n");
  EXPECT_TRUE(engine.semantic_diff(a, b).empty());
}

TEST(SemanticDiff, WitnessCarriesBothVerdictsAndRules) {
  Engine engine;
  const Policy before = parse_acl("permit tcp any 1.0.0.0/24 eq 80\n");
  const Policy after = parse_acl("permit tcp any 1.0.0.0/25 eq 80\n");
  const auto witnesses = engine.semantic_diff(before, after);
  ASSERT_EQ(witnesses.size(), 1u);
  const auto& w = witnesses[0];
  // The difference lives in the upper /25: before allows, after denies.
  EXPECT_TRUE(w.before_allowed);
  EXPECT_FALSE(w.after_allowed);
  EXPECT_EQ(w.before_rule, 0u);
  EXPECT_EQ(w.after_rule, std::nullopt);  // implicit default deny
  EXPECT_TRUE(net::Prefix::parse("1.0.0.128/25").contains(w.packet.dst_ip));
  // Witness verdicts are concretely true.
  EXPECT_EQ(evaluate(before, w.packet).allowed, w.before_allowed);
  EXPECT_EQ(evaluate(after, w.packet).allowed, w.after_allowed);
}

TEST(SemanticDiff, EnumeratesDistinctRulePairInteractions) {
  Engine engine;
  // Two independent changes: a dropped permit and a new deny carving a
  // hole in a surviving permit.
  const Policy before = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "permit udp any 2.0.0.0/24 eq 53\n");
  const Policy after = parse_acl(
      "deny tcp any 1.0.0.64/26 eq 80\n"
      "permit tcp any 1.0.0.0/24 eq 80\n");
  const auto witnesses = engine.semantic_diff(before, after);
  // Differences: (a) the carved /26 hole, (b) the lost UDP permit. Each
  // appears as its own witness, not max_witnesses repetitions of one.
  ASSERT_GE(witnesses.size(), 2u);
  bool saw_hole = false;
  bool saw_udp = false;
  for (const auto& w : witnesses) {
    if (w.packet.protocol == 6 &&
        net::Prefix::parse("1.0.0.64/26").contains(w.packet.dst_ip)) {
      saw_hole = true;
      EXPECT_TRUE(w.before_allowed);
      EXPECT_FALSE(w.after_allowed);
    }
    if (w.packet.protocol == 17) {
      saw_udp = true;
      EXPECT_TRUE(w.before_allowed);
      EXPECT_FALSE(w.after_allowed);
    }
  }
  EXPECT_TRUE(saw_hole);
  EXPECT_TRUE(saw_udp);
}

TEST(SemanticDiff, RespectsWitnessCap) {
  Engine engine;
  // Many independent differences; the cap bounds the enumeration.
  Policy before{.name = "b",
                .semantics = PolicySemantics::kFirstApplicable,
                .rules = {}};
  for (int i = 0; i < 12; ++i) {
    before.rules.push_back(Rule{
        .action = Action::kPermit,
        .protocol = net::ProtocolSpec::tcp(),
        .src = net::Prefix::default_route(),
        .src_ports = net::PortRange::any(),
        .dst = net::Prefix(net::Ipv4Address::from_octets(
                               1, 0, static_cast<std::uint8_t>(i), 0),
                           24),
        .dst_ports = net::PortRange::exactly(80)});
  }
  const Policy after{.name = "a",
                     .semantics = PolicySemantics::kFirstApplicable,
                     .rules = {}};
  const auto witnesses = engine.semantic_diff(before, after, 5);
  EXPECT_EQ(witnesses.size(), 5u);
}

TEST(SemanticDiff, TerminatesOnDuplicateRules) {
  Engine engine;
  // Duplicate rules mean several rule indices decide identical regions —
  // an exclusion strategy keyed on rule pairs must still make progress
  // (the first copy decides under first-applicable, so the duplicates can
  // never appear as deciding rules and the loop cannot cycle).
  const Policy before = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "permit tcp any 1.0.0.0/24 eq 80\n");
  const Policy after = parse_acl("deny tcp any 1.0.0.0/24 eq 80\n");
  const auto witnesses = engine.semantic_diff(before, after, 64);
  ASSERT_FALSE(witnesses.empty());
  for (const auto& w : witnesses) {
    EXPECT_EQ(w.before_rule, 0u);
    EXPECT_TRUE(w.before_allowed);
    EXPECT_FALSE(w.after_allowed);
  }
}

TEST(SemanticDiff, TerminatesOnOverlappingRegions) {
  Engine engine;
  // Overlapping filters decide interleaved fragments; a generous cap must
  // not loop — once every deciding rule pair is excluded the query goes
  // unsat even though far fewer than max_witnesses were produced.
  const Policy before = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "permit tcp any 1.0.0.0/25 eq 80\n"
      "permit tcp any 1.0.0.128/25 eq 80\n"
      "permit udp any 1.0.0.0/24 eq 53\n");
  const Policy after = parse_acl(
      "deny tcp any 1.0.0.0/26 eq 80\n"
      "permit tcp any 1.0.0.0/24 eq 80\n");
  const auto witnesses = engine.semantic_diff(before, after, 1000);
  ASSERT_FALSE(witnesses.empty());
  EXPECT_LT(witnesses.size(), 1000u);
  for (const auto& w : witnesses) {
    EXPECT_EQ(evaluate(before, w.packet).allowed, w.before_allowed);
    EXPECT_EQ(evaluate(after, w.packet).allowed, w.after_allowed);
    EXPECT_NE(w.before_allowed, w.after_allowed);
  }
}

TEST(SemanticDiff, WitnessPacketsPairwiseDistinct) {
  Engine engine;
  const Policy before = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "permit udp any 2.0.0.0/24 eq 53\n"
      "permit ip 3.0.0.0/24 any\n");
  const Policy after = parse_acl("permit tcp any 1.0.0.0/25 eq 80\n");
  const auto witnesses = engine.semantic_diff(before, after, 16);
  ASSERT_GE(witnesses.size(), 2u);
  for (std::size_t i = 0; i < witnesses.size(); ++i) {
    for (std::size_t j = i + 1; j < witnesses.size(); ++j) {
      EXPECT_FALSE(witnesses[i].packet == witnesses[j].packet)
          << "witness " << i << " and " << j << " are the same packet: "
          << witnesses[i].packet.to_string();
    }
  }
}

TEST(SemanticDiff, EmptyPolicies) {
  Engine engine;
  const Policy empty{.name = "empty",
                     .semantics = PolicySemantics::kFirstApplicable,
                     .rules = {}};
  // Empty vs empty: equivalent (everything default-denied).
  EXPECT_TRUE(engine.semantic_diff(empty, empty).empty());
  // Empty vs one permit: exactly one interaction (default deny vs rule 0).
  const Policy one = parse_acl("permit tcp any 1.0.0.0/24 eq 80\n");
  const auto witnesses = engine.semantic_diff(empty, one, 16);
  ASSERT_EQ(witnesses.size(), 1u);
  EXPECT_FALSE(witnesses[0].before_allowed);
  EXPECT_TRUE(witnesses[0].after_allowed);
  EXPECT_EQ(witnesses[0].before_rule, std::nullopt);
  EXPECT_EQ(witnesses[0].after_rule, 0u);
}

TEST(SemanticDiff, DenyOverridesAdversarialPairTerminates) {
  Engine engine;
  // Under deny-overrides the exclusion region is the deciding rule's raw
  // filter; overlapping permits plus a carving deny stress that the loop
  // still converges and every witness is concretely correct.
  Policy before = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "permit tcp any 1.0.0.0/25 eq 80\n");
  Policy after = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "permit tcp any 1.0.0.0/25 eq 80\n"
      "deny tcp any 1.0.0.64/26 eq 80\n");
  before.semantics = PolicySemantics::kDenyOverrides;
  after.semantics = PolicySemantics::kDenyOverrides;
  const auto witnesses = engine.semantic_diff(before, after, 256);
  ASSERT_FALSE(witnesses.empty());
  EXPECT_LT(witnesses.size(), 256u);
  for (const auto& w : witnesses) {
    EXPECT_TRUE(net::Prefix::parse("1.0.0.64/26").contains(w.packet.dst_ip));
    EXPECT_TRUE(w.before_allowed);
    EXPECT_FALSE(w.after_allowed);
  }
}

TEST(SemanticDiff, DenyOverridesPoliciesSupported) {
  Engine engine;
  Policy before = parse_acl("permit ip any 10.0.0.0/8\n");
  Policy after = parse_acl(
      "permit ip any 10.0.0.0/8\ndeny ip any 10.1.0.0/16\n");
  before.semantics = PolicySemantics::kDenyOverrides;
  after.semantics = PolicySemantics::kDenyOverrides;
  const auto witnesses = engine.semantic_diff(before, after);
  ASSERT_FALSE(witnesses.empty());
  EXPECT_TRUE(
      net::Prefix::parse("10.1.0.0/16").contains(witnesses[0].packet.dst_ip));
}

}  // namespace
}  // namespace dcv::secguru
