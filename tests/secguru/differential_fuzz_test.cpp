// Seeded differential fuzzing of the concrete evaluator against the Z3
// encoding: secguru::evaluate() and smt's policy_predicate must agree on
// every packet, under both combination conventions. The Z3 side is driven
// through the public Engine API with point contracts — a contract whose
// filter is a single packet (host /32 sources and destinations, exact
// ports, one protocol) expecting kAllow holds iff the policy admits that
// packet.
//
// Packets are sampled adversarially at rule boundaries (interval endpoints
// and their off-by-one neighbors, blocked-port edges, protocol wildcard
// vs. exact numbers) plus uniformly at random, which is exactly where
// range-endpoint, wildcard, and default-deny divergences would hide.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "net/interval.hpp"
#include "secguru/engine.hpp"
#include "secguru/rule.hpp"

namespace dcv::secguru {
namespace {

/// A contract matching exactly `packet`, expecting it to be admitted.
ConnectivityContract point_contract(const net::PacketHeader& packet) {
  return ConnectivityContract{
      .name = "point",
      .expect = Expectation::kAllow,
      .protocol = net::ProtocolSpec(packet.protocol),
      .src = net::Prefix(packet.src_ip, 32),
      .src_ports = net::PortRange::exactly(packet.src_port),
      .dst = net::Prefix(packet.dst_ip, 32),
      .dst_ports = net::PortRange::exactly(packet.dst_port)};
}

/// The Z3 oracle: does the symbolic policy predicate admit `packet`?
bool z3_allows(Engine& engine, const Policy& policy,
               const net::PacketHeader& packet) {
  // The point contract holds iff every packet it covers — exactly one —
  // is admitted by P(x).
  return engine.check(policy, point_contract(packet)).holds;
}

/// Interesting coordinates for one dimension: every rule endpoint and its
/// off-by-one neighbors (clamped), so samples land on both sides of every
/// interval boundary in the policy.
template <typename T, typename U>
void add_boundaries(std::vector<T>& out, U lo, U hi, U min, U max) {
  out.push_back(static_cast<T>(lo));
  out.push_back(static_cast<T>(hi));
  if (lo > min) out.push_back(static_cast<T>(lo - 1));
  if (hi < max) out.push_back(static_cast<T>(hi + 1));
}

struct CandidatePools {
  std::vector<std::uint32_t> src_ips;
  std::vector<std::uint32_t> dst_ips;
  std::vector<std::uint16_t> src_ports;
  std::vector<std::uint16_t> dst_ports;
  std::vector<std::uint8_t> protocols;
};

CandidatePools pools_for(const Policy& policy) {
  CandidatePools pools;
  pools.protocols = {0, 1, 6, 17, 255};
  pools.src_ports = {0, 0xFFFF};
  pools.dst_ports = {0, 0xFFFF};
  for (const Rule& rule : policy.rules) {
    const auto src = net::AddressInterval::from_prefix(rule.src);
    const auto dst = net::AddressInterval::from_prefix(rule.dst);
    add_boundaries(pools.src_ips, src.lo.value(), src.hi.value(), 0u,
                   0xFFFFFFFFu);
    add_boundaries(pools.dst_ips, dst.lo.value(), dst.hi.value(), 0u,
                   0xFFFFFFFFu);
    add_boundaries(pools.src_ports, rule.src_ports.lo, rule.src_ports.hi,
                   std::uint16_t{0}, std::uint16_t{0xFFFF});
    add_boundaries(pools.dst_ports, rule.dst_ports.lo, rule.dst_ports.hi,
                   std::uint16_t{0}, std::uint16_t{0xFFFF});
    if (rule.protocol.number) {
      add_boundaries(pools.protocols, *rule.protocol.number,
                     *rule.protocol.number, std::uint8_t{0},
                     std::uint8_t{0xFF});
    }
  }
  return pools;
}

Policy random_policy(std::mt19937_64& rng, PolicySemantics semantics,
                     int rule_count) {
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(0, 32);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> pick(0, 5);
  std::uniform_int_distribution<std::uint16_t> port;
  constexpr std::uint8_t kProtocols[] = {1, 6, 17, 47};

  Policy policy{.name = "fuzz", .semantics = semantics, .rules = {}};
  for (int i = 0; i < rule_count; ++i) {
    const auto ports = [&]() -> net::PortRange {
      switch (pick(rng)) {
        case 0:
          return net::PortRange::any();
        case 1:
          return net::PortRange::exactly(port(rng));
        default: {
          const std::uint16_t a = port(rng);
          const std::uint16_t b = port(rng);
          return net::PortRange(std::min(a, b), std::max(a, b));
        }
      }
    };
    policy.rules.push_back(Rule{
        .action = coin(rng) == 0 ? Action::kPermit : Action::kDeny,
        .protocol = pick(rng) < 2
                        ? net::ProtocolSpec::any()
                        : net::ProtocolSpec(kProtocols[pick(rng) % 4]),
        .src = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
        .src_ports = ports(),
        .dst = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
        .dst_ports = ports()});
  }
  return policy;
}

TEST(DifferentialFuzz, EvaluateAgreesWithZ3EncodingOnBothSemantics) {
  Engine engine;
  std::mt19937_64 rng(20190823);  // SIGCOMM'19; fixed for reproducibility
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<std::uint16_t> port;
  std::uniform_int_distribution<int> rule_count(0, 10);  // incl. empty
  std::size_t cases = 0;

  for (int trial = 0; trial < 50; ++trial) {
    for (const PolicySemantics semantics :
         {PolicySemantics::kFirstApplicable,
          PolicySemantics::kDenyOverrides}) {
      const Policy policy = random_policy(rng, semantics, rule_count(rng));
      const CandidatePools pools = pools_for(policy);
      const auto pick_from = [&](const auto& pool, auto fallback) {
        if (pool.empty()) return fallback;
        std::uniform_int_distribution<std::size_t> idx(0, pool.size() - 1);
        return pool[idx(rng)];
      };

      for (int sample = 0; sample < 22; ++sample) {
        // Three in four packets from boundary pools, the rest uniform.
        const bool boundary = sample % 4 != 3;
        const net::PacketHeader packet =
            boundary
                ? net::PacketHeader{
                      .src_ip = net::Ipv4Address(
                          pick_from(pools.src_ips, addr(rng))),
                      .src_port = pick_from(pools.src_ports, port(rng)),
                      .dst_ip = net::Ipv4Address(
                          pick_from(pools.dst_ips, addr(rng))),
                      .dst_port = pick_from(pools.dst_ports, port(rng)),
                      .protocol = pick_from(pools.protocols,
                                            std::uint8_t{6})}
                : net::PacketHeader{
                      .src_ip = net::Ipv4Address(addr(rng)),
                      .src_port = port(rng),
                      .dst_ip = net::Ipv4Address(addr(rng)),
                      .dst_port = port(rng),
                      .protocol = static_cast<std::uint8_t>(addr(rng))};

        const Decision concrete = evaluate(policy, packet);
        const bool symbolic = z3_allows(engine, policy, packet);
        ++cases;
        ASSERT_EQ(concrete.allowed, symbolic)
            << "divergence on "
            << (semantics == PolicySemantics::kFirstApplicable
                    ? "first-applicable"
                    : "deny-overrides")
            << " policy (trial " << trial << "), packet "
            << packet.to_string() << ", concrete rule "
            << (concrete.rule_index
                    ? std::to_string(*concrete.rule_index)
                    : std::string("default-deny"));
      }
    }
  }
  // The acceptance bar: at least 2000 randomized agreement cases.
  EXPECT_GE(cases, 2000u);
}

TEST(DifferentialFuzz, HandCraftedEdgeCases) {
  Engine engine;
  // Regression pins for the classic divergence spots: range endpoints,
  // the protocol wildcard, and default deny on the empty policy.
  const auto check_all = [&](Policy policy) {
    for (const PolicySemantics semantics :
         {PolicySemantics::kFirstApplicable,
          PolicySemantics::kDenyOverrides}) {
      policy.semantics = semantics;
      for (const std::uint16_t p :
           {std::uint16_t{99}, std::uint16_t{100}, std::uint16_t{200},
            std::uint16_t{201}, std::uint16_t{0}, std::uint16_t{0xFFFF}}) {
        for (const std::uint8_t proto :
             {std::uint8_t{0}, std::uint8_t{6}, std::uint8_t{17},
              std::uint8_t{255}}) {
          const net::PacketHeader packet{
              .src_ip = net::Ipv4Address::from_octets(1, 0, 0, 255),
              .src_port = 1,
              .dst_ip = net::Ipv4Address::from_octets(2, 0, 1, 0),
              .dst_port = p,
              .protocol = proto};
          EXPECT_EQ(evaluate(policy, packet).allowed,
                    z3_allows(engine, policy, packet))
              << packet.to_string();
        }
      }
    }
  };

  check_all(Policy{.name = "empty",
                   .semantics = PolicySemantics::kFirstApplicable,
                   .rules = {}});

  Policy ranged{.name = "ranged",
                .semantics = PolicySemantics::kFirstApplicable,
                .rules = {}};
  ranged.rules.push_back(Rule{
      .action = Action::kPermit,
      .protocol = net::ProtocolSpec::any(),  // wildcard
      .src = net::Prefix::parse("1.0.0.0/24"),
      .src_ports = net::PortRange::any(),
      .dst = net::Prefix::parse("2.0.0.0/16"),
      .dst_ports = net::PortRange(100, 200)});  // inclusive endpoints
  ranged.rules.push_back(Rule{
      .action = Action::kDeny,
      .protocol = net::ProtocolSpec::tcp(),
      .src = net::Prefix::default_route(),
      .src_ports = net::PortRange::any(),
      .dst = net::Prefix::parse("2.0.0.0/16"),
      .dst_ports = net::PortRange(200, 200)});  // shares endpoint 200
  check_all(ranged);
}

}  // namespace
}  // namespace dcv::secguru
