// FastEnginePool: leases hand out distinct engines, block when exhausted,
// and release on destruction — the concurrency substrate of the gate's
// POST /nsg-check endpoint.
#include "secguru/engine_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

namespace dcv::secguru {
namespace {

TEST(FastEnginePool, HandsOutDistinctEnginesAndRecycles) {
  FastEnginePool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.available(), 2u);
  {
    const auto first = pool.acquire();
    const auto second = pool.acquire();
    EXPECT_NE(&*first, &*second);
    EXPECT_EQ(pool.available(), 0u);
  }
  EXPECT_EQ(pool.available(), 2u);
  // Recycled engines keep their identity (and thus their warm caches).
  const auto again = pool.acquire();
  EXPECT_EQ(pool.available(), 1u);
}

TEST(FastEnginePool, ZeroSizeStillYieldsOneEngine) {
  FastEnginePool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(FastEnginePool, AcquireBlocksUntilALeaseReturns) {
  FastEnginePool pool(1);
  std::optional<FastEnginePool::Lease> held(pool.acquire());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    const auto lease = pool.acquire();
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());  // still blocked on the only engine
  held.reset();                   // release
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(pool.available(), 1u);
}

TEST(FastEnginePool, ConcurrentLeasesNeverOversubscribe) {
  constexpr std::size_t kEngines = 2;
  FastEnginePool pool(kEngines);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> users;
  for (int i = 0; i < 8; ++i) {
    users.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        const auto lease = pool.acquire();
        const int now = ++inside;
        int snapshot = peak.load();
        while (now > snapshot &&
               !peak.compare_exchange_weak(snapshot, now)) {
        }
        --inside;
      }
    });
  }
  for (auto& user : users) user.join();
  EXPECT_LE(peak.load(), static_cast<int>(kEngines));
  EXPECT_EQ(pool.available(), kEngines);
}

}  // namespace
}  // namespace dcv::secguru
