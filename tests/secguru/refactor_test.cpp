#include "secguru/refactor.hpp"

#include <gtest/gtest.h>

namespace dcv::secguru {
namespace {

LegacyAclParams small_params() {
  return LegacyAclParams{.owned_prefixes = 6,
                         .services = 8,
                         .whitelist_entries_per_service = 3,
                         .zero_day_blocks = 4,
                         .redundancy_factor = 0.3,
                         .seed = 11};
}

TEST(LegacyAcl, GeneratorProducesFigure8Structure) {
  const Policy acl = generate_legacy_edge_acl(small_params());
  EXPECT_EQ(acl.semantics, PolicySemantics::kFirstApplicable);
  EXPECT_GT(acl.rules.size(), 40u);
  // Starts with private isolation, ends with redundant duplicates.
  EXPECT_EQ(acl.rules.front().comment, "Isolating private addresses");
  EXPECT_EQ(acl.rules.back().comment, "redundant duplicate");
}

TEST(LegacyAcl, SatisfiesItsOwnContractSuite) {
  Engine engine;
  const auto params = small_params();
  const Policy acl = generate_legacy_edge_acl(params);
  const ContractSuite suite = edge_acl_contracts(params);
  EXPECT_GT(suite.contracts.size(), 10u);
  const PolicyReport report = engine.check_suite(acl, suite);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? ""
                                   : report.failures[0].contract_name);
}

TEST(LegacyAcl, RedundantDuplicatesAreShadowed) {
  Engine engine;
  const Policy acl = generate_legacy_edge_acl(small_params());
  const auto shadowed = engine.shadowed_rules(acl);
  std::size_t duplicates = 0;
  for (const Rule& rule : acl.rules) {
    if (rule.comment == "redundant duplicate") ++duplicates;
  }
  EXPECT_GE(shadowed.size(), duplicates);
  EXPECT_GT(duplicates, 0u);
}

TEST(LegacyAcl, ScalesToSeveralThousandRules) {
  const Policy acl = generate_legacy_edge_acl(LegacyAclParams{});
  // Default parameters give the paper's "several thousand rules" scale.
  EXPECT_GT(acl.rules.size(), 500u);
}

TEST(Changes, DeleteRulesMatching) {
  const Change change = delete_rules_matching(
      "drop denies", [](const Rule& r) { return r.action == Action::kDeny; });
  Policy policy;
  policy.rules.push_back(Rule{.action = Action::kDeny});
  policy.rules.push_back(Rule{.action = Action::kPermit});
  const Policy after = change.apply(policy);
  ASSERT_EQ(after.rules.size(), 1u);
  EXPECT_EQ(after.rules[0].action, Action::kPermit);
}

TEST(Changes, AppendRules) {
  const Change change = append_rules("add one", {Rule{}});
  EXPECT_EQ(change.apply(Policy{}).rules.size(), 1u);
}

class RefactorPlan : public testing::Test {
 protected:
  RefactorPlan()
      : params_(small_params()),
        production_(generate_legacy_edge_acl(params_)),
        contracts_(edge_acl_contracts(params_)) {}

  Engine engine_;
  LegacyAclParams params_;
  Policy production_;
  ContractSuite contracts_;
};

TEST_F(RefactorPlan, SafeStepIsAppliedAndShrinks) {
  Engine engine;
  std::vector<Change> plan;
  plan.push_back(delete_rules_matching("remove redundant duplicates",
                                       [](const Rule& r) {
                                         return r.comment ==
                                                "redundant duplicate";
                                       }));
  const std::size_t before = production_.rules.size();
  const auto outcomes =
      execute_refactor_plan(engine_, production_, plan, contracts_);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].precheck_ok);
  EXPECT_TRUE(outcomes[0].applied);
  EXPECT_TRUE(outcomes[0].postcheck_ok);
  EXPECT_FALSE(outcomes[0].rolled_back);
  EXPECT_LT(outcomes[0].rules_after, before);
  EXPECT_EQ(production_.rules.size(), outcomes[0].rules_after);
}

TEST_F(RefactorPlan, TypoIsCaughtByPrecheck) {
  // The §3.3 scenario: a typo'd prefix makes a service unreachable.
  // Deleting the final permit for an owned range violates its
  // service-reachable contract; the precheck must block deployment.
  std::vector<Change> plan;
  plan.push_back(delete_rules_matching(
      "typo: drop the wrong permit section",
      [](const Rule& r) {
        return r.action == Action::kPermit &&
               r.comment == "permits for IPs with port and protocol blocks";
      }));
  const Policy before = production_;
  const auto outcomes =
      execute_refactor_plan(engine_, production_, plan, contracts_);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].precheck_ok);
  EXPECT_FALSE(outcomes[0].applied);
  EXPECT_FALSE(outcomes[0].precheck_failures.empty());
  // Production untouched.
  EXPECT_EQ(production_, before);
}

TEST_F(RefactorPlan, DeviceCapacityTruncationCaughtByPrecheck) {
  // "if resource limitations on the device cause certain additional rules
  // to be ignored, then the effective ACL in the configuration would
  // violate the contracts."
  std::vector<Change> plan;
  plan.push_back(Change{.description = "no-op",
                        .apply = [](const Policy& p) { return p; }});
  const TestDevice tiny_lab{.max_rules = 5};
  const auto outcomes = execute_refactor_plan(engine_, production_, plan,
                                              contracts_, tiny_lab);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].precheck_ok);
}

TEST_F(RefactorPlan, PostcheckFailureRollsBack) {
  // Lab device is roomy, production device truncates: the precheck passes
  // but the postcheck catches the production truncation and rolls back.
  std::vector<Change> plan;
  plan.push_back(Change{.description = "no-op",
                        .apply = [](const Policy& p) { return p; }});
  const TestDevice lab{};
  const TestDevice production_device{.max_rules = 5};
  const Policy before = production_;
  const auto outcomes = execute_refactor_plan(
      engine_, production_, plan, contracts_, lab, production_device);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].precheck_ok);
  EXPECT_TRUE(outcomes[0].applied);
  EXPECT_FALSE(outcomes[0].postcheck_ok);
  EXPECT_TRUE(outcomes[0].rolled_back);
  EXPECT_EQ(production_, before);
}

TEST_F(RefactorPlan, MultiStepPlanShrinksMonotonically) {
  // A phased plan in the spirit of Figure 11: remove redundancy, move
  // service whitelists to host firewalls, drop stale zero-day blocks.
  std::vector<Change> plan;
  plan.push_back(delete_rules_matching("remove redundant duplicates",
                                       [](const Rule& r) {
                                         return r.comment ==
                                                "redundant duplicate";
                                       }));
  plan.push_back(delete_rules_matching(
      "move service whitelists to host firewalls", [](const Rule& r) {
        return r.comment.starts_with("service whitelist");
      }));
  plan.push_back(delete_rules_matching(
      "retire zero-day mitigations", [](const Rule& r) {
        return r.comment.starts_with("zero-day mitigation");
      }));
  const auto outcomes =
      execute_refactor_plan(engine_, production_, plan, contracts_);
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].precheck_ok) << i;
    EXPECT_TRUE(outcomes[i].applied) << i;
    EXPECT_LE(outcomes[i].rules_after, outcomes[i].rules_before) << i;
  }
  EXPECT_LT(production_.rules.size(), outcomes[0].rules_before / 2);
}

}  // namespace
}  // namespace dcv::secguru
