#include "secguru/nsg.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace dcv::secguru {
namespace {

// An NSG in the spirit of Figure 9.
constexpr const char* kFigure9 = R"(priority,name,source,src_ports,destination,dst_ports,protocol,access
100,AllowVnetInBound,VirtualNetwork,Any,VirtualNetwork,Any,Any,Allow
110,AllowBackup,SqlManagement,Any,10.1.0.0/16,1433-1434,Tcp,Allow
500,AllowWeb,Internet,Any,10.1.0.0/16,443,Tcp,Allow
4096,DenyAllInBound,Any,Any,Any,Any,Any,Deny
)";

TEST(NsgParser, ParsesFigure9Style) {
  const Nsg nsg = parse_nsg(kFigure9, "test");
  EXPECT_EQ(nsg.name(), "test");
  ASSERT_EQ(nsg.size(), 4u);
  const auto& rules = nsg.rules();
  EXPECT_EQ(rules.at(100).name, "AllowVnetInBound");
  EXPECT_EQ(rules.at(100).rule.src, net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(rules.at(110).rule.dst_ports, net::PortRange(1433, 1434));
  EXPECT_EQ(rules.at(110).rule.protocol, net::ProtocolSpec::tcp());
  EXPECT_EQ(rules.at(500).rule.src, net::Prefix::default_route());
  EXPECT_EQ(rules.at(4096).rule.action, Action::kDeny);
}

TEST(NsgParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_nsg("1,2,3\n"), dcv::ParseError);
  EXPECT_THROW(parse_nsg("x,n,Any,Any,Any,Any,Any,Allow\n"),
               dcv::ParseError);
  EXPECT_THROW(parse_nsg("1,n,NoSuchTag,Any,Any,Any,Any,Allow\n"),
               dcv::ParseError);
  EXPECT_THROW(parse_nsg("1,n,Any,99999,Any,Any,Any,Allow\n"),
               dcv::ParseError);
  EXPECT_THROW(parse_nsg("1,n,Any,Any,Any,Any,Any,Maybe\n"),
               dcv::ParseError);
}

TEST(Nsg, ToPolicyOrdersByPriority) {
  Nsg nsg("n");
  nsg.upsert(NsgRule{.priority = 4096,
                     .name = "DenyAll",
                     .rule = Rule{.action = Action::kDeny}});
  nsg.upsert(NsgRule{.priority = 100,
                     .name = "AllowFirst",
                     .rule = Rule{.action = Action::kPermit}});
  const Policy policy = nsg.to_policy();
  ASSERT_EQ(policy.rules.size(), 2u);
  EXPECT_EQ(policy.semantics, PolicySemantics::kFirstApplicable);
  EXPECT_EQ(policy.rules[0].action, Action::kPermit);  // priority 100 first
  EXPECT_EQ(policy.rules[0].comment, "AllowFirst");
  EXPECT_EQ(policy.rules[1].action, Action::kDeny);
}

TEST(Nsg, UpsertReplacesSamePriority) {
  Nsg nsg("n");
  nsg.upsert(NsgRule{.priority = 100,
                     .name = "A",
                     .rule = Rule{.action = Action::kPermit}});
  nsg.upsert(NsgRule{.priority = 100,
                     .name = "B",
                     .rule = Rule{.action = Action::kDeny}});
  ASSERT_EQ(nsg.size(), 1u);
  EXPECT_EQ(nsg.rules().at(100).name, "B");
}

TEST(Nsg, Remove) {
  Nsg nsg("n");
  nsg.upsert(NsgRule{.priority = 100, .name = "A", .rule = Rule{}});
  EXPECT_TRUE(nsg.remove(100));
  EXPECT_FALSE(nsg.remove(100));
  EXPECT_EQ(nsg.size(), 0u);
}

TEST(Nsg, WriteParseRoundTrip) {
  const Nsg original = parse_nsg(kFigure9, "rt");
  const Nsg reparsed = parse_nsg(write_nsg(original), "rt");
  EXPECT_EQ(original, reparsed);
}

TEST(NsgParser, DefaultServiceTags) {
  const auto tags = default_service_tags();
  EXPECT_TRUE(tags.contains("VirtualNetwork"));
  EXPECT_TRUE(tags.contains("Internet"));
  EXPECT_TRUE(tags.contains("SqlManagement"));
}

}  // namespace
}  // namespace dcv::secguru
