#include "secguru/contracts_io.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace dcv::secguru {
namespace {

TEST(ContractsIo, ParsesBasicSuite) {
  const ContractSuite suite = parse_contracts(
      "# regression suite\n"
      "deny ip 10.0.0.0/8 any   # private isolation\n"
      "allow tcp 8.8.8.0/24 104.208.32.0/20 eq 443  # web reachable\n"
      "allow udp host 1.2.3.4 range 100 200 any\n");
  ASSERT_EQ(suite.contracts.size(), 3u);
  EXPECT_EQ(suite.contracts[0].name, "private isolation");
  EXPECT_EQ(suite.contracts[0].expect, Expectation::kDeny);
  EXPECT_EQ(suite.contracts[0].src, net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(suite.contracts[1].dst_ports, net::PortRange::exactly(443));
  EXPECT_EQ(suite.contracts[1].protocol, net::ProtocolSpec::tcp());
  // Unnamed contract gets a line-based name.
  EXPECT_EQ(suite.contracts[2].name, "line-4");
  EXPECT_EQ(suite.contracts[2].src, net::Prefix::parse("1.2.3.4/32"));
  EXPECT_EQ(suite.contracts[2].src_ports, net::PortRange(100, 200));
}

TEST(ContractsIo, RoundTrip) {
  const ContractSuite original = parse_contracts(
      "deny ip 10.0.0.0/8 any  # a\n"
      "allow tcp any 104.208.32.0/20 eq 443  # b\n"
      "deny udp host 9.9.9.9 any eq 53  # c\n");
  const ContractSuite reparsed =
      parse_contracts(write_contracts(original));
  ASSERT_EQ(original.contracts.size(), reparsed.contracts.size());
  for (std::size_t i = 0; i < original.contracts.size(); ++i) {
    EXPECT_EQ(original.contracts[i], reparsed.contracts[i]) << i;
  }
}

class ContractsIoErrors : public testing::TestWithParam<const char*> {};

TEST_P(ContractsIoErrors, Rejects) {
  EXPECT_THROW(parse_contracts(GetParam()), dcv::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ContractsIoErrors,
    testing::Values("permit ip any any\n",       // permit is ACL syntax
                    "allow bogus any any\n",     // bad protocol
                    "allow ip any\n",            // missing dst
                    "allow tcp any eq 70000 any\n",
                    "allow tcp any range 9 2 any\n",
                    "allow ip any any extra\n"));

TEST(ContractsIo, EmptyAndCommentOnly) {
  EXPECT_TRUE(parse_contracts("").contracts.empty());
  EXPECT_TRUE(parse_contracts("# only a comment\n").contracts.empty());
}

}  // namespace
}  // namespace dcv::secguru
