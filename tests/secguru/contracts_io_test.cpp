#include "secguru/contracts_io.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"
#include "secguru/acl_parser.hpp"
#include "secguru/engine.hpp"

namespace dcv::secguru {
namespace {

TEST(ContractsIo, ParsesBasicSuite) {
  const ContractSuite suite = parse_contracts(
      "# regression suite\n"
      "deny ip 10.0.0.0/8 any   # private isolation\n"
      "allow tcp 8.8.8.0/24 104.208.32.0/20 eq 443  # web reachable\n"
      "allow udp host 1.2.3.4 range 100 200 any\n");
  ASSERT_EQ(suite.contracts.size(), 3u);
  EXPECT_EQ(suite.contracts[0].name, "private isolation");
  EXPECT_EQ(suite.contracts[0].expect, Expectation::kDeny);
  EXPECT_EQ(suite.contracts[0].src, net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(suite.contracts[1].dst_ports, net::PortRange::exactly(443));
  EXPECT_EQ(suite.contracts[1].protocol, net::ProtocolSpec::tcp());
  // Unnamed contract gets a line-based name.
  EXPECT_EQ(suite.contracts[2].name, "line-4");
  EXPECT_EQ(suite.contracts[2].src, net::Prefix::parse("1.2.3.4/32"));
  EXPECT_EQ(suite.contracts[2].src_ports, net::PortRange(100, 200));
}

TEST(ContractsIo, RoundTrip) {
  const ContractSuite original = parse_contracts(
      "deny ip 10.0.0.0/8 any  # a\n"
      "allow tcp any 104.208.32.0/20 eq 443  # b\n"
      "deny udp host 9.9.9.9 any eq 53  # c\n");
  const ContractSuite reparsed =
      parse_contracts(write_contracts(original));
  ASSERT_EQ(original.contracts.size(), reparsed.contracts.size());
  for (std::size_t i = 0; i < original.contracts.size(); ++i) {
    EXPECT_EQ(original.contracts[i], reparsed.contracts[i]) << i;
  }
}

class ContractsIoErrors : public testing::TestWithParam<const char*> {};

TEST_P(ContractsIoErrors, Rejects) {
  EXPECT_THROW(parse_contracts(GetParam()), dcv::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ContractsIoErrors,
    testing::Values("permit ip any any\n",       // permit is ACL syntax
                    "allow bogus any any\n",     // bad protocol
                    "allow ip any\n",            // missing dst
                    "allow tcp any eq 70000 any\n",
                    "allow tcp any range 9 2 any\n",
                    "allow ip any any extra\n"));

TEST(ContractsIo, EmptyAndCommentOnly) {
  EXPECT_TRUE(parse_contracts("").contracts.empty());
  EXPECT_TRUE(parse_contracts("# only a comment\n").contracts.empty());
}

TEST(ContractsIo, WriteFailureRendersViolatingRule) {
  const Policy acl = parse_acl(
      "deny tcp any any eq 445\npermit tcp any 1.0.0.0/24 eq 443\n");
  const ContractCheckResult failure{
      .contract_name = "smb",
      .holds = false,
      .witness = net::PacketHeader{.src_ip = net::Ipv4Address(0x08080808),
                                   .src_port = 1,
                                   .dst_ip = net::Ipv4Address(0x01000001),
                                   .dst_port = 445,
                                   .protocol = 6},
      .violating_rule = 0};
  const std::string line = write_failure(failure, acl);
  EXPECT_NE(line.find("FAIL smb"), std::string::npos);
  EXPECT_NE(line.find("witness:"), std::string::npos);
  EXPECT_NE(line.find("rule " + std::to_string(acl.rules[0].line)),
            std::string::npos);
  EXPECT_NE(line.find(acl.rules[0].to_string()), std::string::npos);
  EXPECT_EQ(line.find("implicit default deny"), std::string::npos);
}

TEST(ContractsIo, WriteFailureRendersImplicitDefaultDeny) {
  // violating_rule == nullopt means the implicit default deny decided the
  // witness — the report must say so rather than dropping the field.
  const Policy acl = parse_acl("permit tcp any 1.0.0.0/24 eq 443\n");
  const ContractCheckResult failure{
      .contract_name = "unreached",
      .holds = false,
      .witness = net::PacketHeader{.src_ip = net::Ipv4Address(0x08080808),
                                   .src_port = 1,
                                   .dst_ip = net::Ipv4Address(0x09090909),
                                   .dst_port = 443,
                                   .protocol = 6},
      .violating_rule = std::nullopt};
  const std::string line = write_failure(failure, acl);
  EXPECT_NE(line.find("FAIL unreached"), std::string::npos);
  EXPECT_NE(line.find("(implicit default deny)"), std::string::npos);
}

TEST(ContractsIo, WriteReportRoundTripThroughEngine) {
  // End-to-end: check a suite whose failures include both a rule-decided
  // witness and a default-deny witness, and render the whole report.
  Engine engine;
  const Policy acl = parse_acl(
      "deny tcp any any eq 445\npermit tcp any 1.0.0.0/24 eq 443\n");
  const ContractSuite suite = parse_contracts(
      "allow tcp any 1.0.0.0/24 eq 445  # smb-open\n"
      "allow tcp any 9.9.9.0/24 eq 443  # other-net\n"
      "allow tcp any 1.0.0.0/24 eq 443  # web\n");
  const PolicyReport report = engine.check_suite(acl, suite);
  ASSERT_EQ(report.failures.size(), 2u);

  const std::string text = write_report(report, acl);
  // The rule-decided failure names the deny rule...
  EXPECT_NE(text.find("FAIL smb-open"), std::string::npos);
  EXPECT_NE(text.find(acl.rules[0].to_string()), std::string::npos);
  // ...the default-deny failure is rendered explicitly, not dropped...
  EXPECT_NE(text.find("FAIL other-net"), std::string::npos);
  EXPECT_NE(text.find("(implicit default deny)"), std::string::npos);
  // ...and the summary counts match the report.
  EXPECT_NE(text.find("2 rules"), std::string::npos);
  EXPECT_NE(text.find("3 contracts"), std::string::npos);
  EXPECT_NE(text.find("2 failed"), std::string::npos);
}

}  // namespace
}  // namespace dcv::secguru
