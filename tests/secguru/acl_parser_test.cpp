#include "secguru/acl_parser.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace dcv::secguru {
namespace {

// The ACL of Figure 8, §3.1 (modulo the paper's elided lines).
constexpr const char* kFigure8 = R"(remark Isolating private addresses
deny ip 0.0.0.0/32 any
deny ip 10.0.0.0/8 any
deny ip 172.16.0.0/12 any
remark Anti spoofing ACLs
deny ip 104.208.32.0/20 any
deny ip 168.61.144.0/20 any
remark permits for IPs without port and protocol blocks
permit ip any 104.208.32.0/24
remark standard port and protocol blocks
deny tcp any any eq 445
deny udp any any eq 445
deny tcp any any eq 593
deny udp any any eq 593
deny 53 any any
deny 55 any any
remark permits for IPs with port and protocol blocks
permit ip any 104.208.32.0/20
permit ip any 168.61.144.0/20
)";

TEST(AclParser, ParsesFigure8) {
  const Policy acl = parse_acl(kFigure8, "edge");
  EXPECT_EQ(acl.name, "edge");
  EXPECT_EQ(acl.semantics, PolicySemantics::kFirstApplicable);
  ASSERT_EQ(acl.rules.size(), 14u);
  EXPECT_EQ(acl.rules[0].action, Action::kDeny);
  EXPECT_EQ(acl.rules[0].src, net::Prefix::parse("0.0.0.0/32"));
  EXPECT_EQ(acl.rules[0].comment, "Isolating private addresses");
  EXPECT_EQ(acl.rules[1].src, net::Prefix::parse("10.0.0.0/8"));
  EXPECT_TRUE(acl.rules[1].protocol.is_any());
  // "deny 53 any any" is protocol 53, not a port.
  EXPECT_EQ(acl.rules[10].protocol, net::ProtocolSpec(std::uint8_t{53}));
  EXPECT_TRUE(acl.rules[10].dst_ports.is_any());
  // Port-specific rules.
  EXPECT_EQ(acl.rules[6].dst_ports, net::PortRange::exactly(445));
  EXPECT_EQ(acl.rules[6].protocol, net::ProtocolSpec::tcp());
  EXPECT_EQ(acl.rules[7].protocol, net::ProtocolSpec::udp());
  EXPECT_EQ(acl.rules[6].comment, "standard port and protocol blocks");
  // Final permits.
  EXPECT_EQ(acl.rules[13].action, Action::kPermit);
  EXPECT_EQ(acl.rules[13].dst, net::Prefix::parse("168.61.144.0/20"));
}

TEST(AclParser, HostAndRangeSyntax) {
  const Policy acl = parse_acl(
      "permit tcp host 1.2.3.4 range 1000 2000 10.0.0.0/8 eq 80\n");
  ASSERT_EQ(acl.rules.size(), 1u);
  EXPECT_EQ(acl.rules[0].src, net::Prefix::parse("1.2.3.4/32"));
  EXPECT_EQ(acl.rules[0].src_ports, net::PortRange(1000, 2000));
  EXPECT_EQ(acl.rules[0].dst_ports, net::PortRange::exactly(80));
}

TEST(AclParser, LineNumbersRecorded) {
  const Policy acl = parse_acl("remark x\ndeny ip any any\n\npermit ip any any\n");
  ASSERT_EQ(acl.rules.size(), 2u);
  EXPECT_EQ(acl.rules[0].line, 2);
  EXPECT_EQ(acl.rules[1].line, 4);
}

class AclParserErrors : public testing::TestWithParam<const char*> {};

TEST_P(AclParserErrors, Rejects) {
  EXPECT_THROW(parse_acl(GetParam()), dcv::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, AclParserErrors,
    testing::Values("allow ip any any\n",            // bad action
                    "permit bogus any any\n",        // bad protocol
                    "permit ip any\n",               // missing dst
                    "permit ip host any any\n",      // bad host ip
                    "permit tcp any eq 99999 any\n", // port out of range
                    "permit tcp any range 20 10 any\n",  // inverted range
                    "permit ip any any trailing\n",  // trailing tokens
                    "permit ip 300.0.0.0/8 any\n")); // bad address

TEST(AclParser, RoundTripPreservesSemanticsAndComments) {
  const Policy original = parse_acl(kFigure8, "edge");
  const std::string text = write_acl(original);
  const Policy reparsed = parse_acl(text, "edge");
  ASSERT_EQ(original.rules.size(), reparsed.rules.size());
  for (std::size_t i = 0; i < original.rules.size(); ++i) {
    // Everything except the raw line number survives the round trip.
    Rule a = original.rules[i];
    Rule b = reparsed.rules[i];
    a.line = b.line = 0;
    EXPECT_EQ(a, b) << "rule " << i;
  }
}

TEST(AclParser, EmptyInputGivesEmptyPolicy) {
  EXPECT_TRUE(parse_acl("").rules.empty());
  EXPECT_TRUE(parse_acl("\n\n  \n").rules.empty());
}

}  // namespace
}  // namespace dcv::secguru
