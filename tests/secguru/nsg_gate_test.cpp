#include "secguru/nsg_gate.hpp"

#include <gtest/gtest.h>

namespace dcv::secguru {
namespace {

VirtualNetwork make_vnet(bool with_database) {
  VirtualNetwork vnet{.name = "customer",
                      .address_space = net::Prefix::parse("10.1.0.0/16"),
                      .has_database_instance = with_database,
                      .nsg = Nsg("customer-nsg")};
  const BackupInfrastructure infra;
  vnet.nsg.upsert(NsgRule{
      .priority = 100,
      .name = "AllowVnet",
      .rule = Rule{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::any(),
                   .src = vnet.address_space,
                   .src_ports = net::PortRange::any(),
                   .dst = vnet.address_space,
                   .dst_ports = net::PortRange::any()}});
  vnet.nsg.upsert(NsgRule{
      .priority = 300,
      .name = "AllowBackupControl",
      .rule = Rule{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::tcp(),
                   .src = infra.service_range,
                   .src_ports = net::PortRange::any(),
                   .dst = vnet.address_space,
                   .dst_ports = infra.control_ports}});
  vnet.nsg.upsert(NsgRule{
      .priority = 310,
      .name = "AllowBackupData",
      .rule = Rule{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::tcp(),
                   .src = vnet.address_space,
                   .src_ports = net::PortRange::any(),
                   .dst = infra.service_range,
                   .dst_ports = net::PortRange::exactly(443)}});
  vnet.nsg.upsert(NsgRule{
      .priority = 4096,
      .name = "DenyAll",
      .rule = Rule{.action = Action::kDeny,
                   .protocol = net::ProtocolSpec::any(),
                   .src = net::Prefix::default_route(),
                   .src_ports = net::PortRange::any(),
                   .dst = net::Prefix::default_route(),
                   .dst_ports = net::PortRange::any()}});
  return vnet;
}

NsgRule lockdown_rule(const VirtualNetwork& vnet) {
  return NsgRule{
      .priority = 150,
      .name = "DenyInboundLockdown",
      .rule = Rule{.action = Action::kDeny,
                   .protocol = net::ProtocolSpec::any(),
                   .src = net::Prefix::default_route(),
                   .src_ports = net::PortRange::any(),
                   .dst = vnet.address_space,
                   .dst_ports = net::PortRange::any()}};
}

TEST(DatabaseBackupContracts, TwoDirections) {
  const auto suite = database_backup_contracts(make_vnet(true));
  ASSERT_EQ(suite.contracts.size(), 2u);
  EXPECT_EQ(suite.contracts[0].expect, Expectation::kAllow);
  EXPECT_EQ(suite.contracts[1].expect, Expectation::kAllow);
}

TEST(NsgGate, AcceptsBenignChange) {
  Engine engine;
  const NsgGate gate(engine);
  VirtualNetwork vnet = make_vnet(true);
  Nsg proposed = vnet.nsg;
  proposed.upsert(NsgRule{
      .priority = 1000,
      .name = "AllowApp",
      .rule = Rule{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::tcp(),
                   .src = net::Prefix::default_route(),
                   .src_ports = net::PortRange::any(),
                   .dst = vnet.address_space,
                   .dst_ports = net::PortRange::exactly(8080)}});
  const auto result = gate.try_update(vnet, proposed);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(vnet.nsg.size(), 5u);  // the change landed
}

TEST(NsgGate, RejectsBackupBlockingChange) {
  Engine engine;
  const NsgGate gate(engine);
  VirtualNetwork vnet = make_vnet(true);
  Nsg proposed = vnet.nsg;
  proposed.upsert(lockdown_rule(vnet));
  const Nsg before = vnet.nsg;
  const auto result = gate.try_update(vnet, proposed);
  EXPECT_FALSE(result.accepted);
  ASSERT_FALSE(result.report.failures.empty());
  EXPECT_EQ(result.report.failures[0].contract_name,
            "backup-control-inbound");
  // The failing rule is identified.
  EXPECT_TRUE(result.report.failures[0].violating_rule.has_value());
  EXPECT_EQ(vnet.nsg, before);  // the change was blocked
}

TEST(NsgGate, RejectsRemovalOfBackupAllowRule) {
  Engine engine;
  const NsgGate gate(engine);
  VirtualNetwork vnet = make_vnet(true);
  Nsg proposed = vnet.nsg;
  proposed.remove(300);
  EXPECT_FALSE(gate.try_update(vnet, proposed).accepted);
}

TEST(NsgGate, NetworksWithoutDatabaseAreUnconstrained) {
  Engine engine;
  const NsgGate gate(engine);
  VirtualNetwork vnet = make_vnet(false);
  Nsg proposed = vnet.nsg;
  proposed.upsert(lockdown_rule(vnet));
  EXPECT_TRUE(gate.try_update(vnet, proposed).accepted);
}

TEST(NsgIncidents, Figure12Shape) {
  NsgIncidentConfig config;
  config.days = 60;
  config.gate_deploy_day = 30;
  config.adoption_per_day = 1.0;
  config.changes_per_vnet_per_day = 0.4;
  config.misconfiguration_probability = 0.3;
  config.detection_lag_days = 2;
  config.support_capacity_per_day = 3;
  config.seed = 77;
  const auto series = simulate_nsg_incidents(config);
  ASSERT_EQ(series.size(), 60u);

  // Adoption grows monotonically.
  EXPECT_EQ(series.back().database_vnets, 60u);

  std::size_t incidents_before_gate = 0;
  std::size_t incidents_after_settle = 0;
  std::size_t rejected_before = 0;
  std::size_t rejected_after = 0;
  for (const auto& day : series) {
    if (day.day < config.gate_deploy_day) {
      incidents_before_gate += day.incidents_reported;
      rejected_before += day.changes_rejected_by_gate;
    }
    if (day.day >= config.gate_deploy_day + config.detection_lag_days + 2) {
      incidents_after_settle += day.incidents_reported;
      rejected_after += day.changes_rejected_by_gate;
    }
  }
  // The rising-then-falling shape of Figure 12: incidents before the gate,
  // none once it has settled; the gate visibly rejects bad changes.
  EXPECT_GT(incidents_before_gate, 5u);
  EXPECT_EQ(incidents_after_settle, 0u);
  EXPECT_EQ(rejected_before, 0u);
  EXPECT_GT(rejected_after, 0u);
}

TEST(NsgIncidents, WithoutGateIncidentsPersist) {
  NsgIncidentConfig config;
  config.days = 40;
  config.gate_deploy_day = 1000;  // never ships
  config.seed = 78;
  const auto series = simulate_nsg_incidents(config);
  std::size_t late_incidents = 0;
  for (const auto& day : series) {
    if (day.day >= 20) late_incidents += day.incidents_reported;
  }
  EXPECT_GT(late_incidents, 0u);
}

}  // namespace
}  // namespace dcv::secguru
