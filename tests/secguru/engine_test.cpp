#include "secguru/engine.hpp"

#include <gtest/gtest.h>

#include <random>

#include "secguru/acl_parser.hpp"

namespace dcv::secguru {
namespace {

ConnectivityContract deny_contract(const char* name, const char* src,
                                   const char* dst) {
  return ConnectivityContract{.name = name,
                              .expect = Expectation::kDeny,
                              .protocol = net::ProtocolSpec::any(),
                              .src = net::Prefix::parse(src),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::parse(dst),
                              .dst_ports = net::PortRange::any()};
}

ConnectivityContract allow_contract(const char* name, const char* src,
                                    const char* dst, std::uint16_t port) {
  return ConnectivityContract{.name = name,
                              .expect = Expectation::kAllow,
                              .protocol = net::ProtocolSpec::tcp(),
                              .src = net::Prefix::parse(src),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::parse(dst),
                              .dst_ports = net::PortRange::exactly(port)};
}

constexpr const char* kSmallAcl = R"(remark private isolation
deny ip 10.0.0.0/8 any
remark port blocks
deny tcp any any eq 445
remark service permits
permit tcp any 104.208.32.0/20 eq 443
permit tcp any 104.208.32.0/20 eq 80
)";

TEST(Engine, DenyContractHolds) {
  Engine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const auto result =
      engine.check(acl, deny_contract("private", "10.0.0.0/8", "0.0.0.0/0"));
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.witness.has_value());
}

TEST(Engine, AllowContractHolds) {
  Engine engine;
  const Policy acl = parse_acl(kSmallAcl);
  EXPECT_TRUE(engine
                  .check(acl, allow_contract("web", "8.8.8.0/24",
                                             "104.208.32.0/20", 443))
                  .holds);
}

TEST(Engine, AllowContractViolatedWithWitnessAndRule) {
  Engine engine;
  const Policy acl = parse_acl(kSmallAcl);
  // Port 445 to the service range is blocked by rule index 1; an allow
  // contract for it must fail and point at that rule.
  const auto result = engine.check(
      acl, allow_contract("smb", "8.8.8.0/24", "104.208.32.0/20", 445));
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(net::Prefix::parse("104.208.32.0/20")
                  .contains(result.witness->dst_ip));
  EXPECT_EQ(result.witness->dst_port, 445);
  ASSERT_TRUE(result.violating_rule.has_value());
  EXPECT_EQ(*result.violating_rule, 1u);
}

TEST(Engine, AllowContractViolatedByDefaultDeny) {
  Engine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const auto result = engine.check(
      acl, allow_contract("other", "8.8.8.0/24", "9.9.9.0/24", 443));
  EXPECT_FALSE(result.holds);
  // No explicit rule matched the witness: the implicit default deny did.
  EXPECT_EQ(result.violating_rule, std::nullopt);
}

TEST(Engine, DenyContractViolatedPointsAtPermit) {
  Engine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const auto result = engine.check(
      acl, deny_contract("leak", "8.8.8.0/24", "104.208.32.0/20"));
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.violating_rule.has_value());
  // One of the two permits (443 or 80) admitted the witness.
  EXPECT_GE(*result.violating_rule, 2u);
}

TEST(Engine, CheckSuiteCollectsFailures) {
  Engine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const ContractSuite suite{
      .name = "s",
      .contracts = {
          deny_contract("ok", "10.0.0.0/8", "0.0.0.0/0"),
          allow_contract("fails", "8.8.8.0/24", "9.9.9.0/24", 443),
          allow_contract("ok2", "8.8.8.0/24", "104.208.32.0/20", 80)}};
  const PolicyReport report = engine.check_suite(acl, suite);
  EXPECT_EQ(report.contracts_checked, 3u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].contract_name, "fails");
  EXPECT_FALSE(report.ok());
}

TEST(Engine, EquivalenceOfReorderedDisjointRules) {
  Engine engine;
  const Policy a = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\npermit tcp any 2.0.0.0/24 eq 80\n");
  const Policy b = parse_acl(
      "permit tcp any 2.0.0.0/24 eq 80\npermit tcp any 1.0.0.0/24 eq 80\n");
  EXPECT_EQ(engine.difference_witness(a, b), std::nullopt);
}

TEST(Engine, DifferenceWitnessFound) {
  Engine engine;
  const Policy a = parse_acl("permit tcp any 1.0.0.0/24 eq 80\n");
  const Policy b = parse_acl("permit tcp any 1.0.0.0/25 eq 80\n");
  const auto witness = engine.difference_witness(a, b);
  ASSERT_TRUE(witness.has_value());
  // The witness lands in the upper /25 where only `a` permits.
  EXPECT_TRUE(net::Prefix::parse("1.0.0.128/25").contains(witness->dst_ip));
  EXPECT_TRUE(evaluate(a, *witness).allowed);
  EXPECT_FALSE(evaluate(b, *witness).allowed);
}

TEST(Engine, PermittedBeyond) {
  Engine engine;
  const Policy narrow = parse_acl("permit tcp any 1.0.0.0/24 eq 80\n");
  const Policy wide =
      parse_acl("permit tcp any 1.0.0.0/16 eq 80\npermit udp any any\n");
  EXPECT_EQ(engine.permitted_beyond(narrow, wide), std::nullopt);
  ASSERT_TRUE(engine.permitted_beyond(wide, narrow).has_value());
}

TEST(Engine, ShadowedRules) {
  Engine engine;
  const Policy acl = parse_acl(
      "deny ip 10.0.0.0/8 any\n"
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "deny ip 10.1.0.0/16 any\n"          // shadowed by rule 0
      "permit tcp any 1.0.0.64/26 eq 80\n"  // shadowed by rule 1
      "permit udp any any\n");
  EXPECT_EQ(engine.shadowed_rules(acl),
            (std::vector<std::size_t>{2, 3}));
}

TEST(Engine, ShadowedRulesDenyOverridesDuplicates) {
  Engine engine;
  Policy policy = parse_acl("permit ip any any\npermit ip any any\n");
  policy.semantics = PolicySemantics::kDenyOverrides;
  // Of identical copies, every copy but the first is redundant.
  EXPECT_EQ(engine.shadowed_rules(policy), (std::vector<std::size_t>{1}));
}

TEST(Engine, ShadowedRulesDenyOverridesSubsumption) {
  Engine engine;
  Policy policy = parse_acl(
      "deny ip 10.0.0.0/8 any\n"
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "deny ip 10.1.0.0/16 any\n"           // inside rule 0's deny union
      "permit tcp any 1.0.0.64/26 eq 80\n"  // inside rule 1's permit union
      "permit udp any any\n");
  policy.semantics = PolicySemantics::kDenyOverrides;
  EXPECT_EQ(engine.shadowed_rules(policy),
            (std::vector<std::size_t>{2, 3}));
}

TEST(Engine, ShadowedRulesDenyOverridesCrossActionNotShadowed) {
  Engine engine;
  // A deny inside a permit's filter is NOT shadowed under deny-overrides:
  // it flips verdicts inside its region. Only same-action coverage counts.
  Policy policy = parse_acl(
      "permit tcp any 1.0.0.0/24 eq 80\n"
      "deny tcp any 1.0.0.0/26 eq 80\n");
  policy.semantics = PolicySemantics::kDenyOverrides;
  EXPECT_TRUE(engine.shadowed_rules(policy).empty());
}

TEST(Engine, ShadowedRulesDenyOverridesOrderIndependentUnion) {
  Engine engine;
  // Two /25s jointly cover the /24 that follows them: shadowing is about
  // the union of earlier same-action rules, not any single one.
  Policy policy = parse_acl(
      "permit tcp any 1.0.0.0/25 eq 80\n"
      "permit tcp any 1.0.0.128/25 eq 80\n"
      "permit tcp any 1.0.0.0/24 eq 80\n");
  policy.semantics = PolicySemantics::kDenyOverrides;
  EXPECT_EQ(engine.shadowed_rules(policy), (std::vector<std::size_t>{2}));
}

TEST(Engine, DenyOverridesContractChecking) {
  Engine engine;
  Policy policy{.name = "fw",
                .semantics = PolicySemantics::kDenyOverrides,
                .rules = {}};
  policy.rules.push_back(Rule{.action = Action::kPermit,
                              .protocol = net::ProtocolSpec::any(),
                              .src = net::Prefix::default_route(),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::default_route(),
                              .dst_ports = net::PortRange::any()});
  policy.rules.push_back(Rule{.action = Action::kDeny,
                              .protocol = net::ProtocolSpec::any(),
                              .src = net::Prefix::default_route(),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::parse("168.63.129.0/24"),
                              .dst_ports = net::PortRange::any()});
  EXPECT_TRUE(
      engine.check(policy, deny_contract("infra", "0.0.0.0/0",
                                         "168.63.129.0/24"))
          .holds);
  EXPECT_TRUE(engine
                  .check(policy, allow_contract("web", "8.8.8.0/24",
                                                "9.9.9.0/24", 443))
                  .holds);
}

/// Property: the symbolic engine's verdicts agree with concrete evaluation.
/// For every contract check, sample concrete packets inside the contract
/// filter; if any sampled packet's concrete decision contradicts the
/// expectation, the engine must have flagged the contract; conversely, the
/// engine's witness (when present) must concretely violate the expectation.
TEST(EngineProperty, SymbolicAgreesWithConcreteEvaluation) {
  Engine engine;
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(8, 28);
  std::uniform_int_distribution<int> port(0, 4);
  std::uniform_int_distribution<int> coin(0, 1);
  constexpr std::uint16_t kPorts[] = {80, 443, 445, 1000, 0xFFFF};

  for (int trial = 0; trial < 15; ++trial) {
    Policy policy{.name = "random",
                  .semantics = coin(rng) == 0
                                   ? PolicySemantics::kFirstApplicable
                                   : PolicySemantics::kDenyOverrides,
                  .rules = {}};
    for (int i = 0; i < 8; ++i) {
      policy.rules.push_back(Rule{
          .action = coin(rng) == 0 ? Action::kPermit : Action::kDeny,
          .protocol = coin(rng) == 0 ? net::ProtocolSpec::any()
                                     : net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .dst_ports = coin(rng) == 0
                           ? net::PortRange::any()
                           : net::PortRange::exactly(kPorts[port(rng)])});
    }
    for (int c = 0; c < 6; ++c) {
      const ConnectivityContract contract{
          .name = "c",
          .expect = coin(rng) == 0 ? Expectation::kAllow
                                   : Expectation::kDeny,
          .protocol = net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .dst_ports = net::PortRange::exactly(kPorts[port(rng)])};
      const auto result = engine.check(policy, contract);

      if (!result.holds) {
        ASSERT_TRUE(result.witness.has_value());
        EXPECT_TRUE(contract.covers(*result.witness));
        const bool allowed = evaluate(policy, *result.witness).allowed;
        EXPECT_EQ(allowed, contract.expect == Expectation::kDeny);
      } else {
        // Sample packets inside the contract; none may contradict it.
        for (int s = 0; s < 50; ++s) {
          const net::PacketHeader packet{
              .src_ip = net::Ipv4Address(
                  contract.src.network().value() |
                  (addr(rng) & ~contract.src.mask().value())),
              .src_port = static_cast<std::uint16_t>(addr(rng) & 0xFFFF),
              .dst_ip = net::Ipv4Address(
                  contract.dst.network().value() |
                  (addr(rng) & ~contract.dst.mask().value())),
              .dst_port = contract.dst_ports.lo,
              .protocol = 6};
          const bool allowed = evaluate(policy, packet).allowed;
          EXPECT_EQ(allowed, contract.expect == Expectation::kAllow)
              << packet.to_string();
        }
      }
    }
  }
}

}  // namespace
}  // namespace dcv::secguru
