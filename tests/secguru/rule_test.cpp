#include "secguru/rule.hpp"

#include <gtest/gtest.h>

namespace dcv::secguru {
namespace {

net::PacketHeader packet(const char* src, std::uint16_t sport,
                         const char* dst, std::uint16_t dport,
                         std::uint8_t proto = 6) {
  return net::PacketHeader{.src_ip = net::Ipv4Address::parse(src),
                           .src_port = sport,
                           .dst_ip = net::Ipv4Address::parse(dst),
                           .dst_port = dport,
                           .protocol = proto};
}

Rule permit_tcp_to(const char* dst, std::uint16_t port) {
  return Rule{.action = Action::kPermit,
              .protocol = net::ProtocolSpec::tcp(),
              .src = net::Prefix::default_route(),
              .src_ports = net::PortRange::any(),
              .dst = net::Prefix::parse(dst),
              .dst_ports = net::PortRange::exactly(port)};
}

TEST(Rule, MatchesFiveTupleConjunction) {
  const Rule r = permit_tcp_to("10.0.0.0/24", 443);
  EXPECT_TRUE(r.matches(packet("1.2.3.4", 999, "10.0.0.7", 443)));
  EXPECT_FALSE(r.matches(packet("1.2.3.4", 999, "10.0.1.7", 443)));  // dst
  EXPECT_FALSE(r.matches(packet("1.2.3.4", 999, "10.0.0.7", 80)));   // port
  EXPECT_FALSE(
      r.matches(packet("1.2.3.4", 999, "10.0.0.7", 443, 17)));  // proto
}

TEST(Rule, ToStringCiscoStyle) {
  EXPECT_EQ(permit_tcp_to("10.0.0.0/24", 443).to_string(),
            "permit tcp any 10.0.0.0/24 eq 443");
  const Rule host{.action = Action::kDeny,
                  .protocol = net::ProtocolSpec::any(),
                  .src = net::Prefix::parse("1.2.3.4/32"),
                  .src_ports = net::PortRange::any(),
                  .dst = net::Prefix::default_route(),
                  .dst_ports = net::PortRange::any()};
  EXPECT_EQ(host.to_string(), "deny ip host 1.2.3.4 any");
  const Rule range{.action = Action::kPermit,
                   .protocol = net::ProtocolSpec::udp(),
                   .src = net::Prefix::parse("10.0.0.0/8"),
                   .src_ports = net::PortRange(100, 200),
                   .dst = net::Prefix::default_route(),
                   .dst_ports = net::PortRange::any()};
  EXPECT_EQ(range.to_string(), "permit udp 10.0.0.0/8 range 100 200 any");
}

TEST(Evaluate, FirstApplicableOrderMatters) {
  Policy policy{.name = "p",
                .semantics = PolicySemantics::kFirstApplicable,
                .rules = {}};
  policy.rules.push_back(Rule{.action = Action::kDeny,
                              .protocol = net::ProtocolSpec::tcp(),
                              .src = net::Prefix::default_route(),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::default_route(),
                              .dst_ports = net::PortRange::exactly(445)});
  policy.rules.push_back(permit_tcp_to("10.0.0.0/24", 445));

  // The deny comes first, so port 445 is blocked even to the permit's dst.
  const auto decision = evaluate(policy, packet("1.1.1.1", 1, "10.0.0.5", 445));
  EXPECT_FALSE(decision.allowed);
  EXPECT_EQ(decision.rule_index, 0u);

  // Swapped order permits it.
  std::swap(policy.rules[0], policy.rules[1]);
  EXPECT_TRUE(evaluate(policy, packet("1.1.1.1", 1, "10.0.0.5", 445)).allowed);
}

TEST(Evaluate, FirstApplicableDefaultDeny) {
  const Policy policy{.name = "p",
                      .semantics = PolicySemantics::kFirstApplicable,
                      .rules = {permit_tcp_to("10.0.0.0/24", 443)}};
  const auto decision =
      evaluate(policy, packet("1.1.1.1", 1, "99.0.0.1", 443));
  EXPECT_FALSE(decision.allowed);
  EXPECT_EQ(decision.rule_index, std::nullopt);
}

TEST(Evaluate, DenyOverridesBeatsAllowOrder) {
  Policy policy{.name = "p",
                .semantics = PolicySemantics::kDenyOverrides,
                .rules = {}};
  // Allow listed first, deny later: deny still wins (order-insensitive).
  policy.rules.push_back(permit_tcp_to("10.0.0.0/24", 445));
  policy.rules.push_back(Rule{.action = Action::kDeny,
                              .protocol = net::ProtocolSpec::tcp(),
                              .src = net::Prefix::default_route(),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::default_route(),
                              .dst_ports = net::PortRange::exactly(445)});
  const auto decision =
      evaluate(policy, packet("1.1.1.1", 1, "10.0.0.5", 445));
  EXPECT_FALSE(decision.allowed);
  EXPECT_EQ(decision.rule_index, 1u);  // the deciding deny
}

TEST(Evaluate, DenyOverridesNeedsSomeAllow) {
  const Policy policy{.name = "p",
                      .semantics = PolicySemantics::kDenyOverrides,
                      .rules = {}};
  EXPECT_FALSE(evaluate(policy, packet("1.1.1.1", 1, "2.2.2.2", 80)).allowed);
}

TEST(Evaluate, DenyOverridesAllowWhenNoDenyApplies) {
  const Policy policy{.name = "p",
                      .semantics = PolicySemantics::kDenyOverrides,
                      .rules = {permit_tcp_to("10.0.0.0/24", 443)}};
  EXPECT_TRUE(evaluate(policy, packet("1.1.1.1", 1, "10.0.0.5", 443)).allowed);
}

TEST(PolicyText, SemanticsNames) {
  EXPECT_EQ(to_string(PolicySemantics::kFirstApplicable),
            "first-applicable");
  EXPECT_EQ(to_string(PolicySemantics::kDenyOverrides), "deny-overrides");
  EXPECT_EQ(to_string(Action::kPermit), "permit");
  EXPECT_EQ(to_string(Action::kDeny), "deny");
}

}  // namespace
}  // namespace dcv::secguru
