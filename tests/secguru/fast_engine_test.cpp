#include "secguru/fast_engine.hpp"

#include <gtest/gtest.h>

#include <random>

#include "obs/metrics.hpp"
#include "secguru/acl_parser.hpp"
#include "secguru/contracts_io.hpp"
#include "secguru/engine.hpp"

namespace dcv::secguru {
namespace {

ConnectivityContract deny_contract(const char* name, const char* src,
                                   const char* dst) {
  return ConnectivityContract{.name = name,
                              .expect = Expectation::kDeny,
                              .protocol = net::ProtocolSpec::any(),
                              .src = net::Prefix::parse(src),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::parse(dst),
                              .dst_ports = net::PortRange::any()};
}

ConnectivityContract allow_contract(const char* name, const char* src,
                                    const char* dst, std::uint16_t port) {
  return ConnectivityContract{.name = name,
                              .expect = Expectation::kAllow,
                              .protocol = net::ProtocolSpec::tcp(),
                              .src = net::Prefix::parse(src),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::parse(dst),
                              .dst_ports = net::PortRange::exactly(port)};
}

constexpr const char* kSmallAcl = R"(remark private isolation
deny ip 10.0.0.0/8 any
remark port blocks
deny tcp any any eq 445
remark service permits
permit tcp any 104.208.32.0/20 eq 443
permit tcp any 104.208.32.0/20 eq 80
)";

// --- PacketCube algebra -----------------------------------------------

PacketCube cube(const char* src, std::uint16_t sp_lo, std::uint16_t sp_hi,
                const char* dst, std::uint16_t dp_lo, std::uint16_t dp_hi,
                std::uint8_t proto_lo = 0, std::uint8_t proto_hi = 0xFF) {
  return PacketCube{
      .src = net::AddressInterval::from_prefix(net::Prefix::parse(src)),
      .src_ports = net::PortRange(sp_lo, sp_hi),
      .dst = net::AddressInterval::from_prefix(net::Prefix::parse(dst)),
      .dst_ports = net::PortRange(dp_lo, dp_hi),
      .proto_lo = proto_lo,
      .proto_hi = proto_hi};
}

TEST(PacketCube, IntersectDisjointAndOverlap) {
  const PacketCube a = cube("1.0.0.0/24", 0, 0xFFFF, "0.0.0.0/0", 0, 0xFFFF);
  const PacketCube b = cube("2.0.0.0/24", 0, 0xFFFF, "0.0.0.0/0", 0, 0xFFFF);
  EXPECT_FALSE(a.intersect(b).has_value());
  EXPECT_FALSE(a.overlaps(b));

  const PacketCube c = cube("1.0.0.0/25", 100, 200, "0.0.0.0/0", 443, 443);
  const auto inter = a.intersect(c);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(inter->src.lo, net::Ipv4Address::from_octets(1, 0, 0, 0));
  EXPECT_EQ(inter->src.hi, net::Ipv4Address::from_octets(1, 0, 0, 127));
  EXPECT_EQ(inter->src_ports, net::PortRange(100, 200));
  EXPECT_EQ(inter->dst_ports, net::PortRange(443, 443));
}

TEST(PacketCube, SubtractProducesDisjointExactCover) {
  // Property, checked by exhaustive membership over a tiny grid: the
  // subtraction pieces exactly cover a \ b, pairwise disjointly.
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::uint32_t> coord(0, 7);
  const auto random_cube = [&]() {
    PacketCube c{};
    const std::uint32_t s1 = coord(rng), s2 = coord(rng);
    const std::uint32_t d1 = coord(rng), d2 = coord(rng);
    c.src = {net::Ipv4Address(std::min(s1, s2)),
             net::Ipv4Address(std::max(s1, s2))};
    c.dst = {net::Ipv4Address(std::min(d1, d2)),
             net::Ipv4Address(std::max(d1, d2))};
    const auto p1 = static_cast<std::uint16_t>(coord(rng));
    const auto p2 = static_cast<std::uint16_t>(coord(rng));
    c.src_ports = net::PortRange(std::min(p1, p2), std::max(p1, p2));
    c.dst_ports = net::PortRange::any();
    c.proto_lo = 0;
    c.proto_hi = 0xFF;
    return c;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const PacketCube a = random_cube();
    const PacketCube b = random_cube();
    std::vector<PacketCube> pieces;
    a.subtract(b, pieces);
    EXPECT_LE(pieces.size(), 10u);
    for (std::uint32_t s = 0; s <= 7; ++s) {
      for (std::uint32_t d = 0; d <= 7; ++d) {
        for (std::uint16_t p = 0; p <= 7; ++p) {
          const net::PacketHeader packet{.src_ip = net::Ipv4Address(s),
                                         .src_port = p,
                                         .dst_ip = net::Ipv4Address(d),
                                         .dst_port = 0,
                                         .protocol = 6};
          const bool in_diff = a.contains(packet) && !b.contains(packet);
          int covering = 0;
          for (const PacketCube& piece : pieces) {
            EXPECT_TRUE(piece.valid());
            if (piece.contains(packet)) ++covering;
          }
          EXPECT_EQ(covering, in_diff ? 1 : 0)
              << "a=" << a.to_string() << " b=" << b.to_string()
              << " packet=" << packet.to_string();
        }
      }
    }
  }
}

TEST(PacketCube, SubtractDisjointKeepsWholeCube) {
  const PacketCube a = cube("1.0.0.0/24", 0, 0xFFFF, "0.0.0.0/0", 0, 0xFFFF);
  const PacketCube b = cube("2.0.0.0/24", 0, 0xFFFF, "0.0.0.0/0", 0, 0xFFFF);
  std::vector<PacketCube> pieces;
  a.subtract(b, pieces);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].src.lo, a.src.lo);
  EXPECT_EQ(pieces[0].src.hi, a.src.hi);
}

TEST(PacketCube, SubtractCoveringCubeLeavesNothing) {
  const PacketCube a = cube("1.0.0.0/24", 100, 200, "9.9.9.0/24", 443, 443,
                            6, 6);
  const PacketCube b = cube("0.0.0.0/0", 0, 0xFFFF, "0.0.0.0/0", 0, 0xFFFF);
  std::vector<PacketCube> pieces;
  a.subtract(b, pieces);
  EXPECT_TRUE(pieces.empty());
}

TEST(PacketCube, FromRuleClampsProtocol) {
  const Policy acl = parse_acl("permit tcp any 1.0.0.0/24 eq 80\n");
  const PacketCube c = PacketCube::from_rule(acl.rules[0]);
  EXPECT_EQ(c.proto_lo, 6);
  EXPECT_EQ(c.proto_hi, 6);
  EXPECT_EQ(c.dst_ports, net::PortRange::exactly(80));
  const Policy wildcard = parse_acl("permit ip any any\n");
  const PacketCube w = PacketCube::from_rule(wildcard.rules[0]);
  EXPECT_EQ(w.proto_lo, 0);
  EXPECT_EQ(w.proto_hi, 0xFF);
}

TEST(PacketCube, LowCornerIsContained) {
  const PacketCube c = cube("1.0.0.0/24", 100, 200, "9.9.9.0/24", 443, 443,
                            6, 17);
  EXPECT_TRUE(c.contains(c.low_corner()));
  EXPECT_EQ(c.low_corner().protocol, 6);
  EXPECT_EQ(c.low_corner().dst_port, 443);
}

// --- FastEngine verdicts (mirror of the Engine tests) ------------------

TEST(FastEngine, DenyContractHolds) {
  FastEngine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const auto result =
      engine.check(acl, deny_contract("private", "10.0.0.0/8", "0.0.0.0/0"));
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.witness.has_value());
  EXPECT_EQ(engine.fastpath_hits(), 1u);
  EXPECT_EQ(engine.smt_fallbacks(), 0u);
}

TEST(FastEngine, AllowContractHolds) {
  FastEngine engine;
  const Policy acl = parse_acl(kSmallAcl);
  EXPECT_TRUE(engine
                  .check(acl, allow_contract("web", "8.8.8.0/24",
                                             "104.208.32.0/20", 443))
                  .holds);
}

TEST(FastEngine, AllowContractViolatedWithWitnessAndRule) {
  FastEngine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const auto result = engine.check(
      acl, allow_contract("smb", "8.8.8.0/24", "104.208.32.0/20", 445));
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(net::Prefix::parse("104.208.32.0/20")
                  .contains(result.witness->dst_ip));
  EXPECT_EQ(result.witness->dst_port, 445);
  ASSERT_TRUE(result.violating_rule.has_value());
  EXPECT_EQ(*result.violating_rule, 1u);
}

TEST(FastEngine, AllowContractViolatedByDefaultDeny) {
  FastEngine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const auto result = engine.check(
      acl, allow_contract("other", "8.8.8.0/24", "9.9.9.0/24", 443));
  EXPECT_FALSE(result.holds);
  EXPECT_EQ(result.violating_rule, std::nullopt);
}

TEST(FastEngine, DenyContractViolatedPointsAtPermit) {
  FastEngine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const auto result = engine.check(
      acl, deny_contract("leak", "8.8.8.0/24", "104.208.32.0/20"));
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.violating_rule.has_value());
  EXPECT_GE(*result.violating_rule, 2u);
}

TEST(FastEngine, DenyOverridesContractChecking) {
  FastEngine engine;
  Policy policy{.name = "fw",
                .semantics = PolicySemantics::kDenyOverrides,
                .rules = {}};
  policy.rules.push_back(Rule{.action = Action::kPermit,
                              .protocol = net::ProtocolSpec::any(),
                              .src = net::Prefix::default_route(),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::default_route(),
                              .dst_ports = net::PortRange::any()});
  policy.rules.push_back(Rule{.action = Action::kDeny,
                              .protocol = net::ProtocolSpec::any(),
                              .src = net::Prefix::default_route(),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::parse("168.63.129.0/24"),
                              .dst_ports = net::PortRange::any()});
  EXPECT_TRUE(
      engine.check(policy, deny_contract("infra", "0.0.0.0/0",
                                         "168.63.129.0/24"))
          .holds);
  EXPECT_TRUE(engine
                  .check(policy, allow_contract("web", "8.8.8.0/24",
                                                "9.9.9.0/24", 443))
                  .holds);
  // An allow contract into the denied range fails with a deny witness.
  const auto result = engine.check(
      policy, allow_contract("blocked", "8.8.8.0/24", "168.63.129.0/24", 443));
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.violating_rule.has_value());
  EXPECT_EQ(*result.violating_rule, 1u);
}

TEST(FastEngine, DenyOverridesUncoveredTrafficFailsAllow) {
  FastEngine engine;
  Policy policy = parse_acl("permit tcp any 1.0.0.0/25 eq 80\n");
  policy.semantics = PolicySemantics::kDenyOverrides;
  // The upper /25 matches no permit at all: default denied.
  const auto result = engine.check(
      policy, allow_contract("half", "8.8.8.0/24", "1.0.0.0/24", 80));
  EXPECT_FALSE(result.holds);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(net::Prefix::parse("1.0.0.128/25")
                  .contains(result.witness->dst_ip));
  EXPECT_EQ(result.violating_rule, std::nullopt);
}

TEST(FastEngine, InvertedPortRangeRuleMatchesNothing) {
  // An inverted (empty) port range must behave as the empty set, exactly
  // as evaluate() and the SMT encoding treat it.
  Policy policy = parse_acl(
      "deny tcp any any eq 445\npermit tcp any 1.0.0.0/24 eq 443\n");
  policy.rules[0].dst_ports = net::PortRange(500, 400);  // empty deny
  FastEngine fast;
  Engine slow;
  const auto contract =
      allow_contract("web", "8.8.8.0/24", "1.0.0.0/24", 443);
  EXPECT_EQ(fast.check(policy, contract).holds,
            slow.check(policy, contract).holds);
  EXPECT_TRUE(fast.check(policy, contract).holds);
}

// --- Fallback behavior -------------------------------------------------

TEST(FastEngine, TinyBudgetFallsBackToZ3AndStaysCorrect) {
  // A budget of 1 residual cube makes any fragmenting subtraction
  // inconclusive; verdicts must then come from Z3 and still be right.
  FastEngine fast(FastEngineConfig{.max_residual_cubes = 1});
  Engine slow;
  const Policy acl = parse_acl(kSmallAcl);
  // The "straddle" contract's port range [0, 444] splits on the eq-443
  // permit, exceeding the 1-cube budget; the others stay on the fast path.
  ConnectivityContract straddle =
      allow_contract("straddle", "8.8.8.0/24", "104.208.32.0/20", 0);
  straddle.dst_ports = net::PortRange(0, 444);
  const ContractSuite suite{
      .name = "s",
      .contracts = {
          deny_contract("ok", "10.0.0.0/8", "0.0.0.0/0"),
          allow_contract("fails", "8.8.8.0/24", "9.9.9.0/24", 443),
          straddle,
          allow_contract("ok2", "8.8.8.0/24", "104.208.32.0/20", 80)}};
  const PolicyReport fast_report = fast.check_suite(acl, suite);
  const PolicyReport slow_report = slow.check_suite(acl, suite);
  ASSERT_EQ(fast_report.failures.size(), slow_report.failures.size());
  for (std::size_t i = 0; i < fast_report.failures.size(); ++i) {
    EXPECT_EQ(fast_report.failures[i].contract_name,
              slow_report.failures[i].contract_name);
  }
  EXPECT_GT(fast.smt_fallbacks(), 0u);
  EXPECT_GT(fast.fastpath_hits(), 0u);
}

// --- check_suite: ordering and parallelism -----------------------------

TEST(FastEngine, CheckSuiteCollectsFailuresInContractOrder) {
  FastEngine engine;
  const Policy acl = parse_acl(kSmallAcl);
  const ContractSuite suite{
      .name = "s",
      .contracts = {
          allow_contract("f1", "8.8.8.0/24", "9.9.9.0/24", 443),
          deny_contract("ok", "10.0.0.0/8", "0.0.0.0/0"),
          allow_contract("f2", "8.8.8.0/24", "104.208.32.0/20", 445),
          allow_contract("f3", "8.8.8.0/24", "7.7.7.0/24", 80)}};
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const PolicyReport report = engine.check_suite(acl, suite, threads);
    EXPECT_EQ(report.contracts_checked, 4u);
    ASSERT_EQ(report.failures.size(), 3u) << threads << " threads";
    EXPECT_EQ(report.failures[0].contract_name, "f1");
    EXPECT_EQ(report.failures[1].contract_name, "f2");
    EXPECT_EQ(report.failures[2].contract_name, "f3");
  }
}

TEST(FastEngine, ParallelSuiteMatchesSerialWithFallbacks) {
  // Tiny budget forces Z3 fallbacks inside worker threads: the pooled
  // engines must keep parallel results identical to serial ones.
  const Policy acl = parse_acl(kSmallAcl);
  ContractSuite suite{.name = "s", .contracts = {}};
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      const std::string dst = std::to_string(9 + (i % 7)) + ".9.9.0/24";
      suite.contracts.push_back(allow_contract(
          ("c" + std::to_string(i)).c_str(), "8.8.8.0/24", dst.c_str(),
          static_cast<std::uint16_t>(80 + i)));
    } else {
      // Port range straddling the eq-443 permit (while dodging the 445
      // deny): subtracting the permit splits the port dimension into two
      // pieces, blowing a budget of 1 and forcing the Z3 fallback inside
      // whichever worker draws the contract.
      ConnectivityContract wide = allow_contract(
          ("w" + std::to_string(i)).c_str(), "8.8.8.0/24",
          "104.208.32.0/20", 0);
      wide.dst_ports = net::PortRange(0, 444);
      suite.contracts.push_back(std::move(wide));
    }
  }
  FastEngine serial(FastEngineConfig{.max_residual_cubes = 1});
  FastEngine parallel(FastEngineConfig{.max_residual_cubes = 1});
  const PolicyReport a = serial.check_suite(acl, suite, 1);
  const PolicyReport b = parallel.check_suite(acl, suite, 4);
  EXPECT_GT(serial.smt_fallbacks(), 0u);
  EXPECT_GT(parallel.smt_fallbacks(), 0u);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].contract_name, b.failures[i].contract_name);
    EXPECT_EQ(a.failures[i].holds, b.failures[i].holds);
  }
}

// --- Randomized FastEngine ≡ Engine differential -----------------------

TEST(FastEngineProperty, AgreesWithZ3EngineOnRandomPolicies) {
  Engine slow;
  FastEngine fast;
  std::mt19937_64 rng(97);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(8, 30);
  std::uniform_int_distribution<int> port(0, 4);
  std::uniform_int_distribution<int> coin(0, 1);
  constexpr std::uint16_t kPorts[] = {80, 443, 445, 1000, 0xFFFF};

  for (int trial = 0; trial < 30; ++trial) {
    Policy policy{.name = "random",
                  .semantics = coin(rng) == 0
                                   ? PolicySemantics::kFirstApplicable
                                   : PolicySemantics::kDenyOverrides,
                  .rules = {}};
    for (int i = 0; i < 10; ++i) {
      policy.rules.push_back(Rule{
          .action = coin(rng) == 0 ? Action::kPermit : Action::kDeny,
          .protocol = coin(rng) == 0 ? net::ProtocolSpec::any()
                                     : net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .dst_ports = coin(rng) == 0
                           ? net::PortRange::any()
                           : net::PortRange::exactly(kPorts[port(rng)])});
    }
    for (int c = 0; c < 8; ++c) {
      const ConnectivityContract contract{
          .name = "c",
          .expect = coin(rng) == 0 ? Expectation::kAllow
                                   : Expectation::kDeny,
          .protocol = coin(rng) == 0 ? net::ProtocolSpec::any()
                                     : net::ProtocolSpec::tcp(),
          .src = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .src_ports = net::PortRange::any(),
          .dst = net::Prefix(net::Ipv4Address(addr(rng)), len(rng)),
          .dst_ports = coin(rng) == 0
                           ? net::PortRange::any()
                           : net::PortRange::exactly(kPorts[port(rng)])};
      const auto fast_result = fast.check(policy, contract);
      const auto slow_result = slow.check(policy, contract);
      ASSERT_EQ(fast_result.holds, slow_result.holds)
          << "semantics="
          << (policy.semantics == PolicySemantics::kFirstApplicable
                  ? "first-applicable"
                  : "deny-overrides")
          << " trial=" << trial << " contract=" << c;
      if (!fast_result.holds) {
        // Any witness is fine, but it must be a real one: inside the
        // contract filter and concretely contradicting the expectation.
        ASSERT_TRUE(fast_result.witness.has_value());
        EXPECT_TRUE(contract.covers(*fast_result.witness));
        EXPECT_EQ(evaluate(policy, *fast_result.witness).allowed,
                  contract.expect == Expectation::kDeny);
        EXPECT_EQ(fast_result.violating_rule,
                  evaluate(policy, *fast_result.witness).rule_index);
      }
    }
  }
  // This workload is interval-friendly; the fast path must carry it.
  EXPECT_GT(fast.fastpath_hits(), 0u);
}

// --- Metrics -----------------------------------------------------------

TEST(FastEngine, RegistersAndDrivesMetrics) {
  obs::MetricsRegistry registry;
  FastEngine engine(FastEngineConfig{}, &registry);
  const Policy acl = parse_acl(kSmallAcl);
  (void)engine.check(acl,
                     allow_contract("web", "8.8.8.0/24",
                                    "104.208.32.0/20", 443));
  EXPECT_EQ(registry
                .counter("dcv_secguru_fastpath_hits_total",
                         "Contract checks decided by interval algebra "
                         "without Z3")
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("dcv_secguru_smt_fallbacks_total",
                         "Contract checks that fell back to the Z3 engine")
                .value(),
            0u);
  EXPECT_EQ(registry
                .histogram("dcv_secguru_check_ns",
                           "SecGuru contract check latency (ns)")
                .count(),
            1u);
}

// --- IncrementalSuiteChecker -------------------------------------------

ContractSuite small_suite() {
  return ContractSuite{
      .name = "s",
      .contracts = {
          deny_contract("private", "10.0.0.0/8", "0.0.0.0/0"),
          allow_contract("web", "8.8.8.0/24", "104.208.32.0/20", 443),
          allow_contract("alt", "8.8.8.0/24", "104.208.32.0/20", 80),
          deny_contract("other-net", "8.8.8.0/24", "77.0.0.0/8")}};
}

TEST(IncrementalSuiteChecker, FirstCheckVerifiesEverything) {
  FastEngine engine;
  IncrementalSuiteChecker checker(engine, small_suite());
  const Policy acl = parse_acl(kSmallAcl);
  const auto outcome = checker.check(acl);
  EXPECT_EQ(outcome.reverified, 4u);
  EXPECT_EQ(outcome.skipped, 0u);
  EXPECT_TRUE(outcome.report.ok());
}

TEST(IncrementalSuiteChecker, NoChangeSkipsEverything) {
  FastEngine engine;
  IncrementalSuiteChecker checker(engine, small_suite());
  const Policy acl = parse_acl(kSmallAcl);
  (void)checker.check(acl);
  const auto outcome = checker.check(acl);
  EXPECT_EQ(outcome.reverified, 0u);
  EXPECT_EQ(outcome.skipped, 4u);
  EXPECT_TRUE(outcome.report.ok());
}

TEST(IncrementalSuiteChecker, OneRuleEditReverifiesOnlyIntersecting) {
  FastEngine engine;
  IncrementalSuiteChecker checker(engine, small_suite());
  const Policy acl = parse_acl(kSmallAcl);
  (void)checker.check(acl);

  // Append a deny whose cube (any -> 77.0.0.0/8) intersects exactly two
  // contract filters: "other-net" (dst 77/8) and "private" (dst any). The
  // two contracts aimed at 104.208.32.0/20 cannot be affected and replay.
  Policy edited = acl;
  edited.rules.push_back(Rule{.action = Action::kDeny,
                              .protocol = net::ProtocolSpec::any(),
                              .src = net::Prefix::default_route(),
                              .src_ports = net::PortRange::any(),
                              .dst = net::Prefix::parse("77.0.0.0/8"),
                              .dst_ports = net::PortRange::any()});
  const auto outcome = checker.check(edited);
  EXPECT_EQ(outcome.reverified, 2u);
  EXPECT_EQ(outcome.skipped, 2u);
  EXPECT_TRUE(outcome.report.ok());

  // The incremental report must be identical to a fresh full check.
  FastEngine fresh_engine;
  const PolicyReport full =
      fresh_engine.check_suite(edited, checker.suite());
  EXPECT_EQ(outcome.report.failures.size(), full.failures.size());
}

TEST(IncrementalSuiteChecker, EditFlippingAVerdictIsCaught) {
  FastEngine engine;
  IncrementalSuiteChecker checker(engine, small_suite());
  const Policy acl = parse_acl(kSmallAcl);
  EXPECT_TRUE(checker.check(acl).report.ok());

  // A lockdown deny ahead of the permits breaks the two allow contracts.
  Policy edited = acl;
  edited.rules.insert(
      edited.rules.begin(),
      Rule{.action = Action::kDeny,
           .protocol = net::ProtocolSpec::any(),
           .src = net::Prefix::default_route(),
           .src_ports = net::PortRange::any(),
           .dst = net::Prefix::parse("104.208.32.0/20"),
           .dst_ports = net::PortRange::any()});
  const auto outcome = checker.check(edited);
  EXPECT_EQ(outcome.report.failures.size(), 2u);
  // Reverting the edit flips the verdicts back, again incrementally.
  const auto reverted = checker.check(acl);
  EXPECT_TRUE(reverted.report.ok());
  EXPECT_GT(reverted.skipped, 0u);
}

TEST(IncrementalSuiteChecker, SemanticsChangeForcesFullRecheck) {
  FastEngine engine;
  IncrementalSuiteChecker checker(engine, small_suite());
  const Policy acl = parse_acl(kSmallAcl);
  (void)checker.check(acl);
  Policy flipped = acl;
  flipped.semantics = PolicySemantics::kDenyOverrides;
  const auto outcome = checker.check(flipped);
  EXPECT_EQ(outcome.reverified, 4u);
  EXPECT_EQ(outcome.skipped, 0u);
}

TEST(IncrementalSuiteChecker, ResetDropsCache) {
  FastEngine engine;
  IncrementalSuiteChecker checker(engine, small_suite());
  const Policy acl = parse_acl(kSmallAcl);
  (void)checker.check(acl);
  checker.reset();
  const auto outcome = checker.check(acl);
  EXPECT_EQ(outcome.reverified, 4u);
  EXPECT_EQ(outcome.skipped, 0u);
}

TEST(IncrementalSuiteChecker, CountsFlowIntoMetrics) {
  obs::MetricsRegistry registry;
  FastEngine engine;
  IncrementalSuiteChecker checker(engine, small_suite(), &registry);
  const Policy acl = parse_acl(kSmallAcl);
  (void)checker.check(acl);
  (void)checker.check(acl);
  EXPECT_EQ(registry
                .counter("dcv_secguru_contracts_reverified_total",
                         "Contracts re-verified because a rule edit "
                         "touched their filter")
                .value(),
            4u);
  EXPECT_EQ(registry
                .counter("dcv_secguru_contracts_skipped_total",
                         "Contracts whose cached verdict was replayed "
                         "across a rule edit")
                .value(),
            4u);
}

}  // namespace
}  // namespace dcv::secguru
