#include "secguru/device_config.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace dcv::secguru {
namespace {

constexpr const char* kConfig = R"(hostname edge-1
!
ip access-list extended EDGE-IN
 remark Isolating private addresses
 deny ip 10.0.0.0/8 any
 deny tcp any any eq 445
 permit ip any 104.208.32.0/20
!
ip access-list extended MGMT
 permit tcp host 192.0.2.9 any eq 22
!
interface Ethernet1
 description uplink to ISP
 ip address 192.0.2.1/31
 ip access-group EDGE-IN in
!
interface Ethernet2
 ip address 192.0.2.3/31
 shutdown
!
router bgp 65535
 neighbor 192.0.2.0 remote-as 65100
 neighbor 192.0.2.2 remote-as 65101
 neighbor 192.0.2.2 shutdown
)";

TEST(DeviceConfig, ParsesFullConfig) {
  const DeviceConfig config = parse_device_config(kConfig);
  EXPECT_EQ(config.hostname, "edge-1");
  ASSERT_EQ(config.acls.size(), 2u);

  const Policy* edge_in = config.find_acl("EDGE-IN");
  ASSERT_NE(edge_in, nullptr);
  ASSERT_EQ(edge_in->rules.size(), 3u);
  EXPECT_EQ(edge_in->rules[0].comment, "Isolating private addresses");
  EXPECT_EQ(edge_in->rules[1].dst_ports, net::PortRange::exactly(445));
  EXPECT_EQ(config.find_acl("NOPE"), nullptr);

  ASSERT_EQ(config.interfaces.size(), 2u);
  EXPECT_EQ(config.interfaces[0].name, "Ethernet1");
  EXPECT_EQ(config.interfaces[0].description, "uplink to ISP");
  ASSERT_TRUE(config.interfaces[0].address.has_value());
  EXPECT_EQ(config.interfaces[0].address->to_string(), "192.0.2.1/31");
  EXPECT_EQ(config.interfaces[0].acl_in, "EDGE-IN");
  EXPECT_FALSE(config.interfaces[0].shutdown);
  EXPECT_TRUE(config.interfaces[1].shutdown);

  ASSERT_TRUE(config.local_as.has_value());
  EXPECT_EQ(*config.local_as, 65535u);
  ASSERT_EQ(config.bgp_neighbors.size(), 2u);
  EXPECT_EQ(config.bgp_neighbors[0].remote_as, 65100u);
  EXPECT_FALSE(config.bgp_neighbors[0].shutdown);
  EXPECT_TRUE(config.bgp_neighbors[1].shutdown);
}

TEST(DeviceConfig, InterfaceWithAcl) {
  const DeviceConfig config = parse_device_config(kConfig);
  const InterfaceConfig* interface = config.interface_with_acl("EDGE-IN");
  ASSERT_NE(interface, nullptr);
  EXPECT_EQ(interface->name, "Ethernet1");
  EXPECT_EQ(config.interface_with_acl("MGMT"), nullptr);
}

TEST(DeviceConfig, RoundTrip) {
  const DeviceConfig original = parse_device_config(kConfig);
  const DeviceConfig reparsed =
      parse_device_config(write_device_config(original));
  EXPECT_EQ(original.hostname, reparsed.hostname);
  EXPECT_EQ(original.interfaces, reparsed.interfaces);
  EXPECT_EQ(original.local_as, reparsed.local_as);
  EXPECT_EQ(original.bgp_neighbors, reparsed.bgp_neighbors);
  ASSERT_EQ(original.acls.size(), reparsed.acls.size());
  for (const auto& [name, acl] : original.acls) {
    const Policy* other = reparsed.find_acl(name);
    ASSERT_NE(other, nullptr) << name;
    ASSERT_EQ(acl.rules.size(), other->rules.size()) << name;
    for (std::size_t i = 0; i < acl.rules.size(); ++i) {
      Rule a = acl.rules[i];
      Rule b = other->rules[i];
      a.line = b.line = 0;
      EXPECT_EQ(a, b) << name << " rule " << i;
    }
  }
}

TEST(DeviceConfig, AclErrorsCarryContext) {
  try {
    (void)parse_device_config(
        "ip access-list extended BAD\n permit banana any any\n!\n");
    FAIL() << "expected ParseError";
  } catch (const dcv::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("BAD"), std::string::npos);
  }
}

class DeviceConfigErrors : public testing::TestWithParam<const char*> {};

TEST_P(DeviceConfigErrors, Rejects) {
  EXPECT_THROW(parse_device_config(GetParam()), dcv::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DeviceConfigErrors,
    testing::Values(
        "ip access-list standard X\n",                    // not extended
        "router ospf 1\n",                                // not bgp
        "router bgp banana\n",                            // bad asn
        "interface E1\n frobnicate\n",                    // bad subcommand
        "interface E1\n ip address 1.2.3.4\n",            // missing /len
        "interface E1\n ip access-group X sideways\n",    // bad direction
        "router bgp 1\n neighbor 1.2.3.4 shutdown\n",     // undeclared
        "something unknown\n"));                          // top-level junk

TEST(DeviceConfig, EmptyConfig) {
  const DeviceConfig config = parse_device_config("");
  EXPECT_TRUE(config.hostname.empty());
  EXPECT_TRUE(config.acls.empty());
  EXPECT_FALSE(config.local_as.has_value());
}

}  // namespace
}  // namespace dcv::secguru
