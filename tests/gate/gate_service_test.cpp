// Change-gate service: precheck and NSG-check verdicts over the HTTP
// handler surface, request coalescing into shared emulator batches, the
// stale-epoch guard, and the differential guarantee that concurrent
// serving returns byte-identical answers to serialized evaluation.
#include "gate/gate_service.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "topology/clos_builder.hpp"

namespace dcv::gate {
namespace {

obs::HttpRequest post(std::string target, std::string body) {
  obs::HttpRequest request;
  request.method = "POST";
  request.target = std::move(target);
  request.body = std::move(body);
  return request;
}

constexpr const char* kGoodPlan = "change renumber ToR1\nset-asn ToR1 64900\n";
constexpr const char* kBadPlan = "change shut ToR1-A1\nshut-link ToR1 A1\n";

constexpr const char* kRestrictiveNsg =
    "priority,name,source,src_ports,destination,dst_ports,protocol,access\n"
    "4096,DenyAllInBound,Any,Any,Any,Any,Any,Deny\n";

class GateServiceTest : public testing::Test {
 protected:
  GateServiceTest() : topology_(topo::build_figure3()) {}

  GateConfig quick_config() const {
    GateConfig config;
    config.batch_window = std::chrono::milliseconds(0);
    return config;
  }

  topo::Topology topology_;
};

TEST_F(GateServiceTest, PrecheckVerdictsMatchTheChange) {
  GateService service(topology_, quick_config());

  const auto approved = service.handle_precheck(post("/precheck", kGoodPlan));
  EXPECT_EQ(approved.status, 200);
  EXPECT_EQ(approved.body.rfind("decision: approved\n", 0), 0u)
      << approved.body;
  EXPECT_NE(approved.body.find("APPROVED renumber ToR1"), std::string::npos);

  const auto rejected = service.handle_precheck(post("/precheck", kBadPlan));
  EXPECT_EQ(rejected.status, 200);
  EXPECT_EQ(rejected.body.rfind("decision: rejected\n", 0), 0u);
  EXPECT_NE(rejected.body.find("REJECTED shut ToR1-A1"), std::string::npos);
  EXPECT_EQ(service.prechecks_served(), 2u);
}

TEST_F(GateServiceTest, BadPlansAnswer400WithoutTouchingTheEmulator) {
  GateService service(topology_, quick_config());
  EXPECT_EQ(service.handle_precheck(post("/precheck", "")).status, 400);
  EXPECT_EQ(
      service.handle_precheck(post("/precheck", "change x\nset-asn Ghost 1\n"))
          .status,
      400);
  EXPECT_EQ(service.precheck_batches(), 0u);
  // The session still answers normal traffic.
  EXPECT_EQ(service.handle_precheck(post("/precheck", kGoodPlan)).status, 200);
}

TEST_F(GateServiceTest, StaleEpochAnswers409) {
  GateService service(topology_, quick_config());
  topology_.set_asn(*topology_.find_device("ToR1"), 64999);  // epoch moves
  const auto response = service.handle_precheck(post("/precheck", kGoodPlan));
  EXPECT_EQ(response.status, 409);
  EXPECT_NE(response.body.find("stale gate"), std::string::npos);
}

TEST_F(GateServiceTest, NsgCheckRunsTheSecGuruGate) {
  GateService service(topology_, quick_config());
  const auto rejected = service.handle_nsg_check(
      post("/nsg-check?vnet=customer&space=10.1.0.0/16&db=1",
           kRestrictiveNsg));
  EXPECT_EQ(rejected.status, 200);
  EXPECT_EQ(rejected.body.rfind("decision: rejected\n", 0), 0u)
      << rejected.body;
  EXPECT_NE(rejected.body.find("FAILED backup-"), std::string::npos);
  EXPECT_NE(rejected.body.find("witness"), std::string::npos);

  // Without a database instance the backup contracts don't apply.
  const auto accepted = service.handle_nsg_check(
      post("/nsg-check?vnet=customer&space=10.1.0.0/16&db=0",
           kRestrictiveNsg));
  EXPECT_EQ(accepted.body.rfind("decision: accepted\n", 0), 0u)
      << accepted.body;

  EXPECT_EQ(
      service.handle_nsg_check(post("/nsg-check", kRestrictiveNsg)).status,
      400);  // missing ?space=
  EXPECT_EQ(service
                .handle_nsg_check(
                    post("/nsg-check?space=10.1.0.0/16", "not,an,nsg\n"))
                .status,
            400);
  EXPECT_EQ(service.nsg_checks_served(), 2u);
}

TEST_F(GateServiceTest, GatezSummarizesServing) {
  GateService service(topology_, quick_config());
  (void)service.handle_precheck(post("/precheck", kGoodPlan));
  const auto response = service.handle_gatez(obs::HttpRequest{});
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("prechecks served      1"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("nsg engines"), std::string::npos);
}

TEST_F(GateServiceTest, ConcurrentPrechecksCoalesceIntoFewerBatches) {
  GateConfig config;
  config.batch_window = std::chrono::milliseconds(100);
  config.max_batch = 16;
  GateService service(topology_, config);

  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const std::string plan = "change renumber ToR1 v" + std::to_string(i) +
                               "\nset-asn ToR1 " + std::to_string(64900 + i) +
                               "\n";
      if (service.handle_precheck(post("/precheck", plan)).status == 200) {
        ++ok;
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_EQ(service.prechecks_served(),
            static_cast<std::uint64_t>(kClients));
  // The whole point of the window: fewer emulator batches than requests.
  EXPECT_LT(service.precheck_batches(),
            static_cast<std::uint64_t>(kClients));
}

TEST_F(GateServiceTest, ConcurrentAnswersEqualSerializedAnswers) {
  // The ISSUE's correctness cross-check, at the service layer: the same
  // request mix answered (a) through the concurrent batcher and (b) one
  // at a time by a fresh gate must produce byte-identical bodies.
  std::vector<std::string> plans;
  plans.push_back(kGoodPlan);
  plans.push_back(kBadPlan);
  plans.push_back("change renumber ToR3\nset-asn ToR3 64901\n");
  plans.push_back("change down A2\ndown-link ToR2 A2\n");

  GateConfig config;
  config.batch_window = std::chrono::milliseconds(50);
  GateService concurrent(topology_, config);
  std::vector<std::string> concurrent_bodies(plans.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    clients.emplace_back([&, i] {
      concurrent_bodies[i] =
          concurrent.handle_precheck(post("/precheck", plans[i])).body;
    });
  }
  for (auto& client : clients) client.join();

  GateService serialized(topology_, quick_config());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(concurrent_bodies[i],
              serialized.handle_precheck(post("/precheck", plans[i])).body)
        << plans[i];
  }
}

TEST_F(GateServiceTest, AttachServesOverRealSockets) {
  GateService service(topology_, quick_config());
  obs::HttpServerConfig http_config;
  obs::HttpServer server(http_config);
  service.attach(server);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string body = kGoodPlan;
  const std::string wire = "POST /precheck HTTP/1.1\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(raw.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << raw;
  EXPECT_NE(raw.find("decision: approved"), std::string::npos) << raw;

  // The probe wrapper reads the attached server's saturation (idle -> the
  // inner verdict passes through untouched).
  const auto probe =
      service.wrap_probe([] { return obs::HealthSnapshot{}; }, 0.9);
  EXPECT_TRUE(probe().ready);
  server.stop();
}

}  // namespace
}  // namespace dcv::gate
