#include "trie/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace dcv::trie {
namespace {

using net::Ipv4Address;
using net::Prefix;

TEST(PrefixTrie, EmptyTrie) {
  const PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.longest_match(Ipv4Address::parse("1.2.3.4")), nullptr);
  EXPECT_EQ(trie.find(Prefix::parse("0.0.0.0/0")), nullptr);
}

TEST(PrefixTrie, RootHoldsDefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::default_route(), 42);
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(Prefix::default_route()), nullptr);
  EXPECT_EQ(*trie.find(Prefix::default_route()), 42);
  // The default route matches everything.
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("200.1.2.3")), 42);
}

TEST(PrefixTrie, InsertReplaces) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/8")), 2);
}

TEST(PrefixTrie, FindIsExact) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.find(Prefix::parse("10.0.0.0/16")), nullptr);
  EXPECT_EQ(trie.find(Prefix::parse("10.0.0.0/7")), nullptr);
}

TEST(PrefixTrie, LongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::default_route(), 0);
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::parse("10.3.0.0/16"), 16);
  trie.insert(Prefix::parse("10.3.129.224/28"), 28);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("10.3.129.230")), 28);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("10.3.129.240")), 16);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("10.4.0.1")), 8);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("11.0.0.1")), 0);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("1.2.3.4/32"), 1);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("1.2.3.4")), 1);
  EXPECT_EQ(trie.longest_match(Ipv4Address::parse("1.2.3.5")), nullptr);
}

TEST(PrefixTrie, RelatedCollectsAncestorsAndSubtree) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::default_route(), 0);          // ancestor
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);      // ancestor
  trie.insert(Prefix::parse("10.3.0.0/16"), 16);    // the range itself
  trie.insert(Prefix::parse("10.3.128.0/24"), 24);  // inside
  trie.insert(Prefix::parse("10.4.0.0/16"), 99);    // unrelated sibling
  trie.insert(Prefix::parse("11.0.0.0/8"), 98);     // unrelated

  const auto related = trie.related(Prefix::parse("10.3.0.0/16"));
  std::vector<int> values;
  for (const auto& [prefix, value] : related) values.push_back(*value);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{0, 8, 16, 24}));
}

TEST(PrefixTrie, RelatedReturnsReconstructedPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.3.128.0/24"), 1);
  const auto related = trie.related(Prefix::parse("10.3.0.0/16"));
  ASSERT_EQ(related.size(), 1u);
  EXPECT_EQ(related[0].first, Prefix::parse("10.3.128.0/24"));
}

TEST(PrefixTrie, RelatedOnDefaultRangeReturnsEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("192.168.0.0/16"), 2);
  EXPECT_EQ(trie.related(Prefix::default_route()).size(), 2u);
}

TEST(PrefixTrie, VisitAllSeesEveryEntry) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.0.0.0/16"), 2);
  trie.insert(Prefix::parse("172.16.0.0/12"), 3);
  int count = 0, sum = 0;
  trie.visit_all([&](const Prefix&, const int& v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 6);
}

/// Property: longest_match agrees with a brute-force scan over stored
/// prefixes, on random inputs.
TEST(PrefixTrieProperty, LongestMatchAgreesWithBruteForce) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(0, 32);
  for (int trial = 0; trial < 20; ++trial) {
    PrefixTrie<int> trie;
    std::vector<std::pair<Prefix, int>> entries;
    for (int i = 0; i < 120; ++i) {
      const Prefix p(Ipv4Address(addr(rng)), len(rng));
      trie.insert(p, i);
      // Replace semantics: drop any earlier entry with the same prefix.
      std::erase_if(entries, [&](const auto& e) { return e.first == p; });
      entries.emplace_back(p, i);
    }
    for (int probe = 0; probe < 300; ++probe) {
      const Ipv4Address a(addr(rng));
      const int* got = trie.longest_match(a);
      const std::pair<Prefix, int>* expected = nullptr;
      for (const auto& entry : entries) {
        if (entry.first.contains(a) &&
            (expected == nullptr ||
             entry.first.length() > expected->first.length())) {
          expected = &entry;
        }
      }
      if (expected == nullptr) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, expected->second);
      }
    }
  }
}

/// Property: related() returns exactly the stored prefixes that contain or
/// are contained in the query range.
TEST(PrefixTrieProperty, RelatedAgreesWithBruteForce) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(0, 32);
  for (int trial = 0; trial < 20; ++trial) {
    PrefixTrie<int> trie;
    std::vector<Prefix> stored;
    for (int i = 0; i < 80; ++i) {
      const Prefix p(Ipv4Address(addr(rng)), len(rng));
      trie.insert(p, i);
      if (std::find(stored.begin(), stored.end(), p) == stored.end()) {
        stored.push_back(p);
      }
    }
    for (int q = 0; q < 40; ++q) {
      const Prefix range(Ipv4Address(addr(rng)), len(rng));
      auto related = trie.related(range);
      std::vector<Prefix> got;
      for (const auto& [prefix, value] : related) got.push_back(prefix);
      std::vector<Prefix> expected;
      for (const Prefix& p : stored) {
        if (p.contains(range) || range.contains(p)) expected.push_back(p);
      }
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(got, expected) << range.to_string();
    }
  }
}

}  // namespace
}  // namespace dcv::trie
