#include "trie/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace dcv::trie {
namespace {

using net::Ipv4Address;
using net::Prefix;

TEST(PrefixTrie, EmptyTrie) {
  const PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.longest_match(Ipv4Address::parse("1.2.3.4")), nullptr);
  EXPECT_EQ(trie.find(Prefix::parse("0.0.0.0/0")), nullptr);
}

TEST(PrefixTrie, RootHoldsDefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::default_route(), 42);
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(Prefix::default_route()), nullptr);
  EXPECT_EQ(*trie.find(Prefix::default_route()), 42);
  // The default route matches everything.
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("200.1.2.3")), 42);
}

TEST(PrefixTrie, InsertReplaces) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/8")), 2);
}

TEST(PrefixTrie, FindIsExact) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.find(Prefix::parse("10.0.0.0/16")), nullptr);
  EXPECT_EQ(trie.find(Prefix::parse("10.0.0.0/7")), nullptr);
}

TEST(PrefixTrie, LongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::default_route(), 0);
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::parse("10.3.0.0/16"), 16);
  trie.insert(Prefix::parse("10.3.129.224/28"), 28);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("10.3.129.230")), 28);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("10.3.129.240")), 16);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("10.4.0.1")), 8);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("11.0.0.1")), 0);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("1.2.3.4/32"), 1);
  EXPECT_EQ(*trie.longest_match(Ipv4Address::parse("1.2.3.4")), 1);
  EXPECT_EQ(trie.longest_match(Ipv4Address::parse("1.2.3.5")), nullptr);
}

TEST(PrefixTrie, RelatedCollectsAncestorsAndSubtree) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::default_route(), 0);          // ancestor
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);      // ancestor
  trie.insert(Prefix::parse("10.3.0.0/16"), 16);    // the range itself
  trie.insert(Prefix::parse("10.3.128.0/24"), 24);  // inside
  trie.insert(Prefix::parse("10.4.0.0/16"), 99);    // unrelated sibling
  trie.insert(Prefix::parse("11.0.0.0/8"), 98);     // unrelated

  const auto related = trie.related(Prefix::parse("10.3.0.0/16"));
  std::vector<int> values;
  for (const auto& [prefix, value] : related) values.push_back(*value);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{0, 8, 16, 24}));
}

TEST(PrefixTrie, RelatedReturnsReconstructedPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.3.128.0/24"), 1);
  const auto related = trie.related(Prefix::parse("10.3.0.0/16"));
  ASSERT_EQ(related.size(), 1u);
  EXPECT_EQ(related[0].first, Prefix::parse("10.3.128.0/24"));
}

TEST(PrefixTrie, RelatedOnDefaultRangeReturnsEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("192.168.0.0/16"), 2);
  EXPECT_EQ(trie.related(Prefix::default_route()).size(), 2u);
}

TEST(PrefixTrie, VisitAllSeesEveryEntry) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.0.0.0/16"), 2);
  trie.insert(Prefix::parse("172.16.0.0/12"), 3);
  int count = 0, sum = 0;
  trie.visit_all([&](const Prefix&, const int& v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 6);
}

/// Property: longest_match agrees with a brute-force scan over stored
/// prefixes, on random inputs.
TEST(PrefixTrieProperty, LongestMatchAgreesWithBruteForce) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(0, 32);
  for (int trial = 0; trial < 20; ++trial) {
    PrefixTrie<int> trie;
    std::vector<std::pair<Prefix, int>> entries;
    for (int i = 0; i < 120; ++i) {
      const Prefix p(Ipv4Address(addr(rng)), len(rng));
      trie.insert(p, i);
      // Replace semantics: drop any earlier entry with the same prefix.
      std::erase_if(entries, [&](const auto& e) { return e.first == p; });
      entries.emplace_back(p, i);
    }
    for (int probe = 0; probe < 300; ++probe) {
      const Ipv4Address a(addr(rng));
      const int* got = trie.longest_match(a);
      const std::pair<Prefix, int>* expected = nullptr;
      for (const auto& entry : entries) {
        if (entry.first.contains(a) &&
            (expected == nullptr ||
             entry.first.length() > expected->first.length())) {
          expected = &entry;
        }
      }
      if (expected == nullptr) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, expected->second);
      }
    }
  }
}

/// Property: related() returns exactly the stored prefixes that contain or
/// are contained in the query range.
TEST(PrefixTrieProperty, RelatedAgreesWithBruteForce) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<std::uint32_t> addr;
  std::uniform_int_distribution<int> len(0, 32);
  for (int trial = 0; trial < 20; ++trial) {
    PrefixTrie<int> trie;
    std::vector<Prefix> stored;
    for (int i = 0; i < 80; ++i) {
      const Prefix p(Ipv4Address(addr(rng)), len(rng));
      trie.insert(p, i);
      if (std::find(stored.begin(), stored.end(), p) == stored.end()) {
        stored.push_back(p);
      }
    }
    for (int q = 0; q < 40; ++q) {
      const Prefix range(Ipv4Address(addr(rng)), len(rng));
      auto related = trie.related(range);
      std::vector<Prefix> got;
      for (const auto& [prefix, value] : related) got.push_back(prefix);
      std::vector<Prefix> expected;
      for (const Prefix& p : stored) {
        if (p.contains(range) || range.contains(p)) expected.push_back(p);
      }
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(got, expected) << range.to_string();
    }
  }
}

TEST(PrefixTrie, RelatedOrderedSortsByDescendingLength) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::default_route(), 0);
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(Prefix::parse("10.1.2.0/24"), 24);
  trie.insert(Prefix::parse("10.1.3.0/24"), 24);
  trie.insert(Prefix::parse("10.1.2.128/25"), 25);
  std::vector<PrefixTrie<int>::Entry> out;
  std::vector<PrefixTrie<int>::Entry> scratch;
  trie.related_ordered(Prefix::parse("10.1.0.0/16"), out, scratch);
  std::vector<Prefix> got;
  for (const auto& [prefix, value] : out) got.push_back(prefix);
  // Descending length; the two /24 siblings tie-break in ascending order.
  const std::vector<Prefix> expected = {
      Prefix::parse("10.1.2.128/25"), Prefix::parse("10.1.2.0/24"),
      Prefix::parse("10.1.3.0/24"), Prefix::parse("10.1.0.0/16"),
      Prefix::parse("10.0.0.0/8"), Prefix::default_route()};
  EXPECT_EQ(got, expected);
}

TEST(PrefixTrieProperty, RelatedOrderedMatchesComparisonSort) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint32_t> addr(0, 0xFFFFFFFFu);
  std::uniform_int_distribution<int> len(0, 32);
  PrefixTrie<int> trie;
  std::vector<PrefixTrie<int>::Entry> out;
  std::vector<PrefixTrie<int>::Entry> scratch;
  for (int round = 0; round < 30; ++round) {
    trie.clear();
    for (int i = 0; i < 60; ++i) {
      trie.insert(Prefix(Ipv4Address(addr(rng)), len(rng) / 2), i);
    }
    for (int q = 0; q < 20; ++q) {
      const Prefix range(Ipv4Address(addr(rng)), len(rng));
      trie.related_ordered(range, out, scratch);
      auto expected = trie.related(range);
      std::sort(expected.begin(), expected.end(),
                [](const auto& a, const auto& b) {
                  if (a.first.length() != b.first.length()) {
                    return a.first.length() > b.first.length();
                  }
                  return a.first < b.first;
                });
      ASSERT_EQ(out.size(), expected.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].first, expected[i].first) << range.to_string();
        EXPECT_EQ(*out[i].second, *expected[i].second) << range.to_string();
      }
    }
  }
}

TEST(PrefixTrie, ClearRetainsArenaCapacity) {
  PrefixTrie<int> trie;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint32_t> addr(0, 0xFFFFFFFFu);
  for (int i = 0; i < 200; ++i) {
    trie.insert(Prefix(Ipv4Address(addr(rng)), 24), i);
  }
  const std::size_t grown = trie.node_capacity();
  ASSERT_GT(grown, 1u);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.node_count(), 1u);  // just the root
  EXPECT_EQ(trie.node_capacity(), grown);  // arena retained
  // Rebuilding a same-shape trie must not grow the arena again.
  std::mt19937_64 rng2(7);
  for (int i = 0; i < 200; ++i) {
    trie.insert(Prefix(Ipv4Address(addr(rng2)), 24), i);
  }
  EXPECT_EQ(trie.node_capacity(), grown);
  EXPECT_EQ(trie.size(), 200u);
}

TEST(PrefixTrie, ReserveGrowsArenaUpFront) {
  PrefixTrie<int> trie;
  trie.reserve(1024);
  const std::size_t reserved = trie.node_capacity();
  EXPECT_GE(reserved, 1024u);
  for (int i = 0; i < 30; ++i) {
    trie.insert(Prefix(Ipv4Address(std::uint32_t{1} << 8 << i % 16), 24), i);
  }
  EXPECT_EQ(trie.node_capacity(), reserved);
}

}  // namespace
}  // namespace dcv::trie
